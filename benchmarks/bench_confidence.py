"""Confidence-interval benches — Fig. 6, Fig. 13 (synthetic), Fig. 14 (real)."""

import numpy as np

from repro.experiments import print_confidence, run_fig6, run_fig13, run_fig14

from conftest import run_once


def test_fig6(benchmark, experiment_config):
    """Fig. 6: bands cover the truth; predictability tightens them."""
    cells = run_once(benchmark, run_fig6, experiment_config)
    print()
    print_confidence(cells, "Fig 6")
    coverage = np.mean([c.covered for c in cells])
    assert coverage >= 0.75  # paper: covered in (almost) all cases

    # Widths shrink as predictability grows (same keep rate).
    by_keep = {}
    for cell in cells:
        by_keep.setdefault(cell.keep_rate, []).append(cell)
    for keep, group in by_keep.items():
        group = sorted(group, key=lambda c: c.predictability)
        assert group[-1].width <= group[0].width + 0.05

    # Bands stay inside the theoretical envelope.
    for cell in cells:
        assert cell.theoretical_min - 1e-9 <= cell.lower
        assert cell.upper <= cell.theoretical_max + 1e-9


def test_fig13(benchmark, experiment_config):
    """Fig. 13 (appendix): the full synthetic grid."""
    cells = run_once(benchmark, run_fig13, experiment_config)
    print()
    print_confidence(cells, "Fig 13")
    coverage = np.mean([c.covered for c in cells])
    assert coverage >= 0.7


def test_fig14(benchmark, experiment_config):
    """Fig. 14 (appendix): real-data categorical setups."""
    pairs = run_once(benchmark, run_fig14, ["H3", "M3"], experiment_config)
    cells = [cell for _, cell in pairs]
    print()
    print_confidence(cells, "Fig 14")
    coverage = np.mean([c.covered for c in cells])
    # Paper: contained or close to the bounds in nearly all cases.
    assert coverage >= 0.5
