"""Confidence-interval benches — Fig. 6, Fig. 13 (synthetic), Fig. 14 (real)."""

import numpy as np

from repro.experiments import print_confidence, run_fig6, run_fig13, run_fig14

from conftest import run_once


def test_fig6(benchmark, experiment_config):
    """Fig. 6: bands cover the truth; predictability tightens them."""
    cells = run_once(benchmark, run_fig6, experiment_config)
    print()
    print_confidence(cells, "Fig 6")
    coverage = np.mean([c.covered for c in cells])
    assert coverage >= 0.75  # paper: covered in (almost) all cases

    # Widths shrink as predictability grows (same keep rate).
    by_keep = {}
    for cell in cells:
        by_keep.setdefault(cell.keep_rate, []).append(cell)
    for keep, group in by_keep.items():
        group = sorted(group, key=lambda c: c.predictability)
        assert group[-1].width <= group[0].width + 0.05

    # Bands stay inside the theoretical envelope.
    for cell in cells:
        assert cell.theoretical_min - 1e-9 <= cell.lower
        assert cell.upper <= cell.theoretical_max + 1e-9


def test_fig13(benchmark, experiment_config):
    """Fig. 13 (appendix): the full synthetic grid."""
    cells = run_once(benchmark, run_fig13, experiment_config)
    print()
    print_confidence(cells, "Fig 13")
    coverage = np.mean([c.covered for c in cells])
    assert coverage >= 0.7


def test_fig14(benchmark, experiment_config):
    """Fig. 14 (appendix): real-data categorical setups."""
    pairs = run_once(benchmark, run_fig14, ["H3", "M3"], experiment_config)
    cells = [cell for _, cell in pairs]
    print()
    print_confidence(cells, "Fig 14")
    coverage = np.mean([c.covered for c in cells])
    # Paper: contained or close to the bounds in nearly all cases.
    assert coverage >= 0.5


def test_distribution_memoization(benchmark):
    """Repeated bands on one variable skip the model forward after the first.

    ``ConfidenceEstimator`` memoizes ``_per_tuple_distributions`` per model
    variable; the forward over every synthesized row dominates band cost, so
    warm calls must be much cheaper than the first.  Measured directly on a
    small housing engine (no experiment grid).
    """
    import time

    from repro.core import ConfidenceEstimator, ModelConfig, ReStore, ReStoreConfig
    from repro.datasets import HousingConfig, generate_housing
    from repro.incomplete import RemovalSpec, make_incomplete
    from repro.nn import TrainConfig

    db = generate_housing(HousingConfig(seed=0, num_neighborhoods=60,
                                        num_landlords=250,
                                        apartments_per_neighborhood=12.0))
    dataset = make_incomplete(db, [RemovalSpec("apartment", "price", 0.5, 0.4)],
                              tf_keep_rate=0.3, seed=1)
    config = ReStoreConfig(
        model=ModelConfig(hidden=(32, 32),
                          train=TrainConfig(epochs=8, batch_size=128,
                                            lr=1e-2, patience=3)))
    engine = ReStore.from_dataset(dataset, config).fit()
    model = next(iter(engine.fitted_models().values()))
    completed = engine.completed_join(model)

    def cold_and_warm():
        estimator = ConfidenceEstimator(model, completed)
        t0 = time.perf_counter()
        estimator.average("price")
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        estimator.total("price")     # same variable -> memo hit
        estimator.average("price")
        warm = (time.perf_counter() - t0) / 2.0
        return cold, warm

    cold, warm = benchmark.pedantic(cold_and_warm, rounds=3, iterations=1,
                                    warmup_rounds=1)
    benchmark.extra_info.update({
        "cold_band_s": cold,
        "warm_band_s": warm,
        "memo_speedup": cold / warm if warm else float("inf"),
    })
    print(f"\nband: cold {cold * 1000:.1f} ms, warm {warm * 1000:.2f} ms "
          f"({cold / max(warm, 1e-9):.0f}x)")
    assert warm < cold
