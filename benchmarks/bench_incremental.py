"""Incremental recompletion: delta-aware reuse vs from-scratch.

The tentpole perf claim of the incremental layer: after a small mutation
(~1% of root rows updated in place, grid stable) ``recomplete(delta)``
re-walks only the chunks covering the mutated rows and reassembles the
rest from the partial cache — while the per-row counter-based RNG keeps
the result bitwise-identical (up to row order) to a from-scratch
completion of the mutated database at the same seed.  This bench measures
both runs on paper-scale housing, requires the delta to touch at most 10%
of the chunk grid, and asserts the >= 3x speedup floor; a second bench
records how much cheaper a digest-gated warm-start fine-tune is than a
full re-fit.  All numbers land in the ``--benchmark-json`` output via
``extra_info``.
"""

import time

import numpy as np
import pytest

from repro.core import ModelConfig, ReStore, ReStoreConfig
from repro.datasets import HousingConfig, generate_housing
from repro.experiments import joins_bitwise_identical
from repro.incomplete import RemovalSpec, make_incomplete
from repro.nn import TrainConfig
from repro.relational import ColumnKind

FAST = TrainConfig(epochs=10, batch_size=128, lr=1e-2, patience=3)

#: Fraction of root rows updated per mutation batch.
MUTATION_FRACTION = 0.01
#: The claim only holds while the delta stays local: at most this fraction
#: of the chunk grid may be invalidated (the acceptance threshold).
MAX_AFFECTED_FRACTION = 0.10
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def incremental_setup():
    """Paper-scale housing, incomplete apartments, a fitted engine."""
    db = generate_housing(HousingConfig(seed=0))
    dataset = make_incomplete(
        db, [RemovalSpec("apartment", "price", 0.5, 0.4)],
        tf_keep_rate=0.3, seed=1,
    )
    # chunk_size is pinned: the speedup claim compares a cold walk and a
    # delta walk over the SAME chunk grid (which is also what makes their
    # answers bitwise comparable and the partial cache reusable).
    config = ReStoreConfig(model=ModelConfig(hidden=(32, 32), train=FAST),
                           seed=3, chunk_size=4)
    engine = ReStore.from_dataset(dataset, config).fit()
    return engine, dataset, config


def _mutate_fraction(engine, rng, fraction=MUTATION_FRACTION):
    """Update ``fraction`` of root rows in place (grid-stable delta).

    A continuous column is nudged by +1.0 so every update genuinely
    changes its row (no-op updates are rejected by the mutation API).
    """
    root = engine._default_model().layout.path.tables[0]
    table = engine.db.table(root)
    pk = table.primary_key
    column = next(
        c for c in table.column_names
        if table.meta(c).kind == ColumnKind.CONTINUOUS
    )
    count = max(1, round(table.num_rows * fraction))
    positions = rng.choice(table.num_rows, size=count, replace=False)
    rows = [
        {pk: int(table[pk][pos]), column: float(table[column][pos]) + 1.0}
        for pos in positions
    ]
    return engine.apply_mutations(updates={root: rows})


def test_recomplete_speedup_after_one_percent_mutation(
    benchmark, incremental_setup
):
    """Delta recompletion: >= 3x faster than from scratch, same join."""
    engine, _, _ = incremental_setup
    rng = np.random.default_rng(11)

    # from-scratch baseline: a cold walk over the full grid
    engine.clear_cache()
    started = time.perf_counter()
    cold = engine.recomplete()
    full_s = time.perf_counter() - started
    total = cold.recompletion["chunks_total"]
    assert cold.recompletion["chunks_walked"] == total

    warm_times = []
    fractions = []

    def warm_run():
        delta = _mutate_fraction(engine, rng)
        t0 = time.perf_counter()
        answer = engine.recomplete(delta)
        warm_times.append(time.perf_counter() - t0)
        fractions.append(answer.recompletion["chunks_walked"] / total)
        return answer

    warm = benchmark.pedantic(warm_run, rounds=3, iterations=1,
                              warmup_rounds=0)
    warm_s = min(warm_times)

    assert max(fractions) <= MAX_AFFECTED_FRACTION, (
        f"delta touched {max(fractions):.1%} of the grid — not a local "
        "mutation, the speedup claim does not apply"
    )
    # soundness: the reassembled join is exactly what a cold walk of the
    # final (mutated) database yields at the same seed
    engine.clear_cache()
    assert joins_bitwise_identical(warm, engine.recomplete())

    speedup = full_s / warm_s
    benchmark.extra_info.update({
        "full_s": full_s,
        "incremental_s": warm_s,
        "speedup": speedup,
        "chunks_total": total,
        "chunks_walked": warm.recompletion["chunks_walked"],
        "affected_fraction": max(fractions),
        "mutation_fraction": MUTATION_FRACTION,
        "bitwise_identical": True,
    })
    print(f"\nfrom-scratch {full_s * 1000:.0f} ms, incremental "
          f"{warm_s * 1000:.0f} ms ({speedup:.1f}x, walked "
          f"{warm.recompletion['chunks_walked']}/{total} chunks)")
    assert speedup >= MIN_SPEEDUP, (
        f"incremental speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP:.0f}x floor"
    )


def test_warm_start_fine_tune_vs_full_refit(benchmark, incremental_setup):
    """Digest-gated fine-tune: fewer epochs than re-fitting from scratch."""
    engine, dataset, config = incremental_setup
    rng = np.random.default_rng(23)

    started = time.perf_counter()
    refit = ReStore.from_dataset(dataset, config).fit()
    refit_s = time.perf_counter() - started
    refit_epochs = sum(
        m.train_result.epochs_run for m in refit.fitted_models().values()
    )

    tune_times = []

    def tune_run():
        _mutate_fraction(engine, rng)  # move the digest each round
        t0 = time.perf_counter()
        outcome = engine.fine_tune()
        tune_times.append(time.perf_counter() - t0)
        return outcome

    outcome = benchmark.pedantic(tune_run, rounds=1, iterations=1,
                                 warmup_rounds=0)
    tune_s = min(tune_times)

    assert outcome["skipped"] is False
    assert outcome["models_tuned"] == len(engine.fitted_models())
    tuned_epochs = sum(
        m.train_result.epochs_run for m in engine.fitted_models().values()
    )
    for model in engine.fitted_models().values():
        assert model.train_result.warm_start is True
    # warm start resumes near the optimum, so early stopping fires no
    # later than it does from random init
    assert tuned_epochs <= refit_epochs

    benchmark.extra_info.update({
        "refit_s": refit_s,
        "fine_tune_s": tune_s,
        "refit_epochs": refit_epochs,
        "fine_tune_epochs": tuned_epochs,
        "models_tuned": outcome["models_tuned"],
    })
    print(f"\nfull re-fit {refit_s * 1000:.0f} ms / {refit_epochs} epochs, "
          f"warm fine-tune {tune_s * 1000:.0f} ms / {tuned_epochs} epochs")
