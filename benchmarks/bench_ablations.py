"""Ablation benches for the design decisions called out in DESIGN.md §5.

* exact vs approximate nearest-neighbour replacement (§4.2),
* model merging savings (§3.4),
* quantile-binning granularity for continuous attributes.
"""

import time

import numpy as np

from repro.core import (
    ARCompletionModel,
    EuclideanReplacer,
    IncompletenessJoin,
    ModelConfig,
    PathLayout,
    build_encoders,
    training_savings,
)
from repro.datasets import HousingConfig, generate_housing
from repro.incomplete import RemovalSpec, make_incomplete
from repro.metrics import bias_reduction, weighted_average
from repro.nn import TrainConfig
from repro.relational import CompletionPath, enumerate_completion_paths

from conftest import run_once


def _housing_dataset(scale=0.4, seed=0):
    db = generate_housing(HousingConfig(
        num_neighborhoods=int(120 * scale),
        num_landlords=int(700 * scale),
        apartments_per_neighborhood=15.0,
        seed=seed,
    ))
    return db, make_incomplete(
        db, [RemovalSpec("apartment", "price", 0.5, 0.4)],
        tf_keep_rate=0.3, seed=seed,
    )


def test_ablation_nn_replacement_modes(benchmark):
    """Exact vs approximate euclidean replacement: quality and speed."""

    def run():
        db, dataset = _housing_dataset()
        table = dataset.incomplete.table("landlord")
        rng = np.random.default_rng(0)
        queries = {
            c: table[c][rng.integers(0, len(table), 3000)]
            for c in ["landlord_since", "landlord_response_time",
                      "landlord_response_rate"]
        }
        out = {}
        for mode in (False, True):
            replacer = EuclideanReplacer(table, approximate=mode)
            start = time.perf_counter()
            rows = replacer.replace(queries)
            out[mode] = (time.perf_counter() - start, rows)
        return out

    out = run_once(benchmark, run)
    exact_time, exact_rows = out[False]
    approx_time, approx_rows = out[True]
    agreement = float((exact_rows == approx_rows).mean())
    print(f"\nexact {exact_time * 1e3:.1f}ms vs approx {approx_time * 1e3:.1f}ms, "
          f"agreement {agreement:.1%}")
    assert agreement > 0.2  # projection keeps a useful share of neighbours
    assert len(exact_rows) == len(approx_rows) == 3000


def test_ablation_model_merging_savings(benchmark):
    """§3.4: merging cuts the number of trained models on real schemas."""

    def run():
        db, dataset = _housing_dataset()
        paths = enumerate_completion_paths(
            dataset.incomplete, dataset.annotation, "apartment", max_length=4
        )
        return training_savings(paths), [str(p) for p in paths]

    stats, paths = run_once(benchmark, run)
    print(f"\npaths: {paths}\nmerging: {stats}")
    assert stats["models_with_merging"] <= stats["models_without_merging"]


def test_ablation_binning_granularity(benchmark):
    """Continuous binning: too-coarse bins hurt the completed average."""

    def run():
        db, dataset = _housing_dataset()
        true_mean = weighted_average(db.table("apartment")["price"])
        inc_mean = weighted_average(dataset.incomplete.table("apartment")["price"])
        results = {}
        for bins in (4, 32):
            encoders = build_encoders(dataset.incomplete, num_bins=bins)
            layout = PathLayout(dataset.incomplete, dataset.annotation,
                                CompletionPath(("neighborhood", "apartment")),
                                encoders)
            model = ARCompletionModel(layout, ModelConfig(
                hidden=(48, 48),
                train=TrainConfig(epochs=10, batch_size=256, lr=5e-3, patience=3),
            ))
            model.fit()
            completed = IncompletenessJoin(model, seed=0).run()
            comp_mean = weighted_average(
                completed.result.resolve("apartment.price"),
                completed.result.effective_weights(),
            )
            results[bins] = bias_reduction(true_mean, inc_mean, comp_mean)
        return results

    results = run_once(benchmark, run)
    print(f"\nbias reduction by bin count: "
          f"{ {k: round(v, 3) for k, v in results.items()} }")
    # Both granularities must produce a valid completion.  Note: at smoke-
    # scale training budgets, coarse bins can *win* (fewer output classes to
    # learn) — granularity only pays off once the model is trained long
    # enough, which is exactly the trade-off this ablation documents.
    assert all(not np.isnan(v) for v in results.values())
    assert max(results.values()) > 0.0
