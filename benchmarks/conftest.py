"""Shared benchmark configuration.

Benchmarks regenerate the paper's tables and figures.  Each bench runs its
experiment exactly once (pedantic mode) and prints the same series the
paper plots; wall time is what pytest-benchmark records.  Default grids are
scaled down for CPU smoke runs — set ``RESTORE_BENCH_FULL=1`` for the full
paper grid.
"""

import pytest

from repro.experiments import ExperimentConfig, full_grid
from repro.obs import bench_envelope, validate_envelope


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    if full_grid():
        return ExperimentConfig.default()
    # Bench-sized: one keep rate x two correlations, small scale, short
    # training.  Chosen so the whole suite finishes in a few minutes on CPU.
    return ExperimentConfig(
        keep_rates=(0.5,),
        removal_correlations=(0.2, 0.6),
        scale=0.45,
        epochs=16,
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Stamp every bench_*.py JSON payload with the common envelope.

    Results from different machines/commits become comparable: repro +
    git versions, host, python/numpy, and the process's telemetry
    summary.  The envelope is schema-checked here, so a malformed one
    fails the benchmark run instead of landing in the archive.
    """
    envelope = bench_envelope()
    problems = validate_envelope(envelope)
    assert not problems, f"benchmark envelope failed validation: {problems}"
    output_json["envelope"] = envelope
