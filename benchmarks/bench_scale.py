"""Scale-tier benchmarks: out-of-core generation and the streaming join.

Sizes the pipeline at SF 1/10/100 (≈100k/1M/10M root rows): the
counter-based generator streams straight into the mapped column store,
and the incompleteness join walks the mapped database in chunks,
spilling completed chunks to disk, so neither phase ever holds a full
table in RAM.  Every test stamps rows/sec and the phase's peak-RSS
delta into the benchmark JSON (``extra_info``); the SF-10 join asserts
the streaming claim — peak RSS bounded well below what the in-RAM
equivalent (database plus materialized completed join) must hold.

SF 1 runs in the per-push benchmark smoke; SF 10/100 are ``slow``
(nightly).  Peak RSS is measured per phase via the kernel's VmHWM
watermark (:func:`repro.obs.reset_peak_rss`); a short warmup walk first
pays the one-time costs (compiled model snapshot, allocator pools) that
would otherwise be billed to the measured phase.
"""

import time

import numpy as np
import pytest

from repro.core import (
    ARCompletionModel,
    IncompletenessJoin,
    ModelConfig,
    PathLayout,
    build_encoders,
)
from repro.datasets.scale import (
    ScaleConfig,
    generate_scale_incomplete,
    scale_training_slice,
)
from repro.nn import TrainConfig
from repro.obs import current_rss_bytes, peak_rss_bytes, reset_peak_rss
from repro.relational import CompletionPath

from conftest import run_once

#: Roots of the in-RAM training slice (the model transplants onto any SF).
TRAIN_ROOTS = 2000
TRAIN = TrainConfig(epochs=4, batch_size=256, lr=1e-2, patience=2)
#: Root rows per join chunk: bounds per-chunk transients at every SF.
CHUNK = 8192
PATH = CompletionPath(("site", "reading"))


def _fit_transplanted_model(cfg: ScaleConfig, db, annotation):
    """Fit on a small in-RAM prefix, transplant onto the mapped layout.

    The generator's capped fan-out keeps the tuple-factor vocabulary
    identical at every SF, so the small model's weights load onto the big
    layout unchanged — training cost stays O(slice), not O(SF).
    """
    slice_cfg = scale_training_slice(cfg, TRAIN_ROOTS)
    train_db, train_ann = generate_scale_incomplete(slice_cfg)
    config = ModelConfig(hidden=(24, 24), train=TRAIN)
    small = ARCompletionModel(
        PathLayout(train_db, train_ann, PATH,
                   build_encoders(train_db, num_bins=8),
                   tf_cap=cfg.fan_out_cap),
        config,
    )
    small.fit()
    big = ARCompletionModel(
        PathLayout(db, annotation, PATH, build_encoders(db, num_bins=8),
                   tf_cap=cfg.fan_out_cap),
        config,
    )
    big.load_state_dict(small.state_dict())
    big.mark_fitted_from_artifact()
    return big


def _measure_phase(fn):
    """Run ``fn`` and return (result, seconds, peak-RSS delta, resettable)."""
    base = current_rss_bytes()
    resettable = reset_peak_rss()
    t0 = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - t0
    delta = max(0, peak_rss_bytes() - base)
    return result, seconds, delta, resettable


def _materialized_result_bytes(completed) -> int:
    """Bytes the completed join occupies fully materialized in RAM."""
    store = completed.result.columns.store
    total = store.nbytes_materialized()
    for extra in (completed.codes, completed.context,
                  completed.result.weights,
                  completed.target_synthesized()):
        if extra is not None:
            total += int(np.asarray(extra[:1]).itemsize) * completed.num_rows
    return total


def _bench_generation(benchmark, tmp_path, scale_factor: float):
    cfg = ScaleConfig(scale_factor=scale_factor, seed=0)

    def generate():
        return generate_scale_incomplete(
            cfg, spill_dir=str(tmp_path / "db")
        )

    (db, _), seconds, rss_delta, resettable = _measure_phase(
        lambda: run_once(benchmark, generate)
    )
    rows = len(db.table("site")) + len(db.table("reading"))
    materialized = db.nbytes_materialized()
    benchmark.extra_info.update({
        "scale_factor": scale_factor,
        "rows": rows,
        "rows_per_sec": rows / seconds,
        "peak_rss_delta_bytes": rss_delta,
        "db_materialized_bytes": materialized,
    })
    print(f"\nSF {scale_factor:g} generation: {rows:,} rows in {seconds:.1f}s "
          f"({rows / seconds:,.0f} rows/s), peak RSS +{rss_delta / 1e6:.0f}MB "
          f"vs {materialized / 1e6:.0f}MB materialized")
    assert all(t.is_mapped for t in db.tables.values())
    assert rows > 0
    return db, rss_delta, materialized, resettable


def _bench_join(benchmark, tmp_path, scale_factor: float):
    cfg = ScaleConfig(scale_factor=scale_factor, seed=0)
    db, annotation = generate_scale_incomplete(cfg, spill_dir=str(tmp_path / "db"))
    model = _fit_transplanted_model(cfg, db, annotation)

    # Warmup: two chunks pay the one-time costs outside the measured phase.
    warm = IncompletenessJoin(model, seed=0, chunk_size=CHUNK,
                              spill_dir=str(tmp_path / "warm"))
    warm.assemble(warm.walk_chunks(warm.chunk_tasks()[:2]))
    del warm

    def complete():
        return IncompletenessJoin(
            model, seed=0, chunk_size=CHUNK,
            spill_dir=str(tmp_path / "join"),
        ).run()

    completed, seconds, rss_delta, resettable = _measure_phase(
        lambda: run_once(benchmark, complete)
    )
    rows = completed.num_rows
    in_ram_equivalent = db.nbytes_materialized() + _materialized_result_bytes(completed)
    benchmark.extra_info.update({
        "scale_factor": scale_factor,
        "join_rows": rows,
        "rows_per_sec": rows / seconds,
        "peak_rss_delta_bytes": rss_delta,
        "in_ram_equivalent_bytes": in_ram_equivalent,
        "rss_fraction_of_in_ram": rss_delta / in_ram_equivalent,
    })
    print(f"\nSF {scale_factor:g} join: {rows:,} rows in {seconds:.1f}s "
          f"({rows / seconds:,.0f} rows/s), peak RSS +{rss_delta / 1e6:.0f}MB "
          f"vs {in_ram_equivalent / 1e6:.0f}MB in-RAM equivalent")
    # More output rows than surviving evidence rows: synthesis happened.
    assert rows > len(db.table("reading"))
    assert np.all(completed.result.effective_weights() > 0)
    return completed, rss_delta, in_ram_equivalent, resettable


def test_scale_sf1_generation(benchmark, tmp_path):
    """SF 1 (~100k roots): streamed generation into the mapped store."""
    _bench_generation(benchmark, tmp_path, 1.0)


def test_scale_sf1_join(benchmark, tmp_path):
    """SF 1: the spilled join end to end (the per-push smoke size)."""
    _bench_join(benchmark, tmp_path, 1.0)


@pytest.mark.slow
def test_scale_sf10_join_bounded_rss(benchmark, tmp_path):
    """SF 10 (~1M roots): the streaming claim, asserted.

    The join's peak-RSS delta must stay below half of what the in-RAM
    pipeline holds (materialized database + materialized completed join)
    — i.e. streaming genuinely beats materializing, not just by a
    rounding error.
    """
    _, rss_delta, in_ram_equivalent, resettable = _bench_join(
        benchmark, tmp_path, 10.0
    )
    if not resettable:
        pytest.skip("kernel lacks /proc/self/clear_refs; cannot isolate phase RSS")
    assert rss_delta < 0.5 * in_ram_equivalent, (
        f"streaming join peaked at {rss_delta / 1e6:.0f}MB, expected "
        f"< 50% of the {in_ram_equivalent / 1e6:.0f}MB in-RAM equivalent"
    )


@pytest.mark.slow
def test_scale_sf100_generation_bounded_rss(benchmark, tmp_path):
    """SF 100 (~10M roots): generation streams with near-flat RSS.

    The generator writes pre-sized npy files block by block; its peak-RSS
    delta must stay below half the materialized database size no matter
    the SF.
    """
    _, rss_delta, materialized, resettable = _bench_generation(
        benchmark, tmp_path, 100.0
    )
    if not resettable:
        pytest.skip("kernel lacks /proc/self/clear_refs; cannot isolate phase RSS")
    assert rss_delta < 0.5 * materialized, (
        f"generation peaked at {rss_delta / 1e6:.0f}MB, expected < 50% of "
        f"the {materialized / 1e6:.0f}MB materialized database"
    )
