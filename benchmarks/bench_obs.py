"""Observability benchmarks: the disabled-path overhead bound + a traced
fleet query exported as Chrome-trace JSON.

The hot paths (engine answer, chunk walk, kernels, serving, fleet) are
*permanently* instrumented, so the cost of instrumentation with telemetry
**off** is the price every user pays.  Two measurements, both emitted into
the benchmark JSON (``extra_info``):

* **no-op overhead** — the per-call cost of a disabled ``trace(...)`` and
  of the kernels' ``ACTIVE is None`` guard, scaled by how many
  instrumentation sites one cold completion query actually hits (counted
  by running the same query traced/profiled).  The implied overhead on the
  measured query time must stay **under 2%** — the bound CI's obs-smoke
  step asserts.
* **traced fleet query** — a 2-worker fleet answers one query with
  tracing on; the spans must stitch into a single cross-process tree and
  export as valid Chrome-trace JSON (the ``validate_chrome_trace``
  contract), proving the telemetry a user would actually capture.
"""

import asyncio
import time

from repro import ReStore, ReStoreConfig, parse_query
from repro.core import ModelConfig
from repro.incomplete.registry import make_scenario_dataset
from repro.nn import TrainConfig
from repro.obs import (
    Tracer,
    disable_tracing,
    enable_tracing,
    export_chrome_trace,
    profile_kernels,
    span_tree,
    trace,
    tracing_enabled,
    validate_chrome_trace,
)
from repro.obs import profile as profile_module
from repro.serving import FleetConfig, FleetRouter, ServiceConfig, save_artifact

from conftest import run_once

FAST = TrainConfig(epochs=3, batch_size=128, lr=1e-2, patience=2)
COMPLETION_SQL = "SELECT COUNT(*) FROM ta NATURAL JOIN tb WHERE b = 'v1';"

#: The acceptance bound: implied disabled-telemetry overhead on one cold
#: completion query.
OVERHEAD_BOUND = 0.02


def _fitted_engine() -> ReStore:
    dataset = make_scenario_dataset(
        "synthetic/biased", keep_rate=0.5, seed=1, scale=0.2
    )
    config = ReStoreConfig(model=ModelConfig(train=FAST), seed=3)
    return ReStore.from_dataset(dataset, config).fit()


def _per_call_ns(fn, calls: int) -> float:
    """Median-of-5 per-call cost of ``fn`` over ``calls`` iterations."""
    samples = []
    for _ in range(5):
        started = time.perf_counter_ns()
        fn(calls)
        samples.append((time.perf_counter_ns() - started) / calls)
    samples.sort()
    return samples[2]


def _noop_trace_loop(calls: int) -> None:
    for _ in range(calls):
        with trace("bench.noop", rows=1):
            pass


def _kernel_guard_loop(calls: int) -> None:
    for _ in range(calls):
        if profile_module.ACTIVE is not None:  # the kernels' exact check
            raise AssertionError("profiling must be off here")


def test_noop_overhead(benchmark):
    """Disabled telemetry: implied overhead on a cold query < 2%."""
    engine = _fitted_engine()
    query = parse_query(COMPLETION_SQL)
    disable_tracing()
    assert not tracing_enabled()

    def cold_answer_seconds() -> float:
        samples = []
        for _ in range(5):
            engine.clear_cache()
            started = time.perf_counter()
            engine.answer(query)
            samples.append(time.perf_counter() - started)
        samples.sort()
        return samples[2]

    query_s = run_once(benchmark, cold_answer_seconds)

    # How many instrumentation sites does that query actually hit?
    tracer = Tracer()
    enable_tracing(tracer=tracer)
    try:
        with profile_kernels() as prof:
            engine.clear_cache()
            engine.answer(query)
    finally:
        disable_tracing()
    spans_per_query = len(tracer)
    kernel_calls = sum(
        int(entry["calls"]) for entry in prof.snapshot().values()
    )
    assert spans_per_query > 0 and kernel_calls > 0

    noop_trace_ns = _per_call_ns(_noop_trace_loop, 200_000)
    guard_ns = _per_call_ns(_kernel_guard_loop, 200_000)
    implied_overhead = (
        spans_per_query * noop_trace_ns + kernel_calls * guard_ns
    ) / (query_s * 1e9)

    benchmark.extra_info["noop_trace_ns_per_call"] = noop_trace_ns
    benchmark.extra_info["kernel_guard_ns_per_call"] = guard_ns
    benchmark.extra_info["spans_per_cold_query"] = spans_per_query
    benchmark.extra_info["kernel_calls_per_cold_query"] = kernel_calls
    benchmark.extra_info["cold_query_seconds"] = query_s
    benchmark.extra_info["implied_overhead"] = implied_overhead
    benchmark.extra_info["overhead_bound"] = OVERHEAD_BOUND
    print()
    print(f"disabled trace(): {noop_trace_ns:8.1f} ns/call")
    print(f"kernel guard:     {guard_ns:8.1f} ns/call")
    print(f"sites per query:  {spans_per_query} spans, "
          f"{kernel_calls} kernel calls")
    print(f"implied overhead: {implied_overhead * 100:.4f}% "
          f"(bound {OVERHEAD_BOUND * 100:.0f}%)")
    assert implied_overhead < OVERHEAD_BOUND, (
        f"disabled-telemetry overhead {implied_overhead * 100:.3f}% exceeds "
        f"the {OVERHEAD_BOUND * 100:.0f}% bound"
    )


def test_traced_fleet_query_chrome_trace(benchmark, tmp_path):
    """One traced 2-worker fleet query ⇒ one stitched, exportable tree."""
    engine = _fitted_engine()
    artifact = tmp_path / "artifact"
    save_artifact(engine, artifact, scenario="synthetic/biased")
    trace_path = tmp_path / "fleet-trace.json"

    def traced_query():
        tracer = Tracer()
        enable_tracing(tracer=tracer)
        try:
            async def main():
                config = FleetConfig(
                    n_workers=2,
                    worker=ServiceConfig(max_queue=32, n_workers=2),
                )
                async with FleetRouter(artifact, config) as fleet:
                    return await fleet.submit(COMPLETION_SQL)

            answer = asyncio.run(main())
        finally:
            disable_tracing()
        return answer, tracer

    answer, tracer = run_once(benchmark, traced_query)
    assert answer.result.values

    spans = tracer.spans()
    names = {s.name for s in spans}
    assert {"fleet.submit", "serve.group", "engine.completed_join",
            "join.chunk"} <= names
    assert len({s.pid for s in spans}) >= 2       # router + worker
    forest = span_tree(spans)
    assert len(forest) == 1                       # one stitched tree
    assert forest[0]["span"].name == "fleet.submit"

    doc = export_chrome_trace(trace_path, tracer=tracer)
    problems = validate_chrome_trace(doc)
    assert problems == [], problems

    benchmark.extra_info["spans"] = len(spans)
    benchmark.extra_info["span_names"] = sorted(names)
    benchmark.extra_info["processes"] = len({s.pid for s in spans})
    benchmark.extra_info["trace_events"] = len(doc["traceEvents"])
    print()
    print(f"stitched {len(spans)} spans across "
          f"{len({s.pid for s in spans})} processes -> {trace_path}")
