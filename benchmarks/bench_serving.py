"""Serving benchmarks: artifact round-trip parity and service throughput.

Three measurements, all emitted into the benchmark JSON (``extra_info``):

* **artifact parity** — a fitted housing engine is saved, reloaded, and
  must answer the exp-2 housing query workload (Table 1, Q1–Q10)
  identically to the in-memory engine at the same seed;
* **load generation** — a :class:`~repro.serving.CompletionService` over
  the loaded engine is driven by 1 / 8 / 32 concurrent clients; the JSON
  records throughput and p50/p95 latency per client count;
* **single-flight proof** — N identical concurrent queries on a cold
  cache trigger exactly one incompleteness join.
"""

import asyncio
import time

from repro import ReStore, ReStoreConfig
from repro.core import ModelConfig
from repro.nn import TrainConfig
from repro.serving import CompletionService, ServiceConfig, save_artifact
from repro.workloads import ALL_SETUPS, base_database, queries_for

from conftest import run_once

SEED = 5
SCALE = 0.25
TRAIN = TrainConfig(epochs=8, batch_size=256, lr=5e-3, patience=3)
CLIENT_COUNTS = (1, 8, 32)
QUERIES_PER_CLIENT = 6


def _fitted_housing_engine() -> ReStore:
    db = base_database("housing", seed=0, scale=SCALE)
    dataset = ALL_SETUPS["H1"].make(
        db, keep_rate=0.5, removal_correlation=0.5, seed=1
    )
    config = ReStoreConfig(model=ModelConfig(train=TRAIN), seed=SEED)
    engine = ReStore.from_dataset(dataset, config).fit()
    engine.scenario_name = "housing/H1"
    return engine


def _workload():
    """The exp-2 housing workload: name → Query (Table 1, Q1–Q10)."""
    return {name: query for name, (_setup, query) in queries_for("housing").items()}


def _answer_all(engine: ReStore, workload) -> dict:
    answered = {}
    for name, query in workload.items():
        try:
            answered[name] = engine.answer(query).result.values
        except Exception as exc:  # parity includes the failure mode
            answered[name] = f"{type(exc).__name__}: {exc}"
    return answered


def test_artifact_roundtrip_parity(benchmark, tmp_path):
    """save → load → identical exp-2 workload answers (acceptance check)."""
    engine = _fitted_housing_engine()
    workload = _workload()
    expected = _answer_all(engine, workload)
    save_artifact(engine, tmp_path / "artifact")

    loaded = run_once(benchmark, ReStore.load, tmp_path / "artifact")
    actual = _answer_all(loaded, workload)
    matches = {name: actual[name] == expected[name] for name in workload}
    benchmark.extra_info["workload_queries"] = len(workload)
    benchmark.extra_info["parity"] = matches
    assert all(matches.values()), f"loaded-engine mismatches: {matches}"


def _drive_clients(engine: ReStore, num_clients: int) -> dict:
    """One load-generation run; returns the throughput/latency record."""
    workload = list(_workload().values())
    engine.clear_cache()

    async def client(service, client_id):
        for i in range(QUERIES_PER_CLIENT):
            await service.submit(workload[(client_id + i) % len(workload)])

    async def main():
        config = ServiceConfig(
            max_queue=max(2 * num_clients, 16), max_batch=32,
            batch_window_ms=2.0, n_workers=2,
        )
        async with CompletionService(engine, config) as service:
            started = time.perf_counter()
            await asyncio.gather(
                *(client(service, i) for i in range(num_clients))
            )
            elapsed = time.perf_counter() - started
            return elapsed, service.stats()

    elapsed, stats = asyncio.run(main())
    total = num_clients * QUERIES_PER_CLIENT
    assert stats.completed == total and stats.failed == 0
    return {
        "clients": num_clients,
        "requests": total,
        "seconds": elapsed,
        "throughput_rps": total / elapsed,
        "p50_latency_ms": stats.p50_latency_ms,
        "p95_latency_ms": stats.p95_latency_ms,
        "mean_batch_size": stats.mean_batch_size,
        "joins_started": stats.joins_started,
        "cache_hit_rate": stats.cache["hit_rate"],
    }


def test_serving_throughput(benchmark, tmp_path):
    """Throughput + p50/p95 latency at 1 / 8 / 32 concurrent clients."""
    engine = _fitted_housing_engine()
    save_artifact(engine, tmp_path / "artifact")
    loaded = ReStore.load(tmp_path / "artifact")

    def load_generation():
        return [_drive_clients(loaded, n) for n in CLIENT_COUNTS]

    rows = run_once(benchmark, load_generation)
    benchmark.extra_info["serving_load"] = rows
    print()
    print(f"{'clients':>7s} {'req':>5s} {'rps':>9s} {'p50 ms':>8s} "
          f"{'p95 ms':>8s} {'batch':>6s} {'joins':>6s}")
    for row in rows:
        print(f"{row['clients']:7d} {row['requests']:5d} "
              f"{row['throughput_rps']:9.1f} {row['p50_latency_ms']:8.2f} "
              f"{row['p95_latency_ms']:8.2f} {row['mean_batch_size']:6.2f} "
              f"{row['joins_started']:6d}")
    # The acceptance bar: the service sustains >= 8 concurrent clients.
    by_clients = {row["clients"]: row for row in rows}
    assert by_clients[8]["requests"] == 8 * QUERIES_PER_CLIENT
    assert by_clients[32]["requests"] == 32 * QUERIES_PER_CLIENT


def test_single_flight_coalescing(benchmark, tmp_path):
    """N identical in-flight queries trigger exactly one join (proof)."""
    engine = _fitted_housing_engine()
    save_artifact(engine, tmp_path / "artifact")
    loaded = ReStore.load(tmp_path / "artifact")
    sql = ("SELECT AVG(price) FROM neighborhood NATURAL JOIN apartment "
           "GROUP BY state;")
    n_requests = 16

    def identical_burst():
        loaded.clear_cache()

        async def main():
            config = ServiceConfig(max_queue=n_requests, max_batch=n_requests,
                                   batch_window_ms=20.0)
            async with CompletionService(loaded, config) as service:
                answers = await service.submit_many([sql] * n_requests)
                return answers, service.stats()

        return asyncio.run(main())

    answers, stats = run_once(benchmark, identical_burst)
    scalars = {tuple(sorted(a.result.values.items())) for a in answers}
    benchmark.extra_info["identical_requests"] = n_requests
    benchmark.extra_info["joins_started"] = stats.joins_started
    benchmark.extra_info["coalesced_requests"] = stats.coalesced_requests
    assert len(scalars) == 1          # everyone saw the same completed join
    assert stats.joins_started == 1   # ... produced exactly once
    assert stats.cache["misses"] == 1
