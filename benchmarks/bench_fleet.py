"""Fleet benchmarks: multi-worker throughput scaling + fleet single-flight.

Two measurements over one housing/H1 artifact, both emitted into the
benchmark JSON (``extra_info``):

* **worker scaling** — a :class:`~repro.serving.FleetRouter` at 1 / 2 / 4
  worker processes is driven by ≥1000 concurrent clients on a *warmed*
  fleet (joins computed, caches hot — steady-state serving); the JSON
  records the throughput curve and router-observed p50/p95 per fleet
  size.  The hard ≥2× acceptance assertion (4 workers vs 1) is gated on
  ≥4 available cores, PR-2 precedent: below that the processes time-slice
  one CPU and the curve is flat by construction.
* **fleet-wide single flight** — N identical concurrent queries against
  a *cold* 2-worker fleet produce exactly **one** incompleteness join,
  on exactly **one** worker: cold signatures route by join signature, so
  the core's single-flight coalescing spans the whole fleet.
"""

import asyncio
import os
import time

from repro import ReStore, ReStoreConfig, parse_query
from repro.core import ModelConfig
from repro.nn import TrainConfig
from repro.serving import FleetConfig, FleetRouter, ServiceConfig, save_artifact
from repro.workloads import ALL_SETUPS, base_database

from conftest import run_once

SEED = 5
SCALE = 0.25
TRAIN = TrainConfig(epochs=8, batch_size=256, lr=5e-3, patience=3)

WORKER_COUNTS = (1, 2, 4)
N_CLIENTS = 1000          #: concurrent clients in the scaling run
QUERY_VARIANTS = 32       #: distinct query texts (spread across the ring)

#: Steady-state workload: one completed-join aggregation per request,
#: with a varied predicate so warm routing spreads over every worker.
VARIANT_SQL = (
    "SELECT AVG(price) FROM neighborhood NATURAL JOIN apartment "
    "WHERE price < {threshold} GROUP BY state;"
)

COALESCE_SQL = (
    "SELECT AVG(price) FROM neighborhood NATURAL JOIN apartment "
    "GROUP BY state;"
)


def _available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _housing_artifact(tmp_path):
    db = base_database("housing", seed=0, scale=SCALE)
    dataset = ALL_SETUPS["H1"].make(
        db, keep_rate=0.5, removal_correlation=0.5, seed=1
    )
    config = ReStoreConfig(model=ModelConfig(train=TRAIN), seed=SEED)
    engine = ReStore.from_dataset(dataset, config).fit()
    engine.scenario_name = "housing/H1"
    path = tmp_path / "artifact"
    save_artifact(engine, path, scenario="housing/H1")
    return path


def _variants():
    return [
        parse_query(VARIANT_SQL.format(threshold=800 + 7 * i))
        for i in range(QUERY_VARIANTS)
    ]


def _drive_fleet(artifact, n_workers: int) -> dict:
    """One scaling point: warm the fleet, then time N_CLIENTS clients."""
    variants = _variants()

    async def main():
        config = FleetConfig(
            n_workers=n_workers,
            max_pending=2 * N_CLIENTS,
            worker=ServiceConfig(max_queue=64, max_batch=32,
                                 batch_window_ms=2.0, n_workers=2),
        )
        async with FleetRouter(artifact, config) as fleet:
            # Warm pass 1: cold signatures pin to one worker (single
            # flight); pass 2: warm spreading replicates the join into
            # every worker's cache.  Timing starts at steady state.
            for _ in range(2):
                await asyncio.gather(*(fleet.submit(q) for q in variants))
            started = time.perf_counter()
            await asyncio.gather(
                *(fleet.submit(variants[i % QUERY_VARIANTS])
                  for i in range(N_CLIENTS))
            )
            elapsed = time.perf_counter() - started
            stats = await fleet.stats()
        return elapsed, stats, fleet.final_worker_stats

    elapsed, stats, final = asyncio.run(main())
    assert stats.failed == 0 and stats.shed == 0 and stats.rejected == 0
    # Zero dropped in-flight requests: the workers answered everything.
    assert sum(s["completed"] for s in final) == stats.completed
    return {
        "workers": n_workers,
        "clients": N_CLIENTS,
        "requests": N_CLIENTS,
        "seconds": elapsed,
        "throughput_rps": N_CLIENTS / elapsed,
        "p50_latency_ms": stats.p50_latency_ms,
        "p95_latency_ms": stats.p95_latency_ms,
        "joins_started": stats.joins_started,
        "per_worker_completed": [w.get("completed", 0) for w in final],
    }


def test_fleet_worker_scaling(benchmark, tmp_path):
    """Throughput at 1 / 2 / 4 worker processes, ≥1000 concurrent clients."""
    artifact = _housing_artifact(tmp_path)

    def scaling_curve():
        return [_drive_fleet(artifact, n) for n in WORKER_COUNTS]

    rows = run_once(benchmark, scaling_curve)
    cores = _available_cores()
    benchmark.extra_info["fleet_scaling"] = rows
    benchmark.extra_info["available_cores"] = cores
    print()
    print(f"{'workers':>7s} {'clients':>7s} {'rps':>9s} {'p50 ms':>8s} "
          f"{'p95 ms':>8s} {'joins':>6s}")
    for row in rows:
        print(f"{row['workers']:7d} {row['clients']:7d} "
              f"{row['throughput_rps']:9.1f} {row['p50_latency_ms']:8.2f} "
              f"{row['p95_latency_ms']:8.2f} {row['joins_started']:6d}")

    by_workers = {row["workers"]: row for row in rows}
    # Work spreads: at 4 workers every worker answered a share.
    assert all(c > 0 for c in by_workers[4]["per_worker_completed"])
    # The hard scaling bar needs real parallel hardware (PR-2 precedent:
    # with fewer cores than workers the processes time-slice one CPU).
    if cores >= 4:
        speedup = (by_workers[4]["throughput_rps"]
                   / by_workers[1]["throughput_rps"])
        benchmark.extra_info["speedup_4v1"] = speedup
        assert speedup >= 2.0, (
            f"4-worker fleet reached only {speedup:.2f}x over 1 worker"
        )


def test_fleet_single_flight(benchmark, tmp_path):
    """Cold fleet, N identical concurrent queries ⇒ 1 join on 1 worker."""
    artifact = _housing_artifact(tmp_path)
    n_requests = 64

    def identical_burst():
        async def main():
            config = FleetConfig(
                n_workers=2, max_pending=2 * n_requests,
                worker=ServiceConfig(max_queue=n_requests,
                                     max_batch=n_requests,
                                     batch_window_ms=20.0),
            )
            async with FleetRouter(artifact, config) as fleet:
                answers = await asyncio.gather(
                    *(fleet.submit(COALESCE_SQL) for _ in range(n_requests))
                )
                stats = await fleet.stats()
            return answers, stats

        return asyncio.run(main())

    answers, stats = run_once(benchmark, identical_burst)
    distinct = {tuple(sorted(a.result.values.items())) for a in answers}
    per_worker_joins = [w.get("joins_started", 0) for w in stats.per_worker]
    benchmark.extra_info["identical_requests"] = n_requests
    benchmark.extra_info["fleet_joins_started"] = stats.joins_started
    benchmark.extra_info["per_worker_joins"] = per_worker_joins
    benchmark.extra_info["coalesced_requests"] = stats.coalesced_requests
    assert len(distinct) == 1            # everyone saw the same join
    assert stats.joins_started == 1      # ...computed once, fleet-wide
    assert sorted(per_worker_joins)[-1] == 1 and sum(per_worker_joins) == 1
