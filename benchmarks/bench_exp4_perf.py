"""Exp. 4 benches — Fig. 9 (AR vs SSAR), Fig. 10 (selection quality),
Fig. 11 (training time), Fig. 12 (completion time ± NN replacement),
plus runtime tracking: compiled-inference speedup and the parallel
worker-scaling curve."""

import os

import numpy as np

from repro.experiments import (
    fig9_ar_vs_ssar,
    print_fig9,
    print_fig10,
    print_inference_comparison,
    print_timings,
    print_training_comparison,
    print_worker_scaling,
    run_fig7,
    run_fig10,
    run_inference_comparison,
    run_timings,
    run_training_comparison,
    run_worker_scaling,
)

from conftest import run_once

SETUPS = ["H1", "H4", "M1"]


def _available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def test_fig9_ar_vs_ssar(benchmark, experiment_config):
    """Fig. 9: neither AR nor SSAR dominates across setups."""
    rows = run_once(benchmark, run_fig7, SETUPS, experiment_config)
    distributions = fig9_ar_vs_ssar(rows)
    print()
    print_fig9(distributions)
    # Both model families produce results on every setup that has fan-out
    # evidence; distributions overlap (no family always wins by a margin).
    assert any(d["ar"] for d in distributions.values())
    assert any(d["ssar"] for d in distributions.values())


def test_fig10_model_selection(benchmark, experiment_config):
    """Fig. 10: selection tracks the best model; the hint tracks it closely."""
    rows = run_once(benchmark, run_fig10, ["H1", "M1"], experiment_config)
    print()
    print_fig10(rows)
    sel = [r.selected for r in rows if not np.isnan(r.selected)]
    hint = [r.selected_with_hint for r in rows
            if not np.isnan(r.selected_with_hint)]
    all_means = [np.mean(r.all_models) for r in rows if r.all_models]
    # The selected model beats the average over all models, and the hint
    # does not hurt.
    assert np.mean(sel) >= np.mean(all_means) - 0.10
    assert np.mean(hint) >= np.mean(sel) - 0.10


def test_fig11_training_time(benchmark, experiment_config):
    """Fig. 11: AR trains faster than SSAR (per model, per dataset)."""
    rows = run_once(benchmark, run_timings, ["H1", "M1"], experiment_config)
    print()
    print_timings(rows)
    by_kind = {}
    for row in rows:
        by_kind.setdefault(row.model_kind, []).append(row.train_seconds)
    if "ar" in by_kind and "ssar" in by_kind:
        assert np.mean(by_kind["ar"]) < np.mean(by_kind["ssar"]) * 1.5
    assert all(t > 0 for ts in by_kind.values() for t in ts)


def test_inference_runtime_speedup(benchmark, experiment_config):
    """Compiled (graph-free float32) completion vs the autograd forward.

    Times the incompleteness join on both inference backends for every
    candidate model and emits the per-model comparison into the benchmark
    JSON (``extra_info``), so the speedup is tracked alongside wall time in
    the perf trajectory.
    """
    rows = run_once(benchmark, run_inference_comparison, ["H4"],
                    experiment_config)
    print()
    print_inference_comparison(rows)
    benchmark.extra_info["inference_comparison"] = [r.as_dict() for r in rows]
    speedups = [r.speedup for r in rows]
    benchmark.extra_info["compiled_speedup_median"] = float(np.median(speedups))
    benchmark.extra_info["compiled_speedup_min"] = float(np.min(speedups))
    assert all(r.outputs_equivalent for r in rows)
    # The compiled runtime is the point of the refactor: completion must be
    # at least 3x faster than the autograd path on the same models.
    assert np.median(speedups) >= 3.0


def test_training_runtime_speedup(benchmark, experiment_config):
    """Fused (float32 kernel) training vs the float64 autograd oracle.

    Times end-to-end ``ReStore.fit()`` on both backends for the exp-4
    workload and emits wall times, speedups and the fused-vs-autograd
    final-loss gap into the benchmark JSON (``extra_info``), so the
    training-perf trajectory is archived per commit alongside the
    inference numbers.
    """
    rows = run_once(benchmark, run_training_comparison, ["H4", "M1"],
                    experiment_config)
    print()
    print_training_comparison(rows)
    benchmark.extra_info["training_comparison"] = [r.as_dict() for r in rows]
    speedups = [r.speedup for r in rows]
    benchmark.extra_info["fused_speedup_median"] = float(np.median(speedups))
    benchmark.extra_info["fused_speedup_min"] = float(np.min(speedups))
    benchmark.extra_info["final_loss_gap_max"] = float(
        np.max([r.final_loss_gap for r in rows])
    )
    # Both backends must be interchangeable in outcome: same §5 candidate
    # ranking, final losses within a small band.
    assert all(r.selection_agrees for r in rows)
    assert all(r.final_loss_gap < 0.05 for r in rows)
    # The fused runtime is the point of the refactor: end-to-end fit must
    # be at least 3x faster than the autograd engine on the same workload.
    assert np.min(speedups) >= 3.0


def test_worker_scaling(benchmark, experiment_config):
    """Parallel sharded completion: throughput for 1/2/4 workers per backend.

    Emits the full scaling curve into the benchmark JSON (``extra_info``) so
    CI archives the per-commit trajectory.  Two assertions:

    * every configuration reproduces the serial rows bitwise (up to order) —
      always enforced;
    * 4 process workers reach ≥ 2x serial throughput — enforced where the
      hardware can physically show it (≥ 4 usable cores; CI runners
      qualify).  On smaller machines the curve is still recorded.
    """
    rows = run_once(benchmark, run_worker_scaling, ["H4"], experiment_config)
    print()
    print_worker_scaling(rows)
    benchmark.extra_info["worker_scaling"] = [r.as_dict() for r in rows]
    benchmark.extra_info["available_cores"] = _available_cores()
    assert all(r.identical_rows for r in rows)
    process4 = [r for r in rows if r.backend == "process" and r.n_workers == 4]
    assert process4
    best = max(r.speedup for r in process4)
    benchmark.extra_info["process4_speedup"] = float(best)
    if _available_cores() >= 4:
        assert best >= 2.0, (
            f"4 process workers reached only {best:.2f}x serial throughput"
        )


def test_fig12_completion_time(benchmark, experiment_config):
    """Fig. 12: completion is seconds-scale; NN replacement adds overhead."""
    rows = run_once(benchmark, run_timings, ["H4"], experiment_config)
    print()
    print_timings(rows)
    for row in rows:
        assert row.completion_seconds > 0
        # Replacement cannot be (much) cheaper than skipping it.
        assert (row.completion_with_replacement_seconds
                >= row.completion_seconds * 0.5)
