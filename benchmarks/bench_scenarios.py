"""Scenario-matrix benches: the registry swept end to end.

Two layers:

* the **removal sweep** instantiates every registered scenario (all
  datasets × mechanisms) and checks the structural invariants cheaply —
  this is the matrix a production deployment would smoke-test on every
  schema change;
* the **completion sweep** trains and completes the synthetic scenarios,
  reporting cardinality correction per missingness mechanism — how robust
  neural completion is across Rubin's taxonomy, not just the paper's
  biased protocol.
"""

import numpy as np

from repro.experiments import print_scenario_matrix, run_scenario_matrix
from repro.incomplete import registry

from conftest import run_once


def _instantiate_matrix(seed: int = 0):
    rows = []
    db_cache = {}
    for name in registry.names():
        entry = registry.get(name)
        if entry.dataset not in db_cache:
            db_cache[entry.dataset] = registry.scenario_database(
                name, seed=seed, scale=0.4
            )
        dataset = registry.make_scenario_dataset(
            name, db=db_cache[entry.dataset], seed=seed
        )
        rows.append((name, entry, dataset))
    return rows


def test_scenario_matrix_removal_sweep(benchmark):
    """Instantiate the full registry matrix; keep rates + FK integrity."""
    rows = run_once(benchmark, _instantiate_matrix)
    assert len(rows) >= 16
    mechanisms = set()
    print("\nScenario matrix removal sweep")
    for name, entry, dataset in rows:
        mechanisms.update(entry.mechanisms)
        for spec in dataset.specs:
            kept = dataset.kept_fraction(spec.table)
            n = len(dataset.complete.table(spec.table))
            assert abs(kept - spec.keep_rate) <= 2.0 / n + 1e-9, name
        # Dangling references may only point into removed incomplete tables.
        for problem in dataset.incomplete.validate_references():
            parent = problem.split("-> ")[1].split(".")[0]
            assert not dataset.annotation.is_complete(parent), (name, problem)
        print(f"  {name:26s} {'+'.join(entry.mechanisms):22s} "
              f"kept={dataset.kept_fraction(dataset.specs[0].table):5.1%}")
    assert len(mechanisms) >= 8


def test_scenario_matrix_completion_synthetic(benchmark, experiment_config):
    """Completion quality across the synthetic mechanism scenarios."""
    rows = run_once(
        benchmark, run_scenario_matrix,
        scenarios=registry.names("synthetic"), experiment=experiment_config,
    )
    print()
    print_scenario_matrix(rows)
    assert len(rows) == len(registry.names("synthetic"))
    # Completion must estimate cardinalities in the right ballpark for every
    # mechanism (the per-mechanism quality spread is the interesting output).
    for row in rows:
        assert row.completed_cardinality > row.incomplete_cardinality * 1.2, row
        assert np.isfinite(row.cardinality_correction), row
