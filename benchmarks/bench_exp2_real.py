"""Exp. 2 benches — Fig. 7a (bias reduction) and Fig. 7b (cardinality
correction) on the housing and movies schemas."""

import numpy as np
import pytest

from repro.experiments import print_fig7, run_fig7, summarize_fig7

from conftest import run_once

HOUSING = ["H1", "H3", "H4"]
MOVIES = ["M1", "M3", "M5"]


@pytest.fixture(scope="module")
def housing_rows(request):
    return None


def _run(benchmark, experiment_config, setups):
    rows = run_once(benchmark, run_fig7, setups, experiment_config)
    print()
    print_fig7(rows)
    return rows


def test_fig7a_housing(benchmark, experiment_config):
    """Fig. 7a housing: the completion substantially reduces the bias."""
    rows = _run(benchmark, experiment_config, HOUSING)
    summary = summarize_fig7(rows)
    print("per-setup summary:", {k: round(v["bias_reduction"], 3)
                                 for k, v in summary.items()})
    # At least one setup debiases substantially; no setup catastrophically
    # worse than doing nothing on average.
    reductions = [v["bias_reduction"] for v in summary.values()
                  if not np.isnan(v["bias_reduction"])]
    assert max(reductions) > 0.25
    assert np.mean(reductions) > -0.25


def test_fig7b_housing(benchmark, experiment_config):
    """Fig. 7b housing: cardinalities recovered from 30% of tuple factors."""
    rows = _run(benchmark, experiment_config, ["H1"])
    corrections = [r.cardinality_correction for r in rows
                   if not np.isnan(r.cardinality_correction)]
    print("cardinality corrections:", [round(c, 3) for c in corrections])
    assert np.mean(corrections) > 0.5


def test_fig7a_movies(benchmark, experiment_config):
    """Fig. 7a movies: bias reduction across the movie setups."""
    rows = _run(benchmark, experiment_config, MOVIES)
    summary = summarize_fig7(rows)
    print("per-setup summary:", {k: round(v["bias_reduction"], 3)
                                 for k, v in summary.items()})
    reductions = [v["bias_reduction"] for v in summary.values()
                  if not np.isnan(v["bias_reduction"])]
    assert max(reductions) > 0.2


def test_fig7b_movies(benchmark, experiment_config):
    """Fig. 7b movies: cardinality correction with only 20% of TFs kept."""
    rows = _run(benchmark, experiment_config, ["M3"])
    corrections = [r.cardinality_correction for r in rows
                   if not np.isnan(r.cardinality_correction)]
    print("cardinality corrections:", [round(c, 3) for c in corrections])
    assert np.mean(corrections) > 0.4
