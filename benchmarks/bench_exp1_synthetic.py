"""Exp. 1 benches — Fig. 5a (predictability & skew), Fig. 5b, Fig. 5c."""

import numpy as np

from repro.experiments import (
    fig5a_predictability,
    fig5a_skew,
    fig5b_training_loss,
    fig5c_fan_out,
)

from conftest import run_once


def test_fig5a_predictability(benchmark, experiment_config):
    """Fig. 5a top row: bias reduction grows with predictability."""
    cells = run_once(benchmark, fig5a_predictability, experiment_config)
    by_pred = {}
    for cell in cells:
        by_pred.setdefault(cell.predictability, []).append(cell.bias_reduction)
    print("\nFig 5a (top): bias reduction by predictability")
    means = {}
    for pred in sorted(by_pred):
        vals = [v for v in by_pred[pred] if not np.isnan(v)]
        means[pred] = float(np.mean(vals)) if vals else float("nan")
        print(f"  predictability {pred:4.0%}: mean bias reduction {means[pred]:7.1%}")
    # Paper shape: bias reduction grows monotonically with predictability,
    # and full predictability debiases substantially.
    ordered = [means[p] for p in sorted(means)]
    assert all(a <= b + 0.05 for a, b in zip(ordered, ordered[1:]))
    assert ordered[-1] > 0.3


def test_fig5a_skew(benchmark, experiment_config):
    """Fig. 5a bottom row: skew has no strong effect on completion quality."""
    cells = run_once(benchmark, fig5a_skew, experiment_config)
    by_skew = {}
    for cell in cells:
        by_skew.setdefault(cell.skew, []).append(cell.bias_reduction)
    print("\nFig 5a (bottom): bias reduction by zipf skew (predictability 80%)")
    means = []
    for skew in sorted(by_skew):
        vals = [v for v in by_skew[skew] if not np.isnan(v)]
        mean = float(np.mean(vals)) if vals else float("nan")
        means.append(mean)
        print(f"  zipf {skew:3.1f}: mean bias reduction {mean:7.1%}")
    # All skews should debias substantially (no collapse at high skew).
    assert all(m > 0.2 for m in means if not np.isnan(m))


def test_fig5b_training_loss(benchmark, experiment_config):
    """Fig. 5b: held-out loss decreases with predictability (selection signal)."""
    points = run_once(benchmark, fig5b_training_loss, experiment_config)
    print("\nFig 5b: (predictability, test loss)")
    for pred, loss in points:
        print(f"  predictability {pred:4.0%}: loss {loss:6.3f}")
    losses = [loss for _, loss in sorted(points)]
    assert losses[0] > losses[-1]


def test_fig5c_fan_out(benchmark, experiment_config):
    """Fig. 5c: SSAR's edge over AR grows with fan-out predictability."""
    rows = run_once(benchmark, fig5c_fan_out, experiment_config)
    print("\nFig 5c: (fan-out predictability, AR, SSAR, improvement)")
    improvements = []
    for level, ar, ssar in rows:
        improvements.append(ssar - ar)
        print(f"  fp {level:4.0%}: AR {ar:7.1%}  SSAR {ssar:7.1%}  "
              f"improvement {ssar - ar:+7.1%}")
    # At the highest coherence SSAR must clearly beat AR.
    assert improvements[-1] > 0.2
    assert improvements[-1] > improvements[0]
