"""Exp. 3 benches — Table 1 workload / Fig. 8 relative-error improvements."""

import numpy as np

from repro.experiments import print_fig8, run_fig8, summarize_fig8

from conftest import run_once

# Representative Table 1 subset per dataset: single-table COUNT/SUM/AVG plus
# join queries with filters and group-bys (the full set runs under
# RESTORE_BENCH_FULL=1 via the experiment grid).
HOUSING_QUERIES = ["Q1", "Q3", "Q4", "Q6", "Q8"]
MOVIES_QUERIES = ["Q1", "Q3", "Q5", "Q8", "Q10"]


def _record_query_profiles(benchmark, rows):
    """Per-query wall time and scan profile → ``--benchmark-json`` output.

    ``rows_scanned`` is what full materialization walks (every root
    evidence row); ``rows_qualifying`` what predicate pushdown walks.
    """
    per_query = {}
    for row in rows:
        entry = per_query.setdefault(row.query, {
            "wall_ms": 0.0, "rows_scanned": 0, "rows_qualifying": 0, "cells": 0,
        })
        entry["wall_ms"] += row.wall_ms
        entry["cells"] += 1
        if row.roots_total is not None:
            entry["rows_scanned"] += row.roots_total
            entry["rows_qualifying"] += row.roots_qualifying
    benchmark.extra_info["queries"] = per_query


def test_fig8_housing(benchmark, experiment_config):
    """Fig. 8 housing rows: completion improves most queries."""
    rows = run_once(benchmark, run_fig8, "housing", HOUSING_QUERIES,
                    experiment_config)
    _record_query_profiles(benchmark, rows)
    print()
    print_fig8(rows)
    summary = summarize_fig8(rows)
    improvements = list(summary.values())
    # Paper shape: most queries improve; COUNT/SUM improve most.  Small-data
    # join/AVG queries may regress slightly (the paper reports this too).
    assert np.mean(improvements) > 0.0
    assert max(improvements) > 0.1


def test_fig8_movies(benchmark, experiment_config):
    """Fig. 8 movies rows."""
    rows = run_once(benchmark, run_fig8, "movies", MOVIES_QUERIES,
                    experiment_config)
    _record_query_profiles(benchmark, rows)
    print()
    print_fig8(rows)
    summary = summarize_fig8(rows)
    improvements = list(summary.values())
    assert np.mean(improvements) > -0.05
    assert max(improvements) > 0.05
