"""Exp. 3 benches — Table 1 workload / Fig. 8 relative-error improvements."""

import numpy as np

from repro.experiments import print_fig8, run_fig8, summarize_fig8

from conftest import run_once

# Representative Table 1 subset per dataset: single-table COUNT/SUM/AVG plus
# join queries with filters and group-bys (the full set runs under
# RESTORE_BENCH_FULL=1 via the experiment grid).
HOUSING_QUERIES = ["Q1", "Q3", "Q4", "Q6", "Q8"]
MOVIES_QUERIES = ["Q1", "Q3", "Q5", "Q8", "Q10"]


def test_fig8_housing(benchmark, experiment_config):
    """Fig. 8 housing rows: completion improves most queries."""
    rows = run_once(benchmark, run_fig8, "housing", HOUSING_QUERIES,
                    experiment_config)
    print()
    print_fig8(rows)
    summary = summarize_fig8(rows)
    improvements = list(summary.values())
    # Paper shape: most queries improve; COUNT/SUM improve most.  Small-data
    # join/AVG queries may regress slightly (the paper reports this too).
    assert np.mean(improvements) > 0.0
    assert max(improvements) > 0.1


def test_fig8_movies(benchmark, experiment_config):
    """Fig. 8 movies rows."""
    rows = run_once(benchmark, run_fig8, "movies", MOVIES_QUERIES,
                    experiment_config)
    print()
    print_fig8(rows)
    summary = summarize_fig8(rows)
    improvements = list(summary.values())
    assert np.mean(improvements) > -0.05
    assert max(improvements) > 0.05
