"""Query-driven partial completion: pushdown vs full materialization.

The tentpole perf claim: on a selective query (few qualifying root evidence
rows) predicate pushdown restricts chunk scheduling and the walk itself to
qualifying rows, so the incompleteness join skips most of the model
sampling — while the per-row counter-based RNG keeps the surviving rows
bitwise-identical to the corresponding rows of a full materialization at
the same seed.  This bench measures both runs on paper-scale housing and
asserts the speedup (>= 3x) and the exact answer equality; the numbers
land in the ``--benchmark-json`` output via ``extra_info``.
"""

import time

import numpy as np
import pytest

from repro.core import ModelConfig, ReStore, ReStoreConfig, SamplingBudget
from repro.datasets import HousingConfig, generate_housing
from repro.incomplete import RemovalSpec, make_incomplete
from repro.nn import TrainConfig
from repro.query import parse_query

FAST = TrainConfig(epochs=10, batch_size=128, lr=1e-2, patience=3)

#: The bench requires a *selective* query: at most this fraction of root
#: evidence rows may qualify (the acceptance threshold of the claim).
MAX_SELECTIVITY = 0.10
MIN_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def pushdown_setup():
    """Paper-scale housing, incomplete apartments, a pinned 2-hop model."""
    db = generate_housing(HousingConfig(seed=0))
    dataset = make_incomplete(
        db, [RemovalSpec("apartment", "price", 0.5, 0.4)],
        tf_keep_rate=0.3, seed=1,
    )
    # chunk_size is pinned: the speedup claim compares two runs over the
    # SAME chunk grid (that is also what makes their answers bitwise
    # comparable and the partial cache reusable between them).
    config = ReStoreConfig(model=ModelConfig(hidden=(32, 32), train=FAST),
                           seed=3, chunk_size=4)
    engine = ReStore.from_dataset(dataset, config).fit()

    # Pin the completion model to the (neighborhood, apartment) path so the
    # measured walk is identical across runs regardless of selection noise.
    candidates = [
        m for m in engine.fitted_models().values()
        if m.layout.path.tables == ("neighborhood", "apartment")
    ]
    assert candidates, "no fitted model on the (neighborhood, apartment) path"
    model = sorted(candidates, key=lambda m: type(m).__name__)[0]

    threshold = float(np.quantile(db.table("neighborhood")["pop_density"], 0.92))
    query = parse_query(
        "SELECT AVG(apartment.price) "
        "FROM neighborhood NATURAL JOIN apartment "
        f"WHERE neighborhood.pop_density >= {threshold}"
    )
    return engine, query, model


def test_pushdown_speedup_bitwise(benchmark, pushdown_setup):
    """Budgetless pushdown: >= 3x faster, bitwise-identical answer."""
    engine, query, model = pushdown_setup

    profile = engine.pushdown_profile(query, model=model)
    selectivity = profile["roots_qualifying"] / profile["roots_total"]
    assert selectivity <= MAX_SELECTIVITY, (
        f"query not selective enough for the claim: {selectivity:.1%}"
    )

    engine.clear_cache()
    started = time.perf_counter()
    full = engine.answer(query, model=model)
    full_s = time.perf_counter() - started

    pushed_times = []

    def pushed_run():
        engine.clear_cache()
        t0 = time.perf_counter()
        answer = engine.answer(query, model=model, pushdown=True)
        pushed_times.append(time.perf_counter() - t0)
        return answer

    pushed = benchmark.pedantic(pushed_run, rounds=3, iterations=1,
                                warmup_rounds=0)
    pushed_s = min(pushed_times)

    assert pushed.pushdown is not None, "pushdown did not engage"
    assert pushed.result.scalar == full.result.scalar, (
        "pushed answer diverged from full materialization: "
        f"{pushed.result.scalar!r} != {full.result.scalar!r}"
    )
    speedup = full_s / pushed_s
    benchmark.extra_info.update({
        "full_s": full_s,
        "pushed_s": pushed_s,
        "speedup": speedup,
        "selectivity": selectivity,
        "roots_total": profile["roots_total"],
        "roots_qualifying": profile["roots_qualifying"],
        "chunks_total": pushed.pushdown["chunks_total"],
        "chunks_walked": pushed.pushdown["chunks_walked"],
        "bitwise_identical": True,
    })
    print(f"\nfull {full_s * 1000:.0f} ms, pushed {pushed_s * 1000:.0f} ms "
          f"({speedup:.1f}x, selectivity {selectivity:.1%}, walked "
          f"{pushed.pushdown['chunks_walked']}/{pushed.pushdown['chunks_total']}"
          " chunks)")
    assert speedup >= MIN_SPEEDUP, (
        f"pushdown speedup {speedup:.2f}x below the {MIN_SPEEDUP:.0f}x floor"
    )


def test_partial_cache_warm_answers(benchmark, pushdown_setup):
    """Warm partial cache: repeat pushed answers walk zero chunks."""
    engine, query, model = pushdown_setup
    engine.clear_cache()
    engine.answer(query, model=model, pushdown=True)  # warm the chunk cache

    def warm_run():
        # join cache would short-circuit the whole run; drop it but KEEP
        # the partial chunks so the answer reassembles from cache.
        engine.join_cache.invalidate()
        return engine.answer(query, model=model, pushdown=True)

    answer = benchmark.pedantic(warm_run, rounds=3, iterations=1,
                                warmup_rounds=0)
    assert answer.pushdown["chunks_walked"] == 0
    assert answer.pushdown["chunks_cached"] > 0
    benchmark.extra_info["partial_cache"] = engine.partial_cache_stats.as_dict()


def test_progressive_refinement_converges(pushdown_setup):
    """Budgeted mode: early estimate plus bands, exact final answer."""
    engine, query, model = pushdown_setup
    engine.clear_cache()
    exact = engine.answer(query, model=model, pushdown=True)

    engine.clear_cache()
    refinements = list(engine.answer_progressive(
        query, budget=SamplingBudget(initial_chunks=2), model=model,
    ))
    assert refinements[-1].final
    assert refinements[-1].result.scalar == exact.result.scalar
    widths = [r.band.width for r in refinements if r.band is not None]
    assert all(b <= a + 1e-12 for a, b in zip(widths, widths[1:]))
