"""One error taxonomy for the whole package.

Every failure ReStore raises on purpose descends from :class:`ReStoreError`
and carries a stable :attr:`~ReStoreError.code` string.  The codes do double
duty: they are the *wire* error codes of the serving protocol
(:mod:`repro.serving.protocol`), so an error raised inside a fleet worker
crosses the process boundary and is re-raised as the **same class** on the
router side (:func:`error_for_code`).

The hierarchy deliberately multiple-inherits from the builtin exception a
consumer would historically have caught: query validation errors are
``ValueError``\\ s, service lifecycle errors are ``RuntimeError``\\ s, and
artifact errors are ``ValueError``\\ s — existing ``except`` clauses keep
working unchanged.

The classes used to live next to their subsystems
(``repro.serving.batching``, ``repro.serving.artifacts``); those import
paths still resolve through deprecation shims (see :mod:`repro._compat`).
"""

from __future__ import annotations

from typing import Dict, Type


class ReStoreError(Exception):
    """Base class of every intentional ReStore failure.

    :attr:`code` is a stable, machine-readable identifier — reused as the
    wire code by the serving protocol and safe to branch on.
    """

    code: str = "restore_error"


class ConfigurationError(ReStoreError, ValueError):
    """A configuration dataclass rejected a field value (named in the message)."""

    code = "config_invalid"


class QueryValidationError(ReStoreError, ValueError):
    """A query references unknown tables/columns; candidates are listed."""

    code = "query_invalid"


class ServiceOverloadedError(ReStoreError, RuntimeError):
    """Admission is full (or a quota is exhausted) and the caller declined to wait."""

    code = "service_overloaded"


class ServiceClosedError(ReStoreError, RuntimeError):
    """The service/worker is not running (never started, or already closed)."""

    code = "service_closed"


class ProtocolError(ReStoreError, RuntimeError):
    """A wire frame is malformed, oversized or from an incompatible version."""

    code = "protocol_error"


class WorkerError(ReStoreError, RuntimeError):
    """A fleet worker failed outside the taxonomy (crash, disconnect, internal)."""

    code = "internal"


class MutationError(ReStoreError, ValueError):
    """A mutation batch names unknown tables/rows/columns or breaks integrity."""

    code = "mutation_invalid"


class StorageError(ReStoreError, ValueError):
    """A column store cannot be written or read (bad schema, bad directory)."""

    code = "storage_error"


class StoreIntegrityError(StorageError):
    """Store metadata failed its self-digest or a column file is damaged."""

    code = "storage_integrity"


class ArtifactError(ReStoreError, ValueError):
    """Base class for everything that can go wrong with an artifact."""

    code = "artifact_error"


class ArtifactVersionError(ArtifactError):
    """The artifact was written by an incompatible format version."""

    code = "artifact_version"


class ArtifactIntegrityError(ArtifactError):
    """A file is missing, corrupted or does not match its recorded hash."""

    code = "artifact_integrity"


class ArtifactSchemaError(ArtifactError):
    """The artifact's schema/layout does not match the load target."""

    code = "artifact_schema"


class ArtifactLineageError(ArtifactError):
    """An artifact's recorded lineage (parent digest / delta) does not match."""

    code = "artifact_lineage"


#: code → class, for re-raising wire errors as their original taxonomy
#: class on the client side of the protocol.
WIRE_CODES: Dict[str, Type[ReStoreError]] = {
    cls.code: cls
    for cls in (
        ReStoreError,
        ConfigurationError,
        QueryValidationError,
        ServiceOverloadedError,
        ServiceClosedError,
        ProtocolError,
        WorkerError,
        MutationError,
        StorageError,
        StoreIntegrityError,
        ArtifactError,
        ArtifactVersionError,
        ArtifactIntegrityError,
        ArtifactSchemaError,
        ArtifactLineageError,
    )
}


def wire_code(exc: BaseException) -> str:
    """The stable wire code for an exception (``"internal"`` off-taxonomy)."""
    if isinstance(exc, ReStoreError):
        return exc.code
    return WorkerError.code


def error_for_code(code: str, message: str) -> ReStoreError:
    """Rebuild the taxonomy exception a wire error frame describes.

    Unknown codes (a newer worker, an off-taxonomy failure) degrade to
    :class:`WorkerError` rather than failing the decode.
    """
    return WIRE_CODES.get(code, WorkerError)(message)


__all__ = [
    "ReStoreError",
    "ConfigurationError",
    "QueryValidationError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "ProtocolError",
    "WorkerError",
    "MutationError",
    "StorageError",
    "StoreIntegrityError",
    "ArtifactError",
    "ArtifactVersionError",
    "ArtifactIntegrityError",
    "ArtifactSchemaError",
    "ArtifactLineageError",
    "WIRE_CODES",
    "wire_code",
    "error_for_code",
]
