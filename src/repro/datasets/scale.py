"""Scale-tier dataset: a parameterized, counter-based two-table generator.

``SF 1 ≈ 100k`` root rows (``SF 10 ≈ 1M``, ``SF 100 ≈ 10M``), each root
fanning out to ``~fan_out_mean`` children.  Unlike the paper-sized
generators, nothing here owns a ``np.random.Generator``: every value is a
pure function of ``(seed, row lineage)`` through the same splitmix64
machinery the incompleteness join uses (:mod:`repro.runtime.rng`), so

* any scale factor is deterministic,
* any **subset** of rows is regenerable without materializing the rest
  (``root_block`` / ``child_block`` produce arbitrary row ranges), and
* generation can stream directly into the memory-mapped column store
  (:class:`~repro.relational.storage.StoreWriter`) without ever holding a
  full table in RAM.

Schema::

    site(id, region, x0, x1, score)          -- complete evidence table
      1:n reading(id, site_id, kind, v0, v1) -- incomplete target

``generate_scale`` produces the complete database;
``generate_scale_incomplete`` applies MCAR removal to ``reading`` *by
construction* (the keep decision is a counter draw keyed by the child id,
so no full-table mask pass is needed) and returns the database together
with a :class:`~repro.relational.SchemaAnnotation` whose tuple factors are
the true fan-outs for an annotated fraction of sites.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..relational import (
    ColumnKind,
    Database,
    ForeignKey,
    SchemaAnnotation,
    Table,
)
from ..relational.storage import StoreWriter
from ..relational.tuple_factors import TF_UNKNOWN
from ..runtime import rng as rt_rng

# Generation lineage tags: disjoint from the join's walk tags, so dataset
# randomness and completion randomness never share a stream even at equal
# seeds.
_TAG_ROOT = np.uint64(0x5CA1AB1E00000001)
_TAG_CHILD = np.uint64(0x5CA1AB1E00000002)
_TAG_KEEP = np.uint64(0x5CA1AB1E00000003)
_TAG_ANNOT = np.uint64(0x5CA1AB1E00000004)

_ROOT_DRAWS = 5     # region, x0, x1, score, fan-out
_CHILD_DRAWS = 4    # kind switch, kind value, v0, v1


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs of the scale-tier generator.

    ``scale_factor`` is the headline SF: roots = ``100_000 * scale_factor``
    (with a small floor), expected children ≈ ``fan_out_mean`` times that.
    ``fan_out_cap`` truncates the Poisson fan-out so the tuple-factor
    vocabulary is identical at every SF — a model trained on a small slice
    transplants onto a big layout without shape mismatches.
    """

    scale_factor: float = 1.0
    seed: int = 0
    num_regions: int = 12
    num_kinds: int = 8
    fan_out_mean: float = 3.0
    fan_out_cap: int = 8
    predictability: float = 0.8
    keep_rate: float = 0.6
    tf_annotation_rate: float = 0.5
    block_rows: int = 1 << 16
    roots_per_sf: int = 100_000
    num_roots_override: Optional[int] = None

    @property
    def num_roots(self) -> int:
        if self.num_roots_override is not None:
            return int(self.num_roots_override)
        return max(64, int(round(self.roots_per_sf * self.scale_factor)))

    @property
    def seed64(self) -> np.uint64:
        return rt_rng.fold_seed(self.seed)


def _region_cdf(config: ScaleConfig) -> np.ndarray:
    """Mildly skewed (zipf-ish) region popularity CDF."""
    weights = 1.0 / np.power(np.arange(1, config.num_regions + 1), 1.1)
    cdf = np.cumsum(weights / weights.sum())
    cdf[-1] = 1.0
    return cdf

def _fan_cdf(config: ScaleConfig) -> np.ndarray:
    """Truncated-Poisson fan-out CDF over ``0 .. fan_out_cap``."""
    ks = np.arange(config.fan_out_cap + 1, dtype=np.float64)
    log_pmf = ks * np.log(config.fan_out_mean) - config.fan_out_mean
    log_pmf -= np.cumsum(np.concatenate([[0.0], np.log(np.maximum(ks[1:], 1.0))]))
    pmf = np.exp(log_pmf)
    cdf = np.cumsum(pmf / pmf.sum())
    cdf[-1] = 1.0
    return cdf


def _root_uniforms(config: ScaleConfig, start: int, stop: int) -> np.ndarray:
    rows = np.arange(start, stop, dtype=np.int64)
    streams = rt_rng.derive_streams(
        rt_rng.root_streams(rows), _TAG_ROOT, np.zeros(len(rows), dtype=np.uint64)
    )
    counters = np.zeros(len(rows), dtype=np.uint64)
    return rt_rng.uniforms(config.seed64, streams, counters, _ROOT_DRAWS)


def _region_codes(config: ScaleConfig, u: np.ndarray) -> np.ndarray:
    return np.searchsorted(_region_cdf(config), u, side="right").astype(np.int64)


def fan_outs(config: ScaleConfig, start: int, stop: int) -> np.ndarray:
    """True child counts of roots ``[start, stop)`` — regenerable anywhere."""
    u = _root_uniforms(config, start, stop)[:, 4]
    return np.searchsorted(_fan_cdf(config), u, side="right").astype(np.int64)


def children_before(config: ScaleConfig, root: int) -> int:
    """Global child ordinal at which root ``root``'s children start.

    Streams the fan-out prefix sum in blocks — O(root) time, O(block)
    memory — so any root range knows its child-id base without a full
    materialized offsets array.
    """
    total = 0
    for start in range(0, root, config.block_rows):
        stop = min(start + config.block_rows, root)
        total += int(fan_outs(config, start, stop).sum())
    return total


def total_children(config: ScaleConfig) -> int:
    return children_before(config, config.num_roots)


def root_block(config: ScaleConfig, start: int, stop: int) -> Dict[str, np.ndarray]:
    """Columns of the ``site`` rows ``[start, stop)``."""
    u = _root_uniforms(config, start, stop)
    region_code = _region_codes(config, u[:, 0])
    # x0: region-correlated exponential; x1: uniform scale; score mixes the
    # region signal with noise at the configured predictability.
    x0 = -np.log1p(-u[:, 1]) * (1.0 + region_code)
    x1 = u[:, 2] * 10.0
    score = (
        config.predictability * region_code
        + (1.0 - config.predictability) * u[:, 3] * config.num_regions
    )
    region = np.array([f"r{c:02d}" for c in region_code], dtype=object)
    return {
        "id": np.arange(start, stop, dtype=np.int64),
        "region": region,
        "x0": x0,
        "x1": x1,
        "score": score,
    }


def child_block(
    config: ScaleConfig, start: int, stop: int, base_child_id: Optional[int] = None
) -> Dict[str, np.ndarray]:
    """Columns of every ``reading`` row whose parent is in ``[start, stop)``.

    ``base_child_id`` is the global ordinal of the first child (computed by
    :func:`children_before` when omitted); child ids are globally
    sequential, so the same child has the same id at every block size.
    """
    if base_child_id is None:
        base_child_id = children_before(config, start)
    fans = fan_outs(config, start, stop)
    num_children = int(fans.sum())
    parent_rows = np.repeat(np.arange(start, stop, dtype=np.int64), fans)
    offsets = np.concatenate([[0], np.cumsum(fans)[:-1]])
    ordinals = np.arange(num_children, dtype=np.int64) - offsets[parent_rows - start]

    parent_streams = rt_rng.root_streams(parent_rows)
    streams = rt_rng.derive_streams(parent_streams, _TAG_CHILD, ordinals)
    counters = np.zeros(num_children, dtype=np.uint64)
    u = rt_rng.uniforms(config.seed64, streams, counters, _CHILD_DRAWS)

    parent_u = _root_uniforms(config, start, stop)
    parent_region = _region_codes(config, parent_u[:, 0])[parent_rows - start]
    random_kind = np.floor(u[:, 1] * config.num_kinds).astype(np.int64)
    random_kind = np.minimum(random_kind, config.num_kinds - 1)
    kind_code = np.where(
        u[:, 0] < config.predictability,
        parent_region % config.num_kinds,
        random_kind,
    )
    v0 = kind_code + u[:, 2]
    v1 = (
        config.predictability * v0
        + (1.0 - config.predictability) * u[:, 3] * config.num_kinds
    )
    kind = np.array([f"k{c:02d}" for c in kind_code], dtype=object)
    return {
        "id": base_child_id + np.arange(num_children, dtype=np.int64),
        "site_id": parent_rows,
        "kind": kind,
        "v0": v0,
        "v1": v1,
    }


def keep_mask(config: ScaleConfig, child_ids: np.ndarray) -> np.ndarray:
    """MCAR keep decision per child id — a pure counter draw."""
    streams = rt_rng.key_streams(_TAG_KEEP, np.asarray(child_ids, dtype=np.int64))
    counters = np.zeros(len(streams), dtype=np.uint64)
    u = rt_rng.uniforms(config.seed64, streams, counters, 1)[:, 0]
    return u < config.keep_rate


def annotated_mask(config: ScaleConfig, root_ids: np.ndarray) -> np.ndarray:
    """Which sites carry a true tuple-factor annotation."""
    streams = rt_rng.key_streams(_TAG_ANNOT, np.asarray(root_ids, dtype=np.int64))
    counters = np.zeros(len(streams), dtype=np.uint64)
    u = rt_rng.uniforms(config.seed64, streams, counters, 1)[:, 0]
    return u < config.tf_annotation_rate


ROOT_KINDS = {
    "id": ColumnKind.KEY,
    "region": ColumnKind.CATEGORICAL,
    "x0": ColumnKind.CONTINUOUS,
    "x1": ColumnKind.CONTINUOUS,
    "score": ColumnKind.CONTINUOUS,
}
CHILD_KINDS = {
    "id": ColumnKind.KEY,
    "site_id": ColumnKind.KEY,
    "kind": ColumnKind.CATEGORICAL,
    "v0": ColumnKind.CONTINUOUS,
    "v1": ColumnKind.CONTINUOUS,
}
SCALE_FK = ForeignKey("reading", "site_id", "site", "id")


class _RamSink:
    """Accumulates row blocks in RAM (the small-scale / testing path)."""

    def __init__(self, kinds: Dict[str, ColumnKind]):
        self.kinds = kinds
        self.blocks = []

    def __call__(self, block: Dict[str, np.ndarray]) -> None:
        self.blocks.append(block)

    def table(self, name: str, num_rows: int) -> Table:
        if not self.blocks:
            columns = {c: np.array([], dtype=object if k is ColumnKind.CATEGORICAL
                                   else np.int64)
                       for c, k in self.kinds.items()}
        else:
            columns = {
                c: np.concatenate([b[c] for b in self.blocks])
                for c in self.blocks[0]
            }
        table = Table(name, columns, self.kinds)
        assert table.num_rows == num_rows
        return table


class _StoreSink:
    """Streams row blocks into a pre-sized mapped store."""

    def __init__(self, directory: str, name: str, num_rows: int,
                 kinds: Dict[str, ColumnKind]):
        self.writer = StoreWriter(directory, name, num_rows)
        for column, kind in kinds.items():
            dtype = None if kind is ColumnKind.CATEGORICAL else (
                np.int64 if kind is ColumnKind.KEY else np.float64
            )
            self.writer.add_column(column, kind, dtype=dtype)

    def __call__(self, block: Dict[str, np.ndarray]) -> None:
        self.writer.append_rows(block)

    def table(self, name: str, num_rows: int) -> Table:
        return Table.from_store(self.writer.finalize(), name=name)


def _emit(
    config: ScaleConfig,
    root_sink: Callable[[Dict[str, np.ndarray]], None],
    child_sink: Callable[[Dict[str, np.ndarray]], None],
    incomplete: bool,
) -> None:
    base_child = 0
    for start in range(0, config.num_roots, config.block_rows):
        stop = min(start + config.block_rows, config.num_roots)
        root_sink(root_block(config, start, stop))
        children = child_block(config, start, stop, base_child_id=base_child)
        base_child += len(children["id"])
        if incomplete:
            kept = keep_mask(config, children["id"])
            children = {c: v[kept] for c, v in children.items()}
        child_sink(children)


def _generate(config: ScaleConfig, spill_dir: Optional[str],
              incomplete: bool) -> Database:
    num_children = total_children(config)
    if incomplete:
        # Pre-size the child store by streaming the keep decisions once.
        kept_total = 0
        base = 0
        for start in range(0, config.num_roots, config.block_rows):
            stop = min(start + config.block_rows, config.num_roots)
            block_children = int(fan_outs(config, start, stop).sum())
            ids = base + np.arange(block_children, dtype=np.int64)
            kept_total += int(keep_mask(config, ids).sum())
            base += block_children
        num_children = kept_total
    if spill_dir is None:
        root_sink = _RamSink(ROOT_KINDS)
        child_sink = _RamSink(CHILD_KINDS)
    else:
        root_sink = _StoreSink(
            os.path.join(spill_dir, "site"), "site", config.num_roots, ROOT_KINDS
        )
        child_sink = _StoreSink(
            os.path.join(spill_dir, "reading"), "reading", num_children, CHILD_KINDS
        )
    _emit(config, root_sink, child_sink, incomplete)
    site = root_sink.table("site", config.num_roots)
    reading = child_sink.table("reading", num_children)
    return Database([site, reading], [SCALE_FK])


def generate_scale(
    config: ScaleConfig, spill_dir: Optional[str] = None
) -> Database:
    """The complete scale-tier database (in RAM, or spilled when given a
    directory — then no full table is ever held in memory)."""
    return _generate(config, spill_dir, incomplete=False)


def scale_annotation(config: ScaleConfig) -> SchemaAnnotation:
    """Completeness annotation of the incomplete variant.

    True fan-outs for the annotated fraction of sites, ``TF_UNKNOWN``
    elsewhere — built in blocks (one int64 per root resident)."""
    tfs = np.full(config.num_roots, TF_UNKNOWN, dtype=np.int64)
    for start in range(0, config.num_roots, config.block_rows):
        stop = min(start + config.block_rows, config.num_roots)
        ids = np.arange(start, stop, dtype=np.int64)
        known = annotated_mask(config, ids)
        block_tfs = fan_outs(config, start, stop)
        tfs[start:stop] = np.where(known, block_tfs, TF_UNKNOWN)
    return SchemaAnnotation(
        complete_tables={"site"},
        incomplete_tables={"reading"},
        known_tuple_factors={str(SCALE_FK): tfs},
    )


def generate_scale_incomplete(
    config: ScaleConfig, spill_dir: Optional[str] = None
) -> Tuple[Database, SchemaAnnotation]:
    """The MCAR-incomplete scale database plus its annotation.

    Incompleteness is applied *during* generation (keep draws keyed by
    child id), so the complete table never exists — essential at SF 100.
    The complete variant at the same config regenerates the ground truth.
    """
    db = _generate(config, spill_dir, incomplete=True)
    return db, scale_annotation(config)


def scale_training_slice(config: ScaleConfig, num_roots: int) -> ScaleConfig:
    """A small prefix-config: the first ``num_roots`` sites of the same
    universe (identical rows where they overlap), for cheap model fitting."""
    return replace(config, num_roots_override=int(num_roots))


__all__ = [
    "CHILD_KINDS",
    "ROOT_KINDS",
    "SCALE_FK",
    "ScaleConfig",
    "annotated_mask",
    "child_block",
    "children_before",
    "fan_outs",
    "generate_scale",
    "generate_scale_incomplete",
    "keep_mask",
    "root_block",
    "scale_annotation",
    "scale_training_slice",
    "total_children",
]
