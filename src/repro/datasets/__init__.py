"""Dataset generators: synthetic two-table, housing (Airbnb-like), movies (IMDB-like)."""

from .synthetic import SyntheticConfig, generate_synthetic
from .housing import HousingConfig, generate_housing
from .movies import MoviesConfig, generate_movies

__all__ = [
    "SyntheticConfig",
    "generate_synthetic",
    "HousingConfig",
    "generate_housing",
    "MoviesConfig",
    "generate_movies",
]
