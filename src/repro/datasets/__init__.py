"""Dataset generators: synthetic two-table, housing (Airbnb-like), movies
(IMDB-like), and the counter-based scale tier (SF 1/10/100)."""

from .synthetic import SyntheticConfig, generate_synthetic
from .housing import HousingConfig, generate_housing
from .movies import MoviesConfig, generate_movies
from .scale import (
    ScaleConfig,
    generate_scale,
    generate_scale_incomplete,
    scale_training_slice,
)

__all__ = [
    "SyntheticConfig",
    "generate_synthetic",
    "HousingConfig",
    "generate_housing",
    "MoviesConfig",
    "generate_movies",
    "ScaleConfig",
    "generate_scale",
    "generate_scale_incomplete",
    "scale_training_slice",
]
