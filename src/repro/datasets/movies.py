"""Synthetic movie database standing in for the paper's IMDB dataset.

The paper derives a seven-table schema from IMDB (Fig. 4b): ``movie``
(with merged genre/rating attributes), ``actor``, ``director``, ``company``
and the three m:n link tables ``movie_actor``, ``movie_director``,
``movie_company``.  The IMDB dump is not available offline, so we generate a
scaled-down substitute preserving the relational structure and the
correlations the setups M1–M5 rely on:

* ``movie.production_year`` correlates with the director generation
  (``director.birth_year``) and with rating drift → M1/M4 recoverable.
* ``movie.genre`` is largely idiosyncratic → M2 is intentionally hard.
* ``movie.country`` strongly correlates with ``company.country_code``
  (studios produce domestically) → M3/M5 recoverable through the
  ``movie_company`` link.
* the m:n links have heavy-tailed fan-outs, and removing a movie removes its
  dangling link rows — exactly the paper's hardened removal protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..relational import ColumnKind, Database, ForeignKey, Table

K = ColumnKind.KEY
C = ColumnKind.CATEGORICAL
N = ColumnKind.CONTINUOUS

GENRES = ["Drama", "Comedy", "Action", "Documentary", "Horror", "Romance"]
COUNTRIES = ["USA", "UK", "France", "Germany", "India", "Japan"]
COUNTRY_CODES = ["[us]", "[gb]", "[fr]", "[de]", "[in]", "[jp]"]
_COUNTRY_WEIGHTS = np.array([0.38, 0.16, 0.12, 0.10, 0.14, 0.10])


@dataclass
class MoviesConfig:
    """Scale and seed of the generated movie database."""

    num_movies: int = 1500
    num_directors: int = 400
    num_actors: int = 900
    num_companies: int = 200
    seed: int = 0


def _pick_lead_companies(
    u_domestic: np.ndarray,
    u_pick: np.ndarray,
    m_country: np.ndarray,
    c_country: np.ndarray,
    num_companies: int,
) -> tuple:
    """Vectorized lead-company assignment from pre-drawn uniforms.

    A movie picks a domestic company with probability 0.8 (uniformly
    among the companies of its country); otherwise — or when its country
    has no companies — any company, and the movie's country follows the
    studio.  All randomness enters through the two uniform arrays, so a
    per-row evaluation of the same rule is bitwise identical (the
    regression tests hold the vectorized gather to that reference).

    Returns ``(lead_company, m_country)`` — ``m_country`` is a corrected
    copy, not mutated in place.
    """
    m_country = np.asarray(m_country).copy()
    num_countries = int(c_country.max(initial=-1)) + 1
    order = np.argsort(c_country, kind="stable")
    pool_sizes = np.bincount(c_country, minlength=num_countries)
    pool_offsets = np.concatenate([[0], np.cumsum(pool_sizes)[:-1]])

    sizes = pool_sizes[m_country]
    domestic = (u_domestic < 0.8) & (sizes > 0)
    lead_company = np.empty(len(m_country), dtype=np.int64)
    if domestic.any():
        idx = np.flatnonzero(domestic)
        picks = np.minimum(
            (u_pick[idx] * sizes[idx]).astype(np.int64), sizes[idx] - 1
        )
        lead_company[idx] = order[pool_offsets[m_country[idx]] + picks]
    foreign = np.flatnonzero(~domestic)
    if len(foreign):
        picks = np.minimum(
            (u_pick[foreign] * num_companies).astype(np.int64),
            num_companies - 1,
        )
        lead_company[foreign] = picks
        m_country[foreign] = c_country[picks]  # country follows studio
    return lead_company, m_country


def generate_movies(config: MoviesConfig = MoviesConfig()) -> Database:
    """Generate the complete (ground-truth) movie database."""
    rng = np.random.default_rng(config.seed)

    # ------------------------------------------------------------------
    # Directors: a "generation" latent ties birth year to the production
    # years of their movies.
    # ------------------------------------------------------------------
    n_d = config.num_directors
    generation = rng.random(n_d)  # 0 = old guard, 1 = newcomer
    d_birth_year = (1920 + generation * 70 + rng.normal(0, 4, n_d)).round()
    d_gender = np.where(rng.random(n_d) < 0.25 + 0.2 * generation, "f", "m")
    d_country_codes = rng.choice(len(COUNTRIES), size=n_d, p=_COUNTRY_WEIGHTS)
    director = Table(
        "director",
        {
            "id": np.arange(n_d, dtype=np.int64),
            "birth_year": d_birth_year,
            "gender": d_gender.astype(object),
            "birth_country": np.array(COUNTRIES, dtype=object)[d_country_codes],
        },
        {"id": K, "birth_year": N, "gender": C, "birth_country": C},
    )

    # ------------------------------------------------------------------
    # Actors.
    # ------------------------------------------------------------------
    n_act = config.num_actors
    act_gen = rng.random(n_act)
    actor = Table(
        "actor",
        {
            "id": np.arange(n_act, dtype=np.int64),
            "birth_year": (1930 + act_gen * 65 + rng.normal(0, 5, n_act)).round(),
            "gender": np.where(rng.random(n_act) < 0.45, "f", "m").astype(object),
        },
        {"id": K, "birth_year": N, "gender": C},
    )

    # ------------------------------------------------------------------
    # Companies.
    # ------------------------------------------------------------------
    n_c = config.num_companies
    c_country = rng.choice(len(COUNTRY_CODES), size=n_c, p=_COUNTRY_WEIGHTS)
    company = Table(
        "company",
        {
            "id": np.arange(n_c, dtype=np.int64),
            "country_code": np.array(COUNTRY_CODES, dtype=object)[c_country],
        },
        {"id": K, "country_code": C},
    )

    # ------------------------------------------------------------------
    # Movies: the production year follows the (future) director generation;
    # we first assign each movie a latent "era" then link matching directors.
    # ------------------------------------------------------------------
    n_m = config.num_movies
    era = rng.random(n_m)
    production_year = (1955 + era * 65 + rng.normal(0, 4, n_m)).clip(1950, 2020).round()
    # Country follows the lead company, assigned below; start from the prior.
    m_country = rng.choice(len(COUNTRIES), size=n_m, p=_COUNTRY_WEIGHTS)
    genre_scores = rng.normal(0, 1.0, size=(n_m, len(GENRES)))
    genre_scores[:, 0] += 0.4 * era          # modern drama boom (weak signal)
    genre_scores[:, 3] += 0.3 * (era > 0.7)  # documentaries are recent
    genre = genre_scores.argmax(axis=1)
    rating = (5.2 + 1.2 * (genre == 3) + 0.8 * era + rng.normal(0, 1.0, n_m)).clip(1, 10)

    # ------------------------------------------------------------------
    # movie_company links: one lead company per movie (domestic with high
    # probability) plus occasional co-producers.
    # ------------------------------------------------------------------
    lead_company, m_country = _pick_lead_companies(
        rng.random(n_m), rng.random(n_m), m_country, c_country, n_c
    )
    extra_counts = rng.poisson(0.8, size=n_m)
    mc_movie = np.concatenate([np.arange(n_m), np.repeat(np.arange(n_m), extra_counts)])
    mc_company = np.concatenate([
        lead_company,
        rng.integers(0, n_c, size=int(extra_counts.sum())),
    ]).astype(np.int64)

    movie = Table(
        "movie",
        {
            "id": np.arange(n_m, dtype=np.int64),
            "production_year": production_year,
            "genre": np.array(GENRES, dtype=object)[genre],
            "country": np.array(COUNTRIES, dtype=object)[m_country],
            "rating": rating.round(1),
        },
        {"id": K, "production_year": N, "genre": C, "country": C, "rating": N},
    )

    movie_company = Table(
        "movie_company",
        {
            "id": np.arange(len(mc_movie), dtype=np.int64),
            "movie_id": mc_movie.astype(np.int64),
            "company_id": mc_company,
        },
        {"id": K, "movie_id": K, "company_id": K},
    )

    # ------------------------------------------------------------------
    # movie_director links: directors work in their own era.
    # ------------------------------------------------------------------
    director_order = np.argsort(generation)
    sorted_gen = generation[director_order]
    num_dirs = 1 + (rng.random(n_m) < 0.12)
    md_movie = np.repeat(np.arange(n_m), num_dirs)
    md_centers = np.searchsorted(sorted_gen, era)[md_movie]
    md_offsets = rng.normal(
        0, max(2, n_d // 20), size=len(md_movie)
    ).astype(int)
    md_director = director_order[np.clip(md_centers + md_offsets, 0, n_d - 1)]
    movie_director = Table(
        "movie_director",
        {
            "id": np.arange(len(md_movie), dtype=np.int64),
            "movie_id": md_movie.astype(np.int64),
            "director_id": md_director.astype(np.int64),
        },
        {"id": K, "movie_id": K, "director_id": K},
    )

    # ------------------------------------------------------------------
    # movie_actor links: heavy-tailed cast sizes, era-matched actors.
    # ------------------------------------------------------------------
    actor_order = np.argsort(act_gen)
    sorted_act_gen = act_gen[actor_order]
    cast_sizes = np.clip(rng.poisson(4.0, size=n_m), 1, 12)
    ma_movie = np.repeat(np.arange(n_m), cast_sizes)
    centers = np.searchsorted(sorted_act_gen, era[ma_movie])
    offsets = rng.normal(0, max(3, n_act // 15), size=len(ma_movie)).astype(int)
    positions = np.clip(centers + offsets, 0, n_act - 1)
    ma_actor = actor_order[positions]
    movie_actor = Table(
        "movie_actor",
        {
            "id": np.arange(len(ma_movie), dtype=np.int64),
            "movie_id": ma_movie.astype(np.int64),
            "actor_id": ma_actor.astype(np.int64),
        },
        {"id": K, "movie_id": K, "actor_id": K},
    )

    return Database(
        [movie, director, actor, company, movie_director, movie_actor, movie_company],
        [
            ForeignKey("movie_director", "movie_id", "movie"),
            ForeignKey("movie_director", "director_id", "director"),
            ForeignKey("movie_actor", "movie_id", "movie"),
            ForeignKey("movie_actor", "actor_id", "actor"),
            ForeignKey("movie_company", "movie_id", "movie"),
            ForeignKey("movie_company", "company_id", "company"),
        ],
    )
