"""Synthetic housing database standing in for the paper's Airbnb dataset.

The paper normalizes the public Airbnb listing dump into three relations
(Fig. 4a): ``neighborhood`` (≈8K rows), ``apartment`` (≈500K) and
``landlord`` (≈360K).  That dump is not available offline, so this module
generates a statistically faithful substitute at a configurable scale
(default ≈100× smaller so CPU-only training stays in seconds; see DESIGN.md
§1 for the substitution argument).

The correlation structure is what the completion setups H1–H5 (Fig. 4c)
exercise, so it is engineered explicitly:

* ``apartment.price`` strongly depends on the neighborhood (population
  density, state wealth) and on ``room_type`` → H1 is *debiasable* from
  neighborhood evidence.
* ``apartment.room_type`` is only weakly linked to evidence tables → H2 is
  intentionally hard (the paper reports low bias reduction there).
* ``apartment.property_type`` depends on the state → H3 is moderate.
* ``landlord.landlord_since`` correlates with the price tier of the
  landlord's apartments → H4 recoverable through apartment evidence.
* ``landlord.landlord_response_rate`` correlates with ``room_type`` and
  ``landlord_response_time`` → H5 recoverable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..relational import ColumnKind, Database, ForeignKey, Table

K = ColumnKind.KEY
C = ColumnKind.CATEGORICAL
N = ColumnKind.CONTINUOUS

STATES = ["NY", "CA", "TX", "FL", "WA", "IL", "CO", "GA"]
ROOM_TYPES = ["Entire home/apt", "Private room", "Shared room"]
PROPERTY_TYPES = ["Apartment", "House", "Condo"]

# Per-state wealth multiplier: drives density, prices and property mix.
_STATE_WEALTH = np.array([1.6, 1.5, 0.9, 1.0, 1.3, 1.1, 1.05, 0.85])
# P(property_type | state tier): richer states skew to apartments/condos.
_PROP_RICH = np.array([0.55, 0.15, 0.30])
_PROP_POOR = np.array([0.25, 0.60, 0.15])


@dataclass
class HousingConfig:
    """Scale and seed of the generated housing database."""

    num_neighborhoods: int = 120
    num_landlords: int = 700
    apartments_per_neighborhood: float = 25.0
    seed: int = 0


def generate_housing(config: HousingConfig = HousingConfig()) -> Database:
    """Generate the complete (ground-truth) housing database."""
    rng = np.random.default_rng(config.seed)

    # ------------------------------------------------------------------
    # Neighborhoods: state + population density (log-normal around wealth).
    # ------------------------------------------------------------------
    n_n = config.num_neighborhoods
    state_codes = rng.integers(0, len(STATES), size=n_n)
    wealth = _STATE_WEALTH[state_codes]
    pop_density = np.exp(rng.normal(np.log(2000.0 * wealth), 0.6))
    neighborhood = Table(
        "neighborhood",
        {
            "id": np.arange(n_n, dtype=np.int64),
            "state": np.array(STATES, dtype=object)[state_codes],
            "pop_density": pop_density.round(1),
        },
        {"id": K, "state": C, "pop_density": N},
    )

    # ------------------------------------------------------------------
    # Landlords: tenure, response behaviour.  A hidden "professionalism"
    # score ties the landlord attributes to the apartments they own.
    # ------------------------------------------------------------------
    n_l = config.num_landlords
    professionalism = rng.beta(2.0, 2.0, size=n_l)  # 0 = casual, 1 = professional
    landlord_since = (2008 + np.floor((1 - professionalism) * 12)
                      + rng.integers(0, 2, size=n_l)).clip(2008, 2020)
    response_time = np.where(
        professionalism > 0.66, 1,
        np.where(professionalism > 0.33, 2, 3),
    ) + (rng.random(n_l) < 0.15).astype(int)
    response_rate = (55 + 40 * professionalism + rng.normal(0, 6, n_l)).clip(10, 100)
    landlord = Table(
        "landlord",
        {
            "id": np.arange(n_l, dtype=np.int64),
            "landlord_since": landlord_since.astype(float),
            "landlord_response_time": response_time.astype(float),
            "landlord_response_rate": response_rate.round(1),
        },
        {"id": K, "landlord_since": N, "landlord_response_time": N,
         "landlord_response_rate": N},
    )

    # ------------------------------------------------------------------
    # Apartments: fan-out grows with density; prices follow neighborhood
    # wealth/density and room type; property type follows state tier.
    # ------------------------------------------------------------------
    density_norm = pop_density / pop_density.mean()
    lam = config.apartments_per_neighborhood * (0.4 + 0.6 * density_norm)
    fan_outs = rng.poisson(lam).clip(1, None)
    apt_neighborhood = np.repeat(np.arange(n_n, dtype=np.int64), fan_outs)
    n_a = len(apt_neighborhood)

    apt_wealth = wealth[apt_neighborhood]
    apt_density = density_norm[apt_neighborhood]

    # Professional landlords list more apartments: sample owners weighted by
    # professionalism so landlord attributes correlate with listing traits.
    owner_weights = 0.3 + professionalism
    owner_weights = owner_weights / owner_weights.sum()
    apt_landlord = rng.choice(n_l, size=n_a, p=owner_weights).astype(np.int64)
    owner_prof = professionalism[apt_landlord]

    # Room type: professionals list entire homes; wealth mildly shifts it
    # upward; otherwise noisy (this keeps H2 hard on purpose).
    room_scores = np.stack(
        [
            0.8 + 1.2 * owner_prof + 0.2 * (apt_wealth - 1.0),
            1.0 + rng.normal(0, 0.2, n_a),
            0.45 - 0.3 * owner_prof,
        ],
        axis=1,
    ) + rng.normal(0, 0.55, size=(n_a, 3))
    room_codes = room_scores.argmax(axis=1)

    prop_probs = np.where(
        (apt_wealth > 1.15)[:, None], _PROP_RICH[None, :], _PROP_POOR[None, :]
    )
    prop_codes = _vectorized_choice(rng, prop_probs)

    accommodates = np.clip(
        rng.poisson(2.2 + 1.5 * (room_codes == 0)), 1, 8
    ).astype(float)

    room_premium = np.array([1.35, 0.85, 0.55])[room_codes]
    price = (
        60.0
        * apt_wealth ** 1.6
        * (0.6 + 0.8 * apt_density ** 0.5)
        * room_premium
        * (1.0 + 0.08 * accommodates)
        * np.exp(rng.normal(0, 0.25, n_a))
    )

    apartment = Table(
        "apartment",
        {
            "id": np.arange(n_a, dtype=np.int64),
            "neighborhood_id": apt_neighborhood,
            "landlord_id": apt_landlord,
            "price": price.round(0),
            "room_type": np.array(ROOM_TYPES, dtype=object)[room_codes],
            "property_type": np.array(PROPERTY_TYPES, dtype=object)[prop_codes],
            "accommodates": accommodates,
        },
        {"id": K, "neighborhood_id": K, "landlord_id": K, "price": N,
         "room_type": C, "property_type": C, "accommodates": N},
    )

    return Database(
        [neighborhood, apartment, landlord],
        [
            ForeignKey("apartment", "neighborhood_id", "neighborhood"),
            ForeignKey("apartment", "landlord_id", "landlord"),
        ],
    )


def _vectorized_choice(rng: np.random.Generator, probs: np.ndarray) -> np.ndarray:
    """One categorical draw per row of a probability matrix."""
    cdf = np.cumsum(probs, axis=1)
    cdf[:, -1] = 1.0
    draws = rng.random((len(probs), 1))
    return (draws > cdf).sum(axis=1)
