"""The two-table synthetic dataset of Exp. 1 (paper §7.2).

A complete table ``ta`` with a single categorical attribute ``a`` and an
incomplete table ``tb`` with a single categorical attribute ``b`` connected
by a foreign key.  Three generator knobs drive the figures:

* **predictability** — probability that ``b`` equals the value functionally
  determined by ``a`` (the rest is uniform noise).  Fig. 5a top row, Fig. 5b,
  Fig. 6/13.
* **skew** — Zipf factor of the distribution of ``a`` (0 = uniform).
  Fig. 5a bottom row.
* **fan-out predictability** — coherence of ``b`` *within* the group of
  ``tb`` tuples sharing a parent: each group draws a hidden base value
  (independent of ``a``) and members copy it with this probability.
  Fig. 5c — only SSAR models can exploit it via self-evidence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..relational import ColumnKind, Database, ForeignKey, Table


@dataclass
class SyntheticConfig:
    """Generator parameters for the Exp. 1 dataset."""

    num_parents: int = 1000
    domain_size: int = 8
    predictability: float = 1.0
    skew: float = 0.0
    fan_out_mean: float = 3.0
    fan_out_predictability: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.predictability <= 1.0:
            raise ValueError("predictability must be in [0, 1]")
        if not 0.0 <= self.fan_out_predictability <= 1.0:
            raise ValueError("fan_out_predictability must be in [0, 1]")
        if self.skew < 0:
            raise ValueError("skew must be >= 0")
        if self.domain_size < 2:
            raise ValueError("domain_size must be >= 2")


def _zipf_weights(domain: int, skew: float) -> np.ndarray:
    if skew == 0.0:
        return np.full(domain, 1.0 / domain)
    ranks = np.arange(1, domain + 1, dtype=float)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def generate_synthetic(config: SyntheticConfig) -> Database:
    """Build the complete two-table database for one Exp. 1 configuration."""
    rng = np.random.default_rng(config.seed)
    domain = np.array([f"v{i}" for i in range(config.domain_size)], dtype=object)

    a_codes = rng.choice(
        config.domain_size, size=config.num_parents,
        p=_zipf_weights(config.domain_size, config.skew),
    )
    fan_outs = rng.poisson(config.fan_out_mean, size=config.num_parents)

    parent_ids = np.arange(config.num_parents, dtype=np.int64)
    ta = Table(
        "ta",
        {"id": parent_ids, "a": domain[a_codes]},
        {"id": ColumnKind.KEY, "a": ColumnKind.CATEGORICAL},
    )

    # Hidden per-parent base value: independent of ``a`` so that only the
    # sibling structure (fan-out predictability) reveals it.
    group_base = rng.integers(0, config.domain_size, size=config.num_parents)

    child_parent = np.repeat(parent_ids, fan_outs)
    num_children = len(child_parent)
    child_a = a_codes[child_parent]

    # b starts as uniform noise, is overridden by f(a) = a with probability
    # ``predictability``, and then by the group base value with probability
    # ``fan_out_predictability`` (the group signal dominates when present,
    # matching the Fig. 5c setup where AR models cannot see it).
    b_codes = rng.integers(0, config.domain_size, size=num_children)
    from_a = rng.random(num_children) < config.predictability
    b_codes[from_a] = child_a[from_a]
    from_group = rng.random(num_children) < config.fan_out_predictability
    b_codes[from_group] = group_base[child_parent[from_group]]

    tb = Table(
        "tb",
        {
            "id": np.arange(num_children, dtype=np.int64),
            "ta_id": child_parent,
            "b": domain[b_codes],
        },
        {"id": ColumnKind.KEY, "ta_id": ColumnKind.KEY, "b": ColumnKind.CATEGORICAL},
    )

    return Database([ta, tb], [ForeignKey("tb", "ta_id", "ta")])
