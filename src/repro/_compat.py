"""Deprecation shims for moved public names.

When a class moves to a new canonical home (e.g. the error taxonomy
consolidating in :mod:`repro.errors`), the old module keeps resolving the
name through a module-level ``__getattr__`` that emits a single
:class:`DeprecationWarning` per name and returns the *same object* the new
home exports — old imports keep working, new code gets nudged.
"""

from __future__ import annotations

import importlib
import warnings
from typing import Callable, Dict, Set


def deprecated_attrs(module_name: str, moved: Dict[str, str]) -> Callable[[str], object]:
    """Build a module ``__getattr__`` serving ``moved`` = {name: new module}.

    Usage, at the bottom of the old module::

        __getattr__ = deprecated_attrs(__name__, {"Thing": "repro.new_home"})
    """
    warned: Set[str] = set()

    def __getattr__(name: str) -> object:
        try:
            target = moved[name]
        except KeyError:
            raise AttributeError(
                f"module {module_name!r} has no attribute {name!r}"
            ) from None
        if name not in warned:
            warned.add(name)
            warnings.warn(
                f"importing {name} from {module_name} is deprecated; "
                f"import it from {target} instead",
                DeprecationWarning,
                stacklevel=2,
            )
        return getattr(importlib.import_module(target), name)

    return __getattr__
