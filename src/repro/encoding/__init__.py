"""Column discretization codecs for the completion models."""

from .codecs import CategoricalCodec, ContinuousCodec, TupleFactorCodec
from .table_encoder import TableEncoder

__all__ = [
    "CategoricalCodec",
    "ContinuousCodec",
    "TupleFactorCodec",
    "TableEncoder",
]
