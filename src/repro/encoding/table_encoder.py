"""Fit per-column codecs for a table and encode/decode row batches."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..relational import ColumnKind, Table
from .codecs import CategoricalCodec, ContinuousCodec

Codec = Union[CategoricalCodec, ContinuousCodec]


class TableEncoder:
    """Codecs for the modelable (non-key) columns of one table.

    The encoder is fitted once per table on the available data and reused by
    every completion model that touches the table, so all models share one
    consistent code space (a prerequisite for model merging).
    """

    def __init__(self, table: Table, num_bins: int = 32):
        self.table_name = table.name
        self.columns: List[str] = table.modelable_columns()
        self._codecs: Dict[str, Codec] = {}
        for column in self.columns:
            kind = table.meta(column).kind
            if kind is ColumnKind.CATEGORICAL:
                codec: Codec = CategoricalCodec().fit(table[column])
            else:
                codec = ContinuousCodec(num_bins).fit(table[column])
            self._codecs[column] = codec

    def codec(self, column: str) -> Codec:
        if column not in self._codecs:
            raise KeyError(f"{self.table_name} has no encoded column {column!r}")
        return self._codecs[column]

    def vocab_sizes(self) -> List[int]:
        return [self._codecs[c].vocab_size for c in self.columns]

    def encode_table(self, table: Table) -> np.ndarray:
        """Encode the modelable columns of ``table`` to ``(rows, cols)`` codes."""
        if not self.columns:
            return np.zeros((table.num_rows, 0), dtype=np.int64)
        return self.encode_columns({c: table[c] for c in self.columns})

    def encode_columns(self, columns: Dict[str, Sequence]) -> np.ndarray:
        """Encode a column dict (e.g. a slice of a join result)."""
        if not self.columns:
            return np.zeros((self._infer_len(columns), 0), dtype=np.int64)
        encoded = [self._codecs[c].encode(columns[c]) for c in self.columns]
        return np.stack(encoded, axis=1)

    def decode_codes(
        self,
        codes: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        uniforms: Optional[np.ndarray] = None,
    ) -> Dict[str, np.ndarray]:
        """Decode a ``(rows, cols)`` code matrix back to raw column values.

        ``uniforms`` optionally supplies a ``(rows, cols)`` matrix of
        ``[0, 1)`` draws — column ``i`` drives the dequantization (or
        unknown-code fallback) of the ``i``-th encoded column, keeping
        decoding independent of how rows were batched.
        """
        if codes.ndim != 2 or codes.shape[1] != len(self.columns):
            raise ValueError(
                f"expected (rows, {len(self.columns)}) codes for {self.table_name}"
            )
        if uniforms is not None and uniforms.shape != codes.shape:
            raise ValueError("uniforms must align with the code matrix")
        out: Dict[str, np.ndarray] = {}
        for i, column in enumerate(self.columns):
            codec = self._codecs[column]
            u = None if uniforms is None else uniforms[:, i]
            out[column] = codec.decode(codes[:, i], rng=rng, uniforms=u)
        return out

    @staticmethod
    def _infer_len(columns: Dict[str, Sequence]) -> int:
        for values in columns.values():
            return len(values)
        return 0

    # ------------------------------------------------------------------
    # Serialization (see repro.serving.artifacts)
    # ------------------------------------------------------------------
    def get_state(self) -> Dict[str, object]:
        """Fitted state of every codec, keyed by column (arrays stay numpy)."""
        return {
            "table": self.table_name,
            "columns": list(self.columns),
            "codecs": {c: self._codecs[c].get_state() for c in self.columns},
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "TableEncoder":
        """Rebuild an encoder from :meth:`get_state` output (no refit)."""
        encoder = cls.__new__(cls)
        encoder.table_name = state["table"]
        encoder.columns = list(state["columns"])
        encoder._codecs = {}
        for column in encoder.columns:
            codec_state = state["codecs"][column]
            kind = codec_state["kind"]
            if kind == "categorical":
                encoder._codecs[column] = CategoricalCodec.from_state(codec_state)
            elif kind == "continuous":
                encoder._codecs[column] = ContinuousCodec.from_state(codec_state)
            else:
                raise ValueError(f"unknown codec kind {kind!r} for {column!r}")
        return encoder
