"""Column codecs: discretize attribute values for the completion models.

Following the naru lineage the paper builds on [40], every modeled column is
mapped to a dense integer code space:

* categorical columns are dictionary-encoded with a reserved ``<unk>`` code
  for values never seen in the (incomplete) training data,
* continuous columns are quantile-binned; decoding draws uniformly within
  the bin (dequantization) or returns the bin's training mean,
* tuple factors are capped counts with a reserved ``unknown`` code used when
  the relationship completeness is not annotated for a parent tuple.

Codecs are fitted on the *available* (incomplete) data — the only data
ReStore ever sees — and applied to evidence tuples at completion time.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..relational.tuple_factors import TF_UNKNOWN


class CategoricalCodec:
    """Dictionary encoding with an explicit unknown bucket (code 0)."""

    UNK = 0

    def __init__(self) -> None:
        self._values: Optional[np.ndarray] = None
        self._code_of: Dict = {}

    def fit(self, values: Sequence) -> "CategoricalCodec":
        uniques = np.unique(np.asarray(values))
        self._values = uniques
        self._code_of = {value: code + 1 for code, value in enumerate(uniques.tolist())}
        return self

    @property
    def vocab_size(self) -> int:
        self._require_fitted()
        return len(self._values) + 1  # type: ignore[arg-type]

    def encode(self, values: Sequence) -> np.ndarray:
        self._require_fitted()
        arr = np.asarray(values)
        if len(self._values) == 0:
            return np.full(len(arr), self.UNK, dtype=np.int64)
        try:
            # Vectorized path: the fitted values are sorted (np.unique), so
            # dictionary encoding is a binary search plus an exact match.
            pos = np.searchsorted(self._values, arr)
            clipped = np.minimum(pos, len(self._values) - 1)
            found = self._values[clipped] == arr
            return np.where(found, clipped + 1, self.UNK).astype(np.int64)
        except TypeError:
            # Mixed/unorderable dtypes fall back to the dictionary.
            return np.array(
                [self._code_of.get(v, self.UNK) for v in arr.tolist()],
                dtype=np.int64,
            )

    def decode(
        self,
        codes: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        uniforms: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Map codes back to values; unknown codes draw a random known value.

        Sampling should never produce ``<unk>`` in practice (the training
        data contains no unknowns), but a uniform fallback keeps decoding
        total.  ``uniforms`` optionally supplies one ``[0, 1)`` draw per row
        (the runtime's counter-based streams) so the fallback does not
        depend on batch chunking.
        """
        self._require_fitted()
        codes = np.asarray(codes)
        out = np.empty(len(codes), dtype=self._values.dtype)  # type: ignore[union-attr]
        known = codes > 0
        out[known] = self._values[codes[known] - 1]  # type: ignore[index]
        if (~known).any():
            if uniforms is not None:
                picks = (np.asarray(uniforms)[~known] * len(self._values)).astype(int)
                out[~known] = self._values[np.minimum(picks, len(self._values) - 1)]
            else:
                rng = rng or np.random.default_rng(0)
                out[~known] = rng.choice(self._values, size=int((~known).sum()))
        return out

    def _require_fitted(self) -> None:
        if self._values is None:
            raise RuntimeError("codec must be fitted before use")

    def get_state(self) -> Dict[str, object]:
        """Serializable fitted state (arrays stay numpy; see serving.artifacts)."""
        self._require_fitted()
        return {"kind": "categorical", "values": np.array(self._values, copy=True)}

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "CategoricalCodec":
        """Rebuild a fitted codec from :meth:`get_state` output."""
        codec = cls()
        values = np.asarray(state["values"])
        codec._values = values
        codec._code_of = {value: code + 1 for code, value in enumerate(values.tolist())}
        return codec


class ContinuousCodec:
    """Quantile binning with per-bin dequantization.

    ``num_bins`` is an upper bound; duplicate quantile edges (heavily
    repeated values) collapse into fewer effective bins.
    """

    def __init__(self, num_bins: int = 32):
        if num_bins < 2:
            raise ValueError("need at least 2 bins")
        self.num_bins = num_bins
        self._edges: Optional[np.ndarray] = None
        self._bin_means: Optional[np.ndarray] = None
        self._bin_lo: Optional[np.ndarray] = None
        self._bin_hi: Optional[np.ndarray] = None
        self._integral = False

    def fit(self, values: Sequence) -> "ContinuousCodec":
        arr = np.asarray(values, dtype=float)
        if len(arr) == 0:
            raise ValueError("cannot fit a continuous codec on no data")
        # Integer-valued columns (years, counts) must decode to integers,
        # otherwise synthesized values never match GROUP BY keys or equality
        # filters on the original domain.
        self._integral = bool(np.all(arr == np.round(arr)))
        quantiles = np.linspace(0.0, 1.0, self.num_bins + 1)
        edges = np.unique(np.quantile(arr, quantiles))
        if len(edges) < 2:  # constant column
            edges = np.array([edges[0], edges[0] + 1e-9])
        self._edges = edges
        codes = self._bin_of(arr)
        k = self.vocab_size
        sums = np.bincount(codes, weights=arr, minlength=k)
        counts = np.bincount(codes, minlength=k)
        means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
        # Empty bins fall back to the bin midpoint.
        lows, highs = edges[:-1], edges[1:]
        mid = (lows + highs) / 2.0
        self._bin_means = np.where(counts > 0, means, mid)
        self._bin_lo = lows
        self._bin_hi = highs
        return self

    @property
    def vocab_size(self) -> int:
        self._require_fitted()
        return len(self._edges) - 1  # type: ignore[arg-type]

    def _bin_of(self, arr: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self._edges, arr, side="right") - 1  # type: ignore[arg-type]
        return np.clip(idx, 0, self.vocab_size - 1).astype(np.int64)

    def encode(self, values: Sequence) -> np.ndarray:
        self._require_fitted()
        return self._bin_of(np.asarray(values, dtype=float))

    def decode(
        self,
        codes: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        dequantize: bool = True,
        uniforms: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Bin codes back to floats — uniform within-bin draws by default.

        Columns that were integral at fit time decode to rounded values so
        synthesized data stays on the original domain.  ``uniforms``
        optionally supplies the per-row within-bin positions directly (the
        runtime's counter-based streams), taking precedence over ``rng``.
        """
        self._require_fitted()
        codes = np.asarray(codes)
        if not dequantize or (rng is None and uniforms is None):
            out = self._bin_means[codes]  # type: ignore[index]
        else:
            lo = self._bin_lo[codes]  # type: ignore[index]
            hi = self._bin_hi[codes]  # type: ignore[index]
            u = np.asarray(uniforms) if uniforms is not None else rng.random(len(codes))
            out = lo + u * (hi - lo)
        if self._integral:
            return np.round(out)
        return out

    def _require_fitted(self) -> None:
        if self._edges is None:
            raise RuntimeError("codec must be fitted before use")

    def get_state(self) -> Dict[str, object]:
        """Serializable fitted state (arrays stay numpy; see serving.artifacts)."""
        self._require_fitted()
        return {
            "kind": "continuous",
            "num_bins": self.num_bins,
            "integral": bool(self._integral),
            "edges": np.array(self._edges, copy=True),
            "bin_means": np.array(self._bin_means, copy=True),
            "bin_lo": np.array(self._bin_lo, copy=True),
            "bin_hi": np.array(self._bin_hi, copy=True),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "ContinuousCodec":
        """Rebuild a fitted codec from :meth:`get_state` output."""
        codec = cls(int(state["num_bins"]))
        codec._integral = bool(state["integral"])
        codec._edges = np.asarray(state["edges"], dtype=float)
        codec._bin_means = np.asarray(state["bin_means"], dtype=float)
        codec._bin_lo = np.asarray(state["bin_lo"], dtype=float)
        codec._bin_hi = np.asarray(state["bin_hi"], dtype=float)
        return codec


class TupleFactorCodec:
    """Capped-count encoding for tuple factors with an ``unknown`` code.

    Codes ``0 .. cap`` are literal counts (``cap`` also absorbs the clipped
    tail); code ``cap + 1`` marks parents whose relationship completeness is
    unannotated (``TF_UNKNOWN``).  Sampling masks the unknown code out — a
    synthesized tuple factor is always an actual count.
    """

    def __init__(self, cap: int = 20):
        if cap < 1:
            raise ValueError("tuple-factor cap must be >= 1")
        self.cap = cap

    @property
    def vocab_size(self) -> int:
        return self.cap + 2

    @property
    def unknown_code(self) -> int:
        return self.cap + 1

    def encode(self, tfs: Sequence[int]) -> np.ndarray:
        arr = np.asarray(tfs, dtype=np.int64)
        out = np.clip(arr, 0, self.cap)
        out[arr == TF_UNKNOWN] = self.unknown_code
        return out

    def decode(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes, dtype=np.int64)
        out = codes.copy()
        out[codes == self.unknown_code] = TF_UNKNOWN
        return out

    def sampling_mask(self) -> np.ndarray:
        """Boolean mask over the vocabulary: which codes sampling may emit."""
        mask = np.ones(self.vocab_size, dtype=bool)
        mask[self.unknown_code] = False
        return mask
