"""Exp. 2 — data completion on the real-world schemas (Fig. 7a/7b).

For every completion setup H1–H5 / M1–M5, sweep keep rate × removal
correlation, complete with every candidate model and report the best
model's bias reduction (Fig. 7a) and cardinality correction (Fig. 7b).
The per-candidate evaluations are retained — Exp. 4 (Fig. 9/10) reuses
them for the AR-vs-SSAR and model-selection analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import ReStore
from ..incomplete import registry
from ..metrics import cardinality_correction
from ..workloads import ALL_SETUPS, base_database
from .common import (
    ExperimentConfig,
    SetupEvaluation,
    evaluate_candidates,
    run_setup_cell,
)


@dataclass
class Fig7Row:
    """One cell of the Fig. 7 grids (best candidate per cell)."""

    setup: str
    keep_rate: float
    removal_correlation: float
    bias_reduction: float
    cardinality_correction: float
    best_model: str
    candidates: List[SetupEvaluation] = field(default_factory=list)


def run_fig7(
    setups: Optional[Sequence[str]] = None,
    experiment: Optional[ExperimentConfig] = None,
) -> List[Fig7Row]:
    """Fig. 7a/7b sweep over the requested setups (default: all ten)."""
    experiment = experiment or ExperimentConfig.default()
    names = list(setups) if setups is not None else list(ALL_SETUPS)
    rows: List[Fig7Row] = []
    db_cache: Dict[str, object] = {}
    for name in names:
        setup = ALL_SETUPS[name]
        if setup.dataset not in db_cache:
            db_cache[setup.dataset] = base_database(
                setup.dataset, seed=experiment.seed, scale=experiment.scale
            )
        db = db_cache[setup.dataset]
        for keep in experiment.keep_rates:
            for corr in experiment.removal_correlations:
                engine, dataset = run_setup_cell(
                    setup, keep, corr, experiment, db=db
                )
                evaluations = evaluate_candidates(
                    engine, dataset, setup, keep, corr
                )
                # "Optimal model and path selection" (§7.2): report the best
                # candidate per metric, as the paper plots each metric under
                # optimal selection.
                best = max(
                    evaluations,
                    key=lambda e: (np.nan_to_num(e.bias_reduction, nan=-10.0)),
                )
                best_card = max(
                    evaluations,
                    key=lambda e: np.nan_to_num(e.cardinality_correction, nan=-10.0),
                )
                rows.append(Fig7Row(
                    setup=name,
                    keep_rate=keep,
                    removal_correlation=corr,
                    bias_reduction=best.bias_reduction,
                    cardinality_correction=best_card.cardinality_correction,
                    best_model=f"{best.model_kind}:{best.path}",
                    candidates=evaluations,
                ))
    return rows


@dataclass
class ScenarioMatrixRow:
    """Completion quality of one registry scenario (best candidate)."""

    scenario: str
    dataset: str
    mechanisms: str
    target: str
    keep_rate: float
    true_cardinality: int
    incomplete_cardinality: int
    completed_cardinality: float
    cardinality_correction: float


def run_scenario_matrix(
    scenarios: Optional[Sequence[str]] = None,
    experiment: Optional[ExperimentConfig] = None,
    keep_rate: float = 0.5,
) -> List[ScenarioMatrixRow]:
    """Sweep the named scenario matrix of :mod:`repro.incomplete.registry`.

    For every registry scenario (default: all of them), instantiate the
    incomplete dataset, fit the engine on the scenario's primary target and
    report how well the completion restores the target's cardinality.  This
    is the experiment-side consumer of the registry: new scenarios join the
    sweep by registration, without touching experiment code.
    """
    experiment = experiment or ExperimentConfig.default()
    names = list(scenarios) if scenarios is not None else registry.names()
    rows: List[ScenarioMatrixRow] = []
    db_cache: Dict[str, object] = {}
    for name in names:
        entry = registry.get(name)
        if entry.dataset not in db_cache:
            db_cache[entry.dataset] = base_database(
                entry.dataset, seed=experiment.seed, scale=experiment.scale
            )
        db = db_cache[entry.dataset]
        scenario = entry.build(keep_rate=keep_rate)
        dataset = scenario.instantiate(db, seed=experiment.seed)
        target = scenario.primary_table
        engine = ReStore.from_dataset(dataset, experiment.engine_config())
        engine.fit(targets=[target])
        best = engine.candidates(target)[0]
        completed = engine.completed_join(best.model)
        projected = engine.project_to_tables(completed, (target,))
        completed_card = float(projected.effective_weights().sum())
        true_card = len(db.table(target))
        incomplete_card = len(dataset.incomplete.table(target))
        rows.append(ScenarioMatrixRow(
            scenario=name,
            dataset=entry.dataset,
            mechanisms="+".join(entry.mechanisms),
            target=target,
            keep_rate=keep_rate,
            true_cardinality=true_card,
            incomplete_cardinality=incomplete_card,
            completed_cardinality=completed_card,
            cardinality_correction=cardinality_correction(
                true_card, incomplete_card, completed_card
            ),
        ))
    return rows


def print_scenario_matrix(rows: Sequence[ScenarioMatrixRow]) -> None:
    print(f"{'scenario':26s} {'mechanisms':22s} {'target':10s} "
          f"{'true':>6s} {'incomp':>7s} {'completed':>10s} {'corr':>7s}")
    for row in rows:
        print(f"{row.scenario:26s} {row.mechanisms:22s} {row.target:10s} "
              f"{row.true_cardinality:6d} {row.incomplete_cardinality:7d} "
              f"{row.completed_cardinality:10.1f} "
              f"{row.cardinality_correction:7.1%}")


def summarize_fig7(rows: Sequence[Fig7Row]) -> Dict[str, Dict[str, float]]:
    """Per-setup mean bias reduction and cardinality correction."""
    summary: Dict[str, Dict[str, float]] = {}
    for setup in sorted({r.setup for r in rows}):
        mine = [r for r in rows if r.setup == setup]
        reductions = [r.bias_reduction for r in mine
                      if not np.isnan(r.bias_reduction)]
        corrections = [r.cardinality_correction for r in mine
                       if not np.isnan(r.cardinality_correction)]
        summary[setup] = {
            "bias_reduction": float(np.mean(reductions)) if reductions else float("nan"),
            "cardinality_correction": (
                float(np.mean(corrections)) if corrections else float("nan")
            ),
            "cells": float(len(mine)),
        }
    return summary


def print_fig7(rows: Sequence[Fig7Row]) -> None:
    """Paper-style series: one line per (setup, keep rate) over correlations."""
    print(f"{'setup':6s} {'keep':>5s} " + " ".join(
        f"corr={c:.1f}" for c in sorted({r.removal_correlation for r in rows})
    ))
    for setup in sorted({r.setup for r in rows}):
        for keep in sorted({r.keep_rate for r in rows}):
            cells = sorted(
                (r for r in rows if r.setup == setup and r.keep_rate == keep),
                key=lambda r: r.removal_correlation,
            )
            if not cells:
                continue
            series = " ".join(f"{r.bias_reduction:8.1%}" for r in cells)
            print(f"{setup:6s} {keep:5.0%} {series}")
