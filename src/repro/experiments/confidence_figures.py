"""Confidence-interval experiments (Fig. 6, Fig. 13, Fig. 14).

Fig. 6/13 (synthetic): the 95% band for the count-fraction of the
most-deviating attribute value must contain the true fraction, tighten as
predictability and keep rate grow, and stay inside the theoretical min/max.
Fig. 14 (real data): the same construction on the categorical setups of the
housing and movies datasets, swept over the removal correlation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core import (
    ARCompletionModel,
    ConfidenceEstimator,
    IncompletenessJoin,
    ModelConfig,
    PathLayout,
    build_encoders,
)
from ..datasets import SyntheticConfig, generate_synthetic
from ..incomplete import RemovalSpec, make_incomplete
from ..metrics import categorical_fraction
from ..nn import TrainConfig
from ..relational import CompletionPath
from ..workloads import ALL_SETUPS
from .common import ExperimentConfig, full_grid, run_setup_cell


@dataclass
class ConfidenceCell:
    """One panel point of Fig. 6/13/14."""

    predictability: float
    keep_rate: float
    removal_correlation: float
    true_fraction: float
    estimate: float
    lower: float
    upper: float
    theoretical_min: float
    theoretical_max: float

    @property
    def covered(self) -> bool:
        return self.lower - 1e-9 <= self.true_fraction <= self.upper + 1e-9

    @property
    def width(self) -> float:
        return self.upper - self.lower


def _synthetic_confidence_cell(
    predictability: float,
    keep_rate: float,
    removal_correlation: float,
    experiment: ExperimentConfig,
) -> ConfidenceCell:
    db = generate_synthetic(SyntheticConfig(
        num_parents=1000, predictability=predictability, seed=experiment.seed,
    ))
    dataset = make_incomplete(
        db, [RemovalSpec("tb", "b", keep_rate, removal_correlation)],
        tf_keep_rate=0.5, seed=experiment.seed,
    )
    encoders = build_encoders(dataset.incomplete, num_bins=16)
    layout = PathLayout(dataset.incomplete, dataset.annotation,
                        CompletionPath(("ta", "tb")), encoders)
    model = ARCompletionModel(layout, ModelConfig(
        hidden=experiment.hidden, seed=experiment.seed,
        train=TrainConfig(epochs=experiment.epochs, batch_size=256, lr=5e-3,
                          patience=4, seed=experiment.seed),
    ))
    model.fit()
    completed = IncompletenessJoin(model, seed=experiment.seed).run()

    # The paper picks the attribute value with the highest deviation between
    # incomplete and complete data — the hardest case for the bounds.
    value = _most_deviating_value(db.table("tb")["b"],
                                  dataset.incomplete.table("tb")["b"])
    true_fraction = categorical_fraction(db.table("tb")["b"], value)
    band = ConfidenceEstimator(model, completed).count_fraction("b", value)
    return ConfidenceCell(
        predictability=predictability,
        keep_rate=keep_rate,
        removal_correlation=removal_correlation,
        true_fraction=true_fraction,
        estimate=band.estimate,
        lower=band.lower, upper=band.upper,
        theoretical_min=band.theoretical_min,
        theoretical_max=band.theoretical_max,
    )


def _most_deviating_value(true_values: np.ndarray, incomplete_values: np.ndarray):
    uniques = np.unique(true_values)
    deviations = []
    for value in uniques:
        t = float(np.mean(true_values == value))
        i = float(np.mean(incomplete_values == value))
        deviations.append(abs(t - i))
    return uniques[int(np.argmax(deviations))]


def run_fig6(experiment: Optional[ExperimentConfig] = None) -> List[ConfidenceCell]:
    """Fig. 6: removal correlation fixed at 40%, predictability × keep rate."""
    experiment = experiment or ExperimentConfig.default()
    predictabilities = ((0.25, 0.5, 0.75, 1.0) if full_grid() else (0.25, 0.75))
    cells = []
    for keep in experiment.keep_rates:
        for predictability in predictabilities:
            cells.append(_synthetic_confidence_cell(
                predictability, keep, 0.4, experiment
            ))
    return cells


def run_fig13(experiment: Optional[ExperimentConfig] = None) -> List[ConfidenceCell]:
    """Fig. 13 (appendix): the full removal-correlation × keep-rate grid."""
    experiment = experiment or ExperimentConfig.default()
    predictabilities = ((0.2, 0.6, 1.0) if full_grid() else (0.3, 0.9))
    cells = []
    for corr in experiment.removal_correlations:
        for keep in experiment.keep_rates:
            for predictability in predictabilities:
                cells.append(_synthetic_confidence_cell(
                    predictability, keep, corr, experiment
                ))
    return cells


def run_fig14(
    setups: Optional[Sequence[str]] = None,
    experiment: Optional[ExperimentConfig] = None,
) -> List[Tuple[str, ConfidenceCell]]:
    """Fig. 14: confidence bands on the categorical real-data setups."""
    experiment = experiment or ExperimentConfig.default()
    names = list(setups) if setups is not None else ["H2", "H3", "M3", "M5"]
    out: List[Tuple[str, ConfidenceCell]] = []
    for name in names:
        setup = ALL_SETUPS[name]
        target = setup.incomplete_table
        attribute = setup.biased_attribute
        for keep in experiment.keep_rates:
            for corr in experiment.removal_correlations:
                engine, dataset = run_setup_cell(setup, keep, corr, experiment)
                choice = engine.select_model(target)
                completed = engine.completed_join(choice.model)
                value = _most_deviating_value(
                    dataset.complete.table(target)[attribute],
                    dataset.incomplete.table(target)[attribute],
                )
                true_fraction = categorical_fraction(
                    dataset.complete.table(target)[attribute], value
                )
                band = ConfidenceEstimator(choice.model, completed).count_fraction(
                    attribute, value
                )
                out.append((name, ConfidenceCell(
                    predictability=float("nan"),
                    keep_rate=keep, removal_correlation=corr,
                    true_fraction=true_fraction,
                    estimate=band.estimate,
                    lower=band.lower, upper=band.upper,
                    theoretical_min=band.theoretical_min or float("nan"),
                    theoretical_max=band.theoretical_max or float("nan"),
                )))
    return out


def print_confidence(cells: Sequence[ConfidenceCell], label: str) -> None:
    covered = sum(c.covered for c in cells)
    print(f"{label}: {covered}/{len(cells)} cells cover the true fraction")
    print(f"{'pred':>5s} {'keep':>5s} {'corr':>5s} {'true':>6s} "
          f"{'band':>17s} {'theoretical':>17s}")
    for cell in cells:
        pred = f"{cell.predictability:.2f}" if not np.isnan(cell.predictability) else "  - "
        print(f"{pred:>5s} {cell.keep_rate:5.0%} {cell.removal_correlation:5.0%} "
              f"{cell.true_fraction:6.1%} [{cell.lower:6.1%}, {cell.upper:6.1%}] "
              f"[{cell.theoretical_min:6.1%}, {cell.theoretical_max:6.1%}]")
