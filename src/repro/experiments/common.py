"""Shared experiment scaffolding: configs, per-setup evaluation helpers.

All experiment runners accept an :class:`ExperimentConfig`; the default is
sized for CPU-only smoke runs (a few minutes for the full bench suite).
Setting the environment variable ``RESTORE_BENCH_FULL=1`` switches to the
paper's full parameter grid.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core import ModelConfig, ReStore, ReStoreConfig
from ..incomplete import IncompleteDataset
from ..metrics import (
    bias_reduction,
    cardinality_correction,
    categorical_fraction,
    weighted_average,
)
from ..nn import TrainConfig
from ..relational import ColumnKind, Database
from ..workloads import CompletionSetup, base_database


def full_grid() -> bool:
    """Whether the full paper grid was requested via RESTORE_BENCH_FULL."""
    return os.environ.get("RESTORE_BENCH_FULL", "") == "1"


@dataclass
class ExperimentConfig:
    """Knobs every experiment runner shares."""

    keep_rates: Tuple[float, ...] = (0.4, 0.8)
    removal_correlations: Tuple[float, ...] = (0.2, 0.6)
    scale: float = 0.5
    seed: int = 0
    epochs: int = 15
    hidden: Tuple[int, ...] = (64, 64)
    max_path_length: int = 4

    @classmethod
    def default(cls) -> "ExperimentConfig":
        if full_grid():
            return cls(
                keep_rates=(0.2, 0.4, 0.6, 0.8),
                removal_correlations=(0.2, 0.4, 0.6, 0.8),
                scale=1.0,
                epochs=30,
            )
        return cls()

    def engine_config(self, use_ssar: bool = True) -> ReStoreConfig:
        return ReStoreConfig(
            model=ModelConfig(
                hidden=self.hidden,
                train=TrainConfig(
                    epochs=self.epochs, batch_size=256, lr=5e-3, patience=4,
                    seed=self.seed,
                ),
            ),
            use_ssar=use_ssar,
            max_path_length=self.max_path_length,
            seed=self.seed,
        )


def biased_value_of(db: Database, table: str, attribute: str):
    """The categorical value the removal targets (mode of the true data)."""
    values = db.table(table)[attribute]
    uniques, counts = np.unique(values, return_counts=True)
    return uniques[counts.argmax()]


@dataclass
class SetupEvaluation:
    """Target-level quality of one completion run under one sweep cell."""

    setup: str
    keep_rate: float
    removal_correlation: float
    model_kind: str
    path: str
    bias_reduction: float
    cardinality_correction: float
    true_statistic: float
    incomplete_statistic: float
    completed_statistic: float


def evaluate_candidates(
    engine: ReStore,
    dataset: IncompleteDataset,
    setup: CompletionSetup,
    keep_rate: float,
    removal_correlation: float,
) -> List[SetupEvaluation]:
    """Fig. 7-style statistics for every trained candidate of the setup.

    The biased statistic is the average of the biased attribute (continuous)
    or the fraction of the biased value (categorical), measured on the
    projection of the completed join to the incomplete table.
    """
    target = setup.incomplete_table
    attribute = setup.biased_attribute
    complete_table = dataset.complete.table(target)
    incomplete_table = dataset.incomplete.table(target)
    kind = complete_table.meta(attribute).kind

    if kind is ColumnKind.CATEGORICAL:
        value = biased_value_of(dataset.complete, target, attribute)
        true_stat = categorical_fraction(complete_table[attribute], value)
        inc_stat = categorical_fraction(incomplete_table[attribute], value)
    else:
        value = None
        true_stat = weighted_average(complete_table[attribute])
        inc_stat = weighted_average(incomplete_table[attribute])

    evaluations: List[SetupEvaluation] = []
    for candidate in engine.candidates(target):
        completed = engine.completed_join(candidate.model)
        projected = engine.project_to_tables(completed, (target,))
        values = projected.resolve(f"{target}.{attribute}")
        weights = projected.effective_weights()
        if value is not None:
            comp_stat = categorical_fraction(values, value, weights)
        else:
            comp_stat = weighted_average(values, weights)
        evaluations.append(
            SetupEvaluation(
                setup=setup.name,
                keep_rate=keep_rate,
                removal_correlation=removal_correlation,
                model_kind=candidate.model.kind,
                path=str(candidate.path),
                bias_reduction=bias_reduction(true_stat, inc_stat, comp_stat),
                cardinality_correction=cardinality_correction(
                    len(complete_table), len(incomplete_table), float(weights.sum())
                ),
                true_statistic=true_stat,
                incomplete_statistic=inc_stat,
                completed_statistic=comp_stat,
            )
        )
    return evaluations


def run_setup_cell(
    setup: CompletionSetup,
    keep_rate: float,
    removal_correlation: float,
    config: ExperimentConfig,
    db: Optional[Database] = None,
    use_ssar: bool = True,
) -> Tuple[ReStore, IncompleteDataset]:
    """Instantiate one sweep cell: removal + engine fit."""
    if db is None:
        db = base_database(setup.dataset, seed=config.seed, scale=config.scale)
    dataset = setup.make(db, keep_rate, removal_correlation, seed=config.seed)
    engine = ReStore.from_dataset(dataset, config.engine_config(use_ssar))
    engine.fit(targets=[setup.incomplete_table])
    return engine, dataset
