"""Experiment runners: one per paper table/figure (see DESIGN.md §3)."""

from .common import (
    ExperimentConfig,
    SetupEvaluation,
    biased_value_of,
    evaluate_candidates,
    full_grid,
    run_setup_cell,
)
from .exp1_synthetic import (
    SyntheticCell,
    fig5a_predictability,
    fig5a_skew,
    fig5b_training_loss,
    fig5c_fan_out,
)
from .exp2_real import Fig7Row, print_fig7, run_fig7, summarize_fig7
from .exp3_queries import Fig8Row, print_fig8, run_fig8, summarize_fig8
from .exp4_perf import (
    Fig10Row,
    InferenceComparisonRow,
    TimingRow,
    fig9_ar_vs_ssar,
    print_fig9,
    print_fig10,
    print_inference_comparison,
    print_timings,
    run_fig10,
    run_inference_comparison,
    run_timings,
)
from .confidence_figures import (
    ConfidenceCell,
    print_confidence,
    run_fig6,
    run_fig13,
    run_fig14,
)

__all__ = [
    "ExperimentConfig",
    "SetupEvaluation",
    "full_grid",
    "run_setup_cell",
    "evaluate_candidates",
    "biased_value_of",
    "SyntheticCell",
    "fig5a_predictability",
    "fig5a_skew",
    "fig5b_training_loss",
    "fig5c_fan_out",
    "Fig7Row",
    "run_fig7",
    "summarize_fig7",
    "print_fig7",
    "Fig8Row",
    "run_fig8",
    "summarize_fig8",
    "print_fig8",
    "fig9_ar_vs_ssar",
    "print_fig9",
    "Fig10Row",
    "run_fig10",
    "print_fig10",
    "TimingRow",
    "run_timings",
    "print_timings",
    "InferenceComparisonRow",
    "run_inference_comparison",
    "print_inference_comparison",
    "ConfidenceCell",
    "run_fig6",
    "run_fig13",
    "run_fig14",
    "print_confidence",
]
