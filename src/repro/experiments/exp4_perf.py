"""Exp. 4 — accuracy and performance aspects (Fig. 9, 10, 11, 12).

* **Fig. 9** — distribution of bias reductions for AR vs SSAR models across
  all setups: neither dominates, motivating model selection.
* **Fig. 10** — bias reduction of (a) every model, (b) the basic-selection
  pick, (c) the pick with the suspected-bias hint.
* **Fig. 11** — training time per model (AR vs SSAR, per dataset).
* **Fig. 12** — completion time per path, with and without nearest-
  neighbour replacement.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import (
    BiasDirection,
    IncompletenessJoin,
    SuspectedBias,
)
from ..relational import ColumnKind
from ..workloads import ALL_SETUPS, base_database
from .common import (
    ExperimentConfig,
    biased_value_of,
    evaluate_candidates,
    run_setup_cell,
)
from .exp2_real import Fig7Row


# ----------------------------------------------------------------------
# Fig. 9 — AR vs SSAR distributions
# ----------------------------------------------------------------------

def fig9_ar_vs_ssar(rows: Sequence[Fig7Row]) -> Dict[str, Dict[str, List[float]]]:
    """Bias-reduction samples per setup, split by model kind.

    Accepts the Fig. 7 rows (which retain per-candidate evaluations) so the
    sweep is not recomputed.
    """
    out: Dict[str, Dict[str, List[float]]] = {}
    for row in rows:
        per_kind = out.setdefault(row.setup, {"ar": [], "ssar": []})
        for evaluation in row.candidates:
            if not np.isnan(evaluation.bias_reduction):
                per_kind.setdefault(evaluation.model_kind, []).append(
                    evaluation.bias_reduction
                )
    return out


def print_fig9(distributions: Dict[str, Dict[str, List[float]]]) -> None:
    print(f"{'setup':6s} {'AR mean':>9s} {'SSAR mean':>10s} {'winner':>7s}")
    for setup, kinds in sorted(distributions.items()):
        ar = float(np.mean(kinds["ar"])) if kinds.get("ar") else float("nan")
        ssar = float(np.mean(kinds["ssar"])) if kinds.get("ssar") else float("nan")
        winner = "-"
        if not (np.isnan(ar) or np.isnan(ssar)):
            winner = "AR" if ar > ssar else "SSAR"
        print(f"{setup:6s} {ar:9.1%} {ssar:10.1%} {winner:>7s}")


# ----------------------------------------------------------------------
# Fig. 10 — model-selection quality
# ----------------------------------------------------------------------

@dataclass
class Fig10Row:
    setup: str
    keep_rate: float
    removal_correlation: float
    all_models: List[float]
    selected: float
    selected_with_hint: float
    best_possible: float


def run_fig10(
    setups: Optional[Sequence[str]] = None,
    experiment: Optional[ExperimentConfig] = None,
) -> List[Fig10Row]:
    """Compare all models vs basic selection vs selection with the hint."""
    experiment = experiment or ExperimentConfig.default()
    names = list(setups) if setups is not None else list(ALL_SETUPS)
    rows: List[Fig10Row] = []
    db_cache: Dict[str, object] = {}
    for name in names:
        setup = ALL_SETUPS[name]
        if setup.dataset not in db_cache:
            db_cache[setup.dataset] = base_database(
                setup.dataset, seed=experiment.seed, scale=experiment.scale
            )
        db = db_cache[setup.dataset]
        for keep in experiment.keep_rates:
            for corr in experiment.removal_correlations:
                engine, dataset = run_setup_cell(setup, keep, corr, experiment,
                                                 db=db)
                evaluations = evaluate_candidates(engine, dataset, setup, keep, corr)
                by_key = {
                    (e.model_kind, e.path): e.bias_reduction for e in evaluations
                }

                target = setup.incomplete_table
                chosen = engine.select_model(target)
                selected = by_key.get(
                    (chosen.model.kind, str(chosen.path)), float("nan")
                )

                hint = _suspected_bias_for(dataset, setup)
                chosen_hint = engine.select_model(target, suspected_bias=hint)
                selected_hint = by_key.get(
                    (chosen_hint.model.kind, str(chosen_hint.path)), float("nan")
                )

                valid = [v for v in by_key.values() if not np.isnan(v)]
                rows.append(Fig10Row(
                    setup=name, keep_rate=keep, removal_correlation=corr,
                    all_models=valid,
                    selected=selected,
                    selected_with_hint=selected_hint,
                    best_possible=max(valid) if valid else float("nan"),
                ))
    return rows


def _suspected_bias_for(dataset, setup) -> SuspectedBias:
    """The oracle-ish hint a practitioner would provide: the direction the
    incomplete aggregate deviates from the (suspected) truth."""
    target = setup.incomplete_table
    attribute = setup.biased_attribute
    complete = dataset.complete.table(target)
    incomplete = dataset.incomplete.table(target)
    if complete.meta(attribute).kind is ColumnKind.CATEGORICAL:
        value = biased_value_of(dataset.complete, target, attribute)
        true_stat = float(np.mean(complete[attribute] == value))
        inc_stat = float(np.mean(incomplete[attribute] == value))
        direction = (BiasDirection.UNDERESTIMATED if inc_stat < true_stat
                     else BiasDirection.OVERESTIMATED)
        return SuspectedBias(attribute, direction, value=value)
    true_stat = float(np.mean(complete[attribute].astype(float)))
    inc_stat = float(np.mean(incomplete[attribute].astype(float)))
    direction = (BiasDirection.UNDERESTIMATED if inc_stat < true_stat
                 else BiasDirection.OVERESTIMATED)
    return SuspectedBias(attribute, direction)


def print_fig10(rows: Sequence[Fig10Row]) -> None:
    print(f"{'setup':6s} {'mean(all)':>10s} {'selected':>9s} "
          f"{'w/ hint':>9s} {'best':>9s}")
    for setup in sorted({r.setup for r in rows}):
        mine = [r for r in rows if r.setup == setup]
        all_vals = [v for r in mine for v in r.all_models]
        sel = [r.selected for r in mine if not np.isnan(r.selected)]
        hint = [r.selected_with_hint for r in mine
                if not np.isnan(r.selected_with_hint)]
        best = [r.best_possible for r in mine if not np.isnan(r.best_possible)]
        print(f"{setup:6s} {np.mean(all_vals):10.1%} {np.mean(sel):9.1%} "
              f"{np.mean(hint):9.1%} {np.mean(best):9.1%}")


# ----------------------------------------------------------------------
# Fig. 11 / Fig. 12 — training and completion time
# ----------------------------------------------------------------------

@dataclass
class TimingRow:
    dataset: str
    setup: str
    model_kind: str
    path: str
    train_seconds: float
    completion_seconds: float
    completion_with_replacement_seconds: float


def _timed_completion(model, seed: int, repeats: int = 3,
                      replace_synthesized: bool = True,
                      n_workers: int = 1, parallel_backend: str = "serial"):
    """Best-of-``repeats`` incompleteness-join wall time (plus the join).

    Completion on the compiled runtime is milliseconds-scale, where a single
    scheduler hiccup or garbage-collection pause would dominate a one-shot
    measurement; every timing in this module goes through this helper so the
    methodology stays uniform.  Parallel runs pay their full cost inside the
    timer — pool start-up, payload shipping, merging — so speedups are
    end-to-end, not kernel-only.
    """
    best = float("inf")
    completed = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            completed = IncompletenessJoin(
                model, replace_synthesized=replace_synthesized, seed=seed,
                n_workers=n_workers, parallel_backend=parallel_backend,
            ).run()
            best = min(best, time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, completed


def run_timings(
    setups: Optional[Sequence[str]] = None,
    experiment: Optional[ExperimentConfig] = None,
) -> List[TimingRow]:
    """Fig. 11 (training time) and Fig. 12 (completion time ± replacement)."""
    experiment = experiment or ExperimentConfig.default()
    names = list(setups) if setups is not None else ["H1", "H4", "M1", "M5"]
    rows: List[TimingRow] = []
    for name in names:
        setup = ALL_SETUPS[name]
        keep = experiment.keep_rates[0]
        corr = experiment.removal_correlations[0]
        engine, dataset = run_setup_cell(setup, keep, corr, experiment)
        for candidate in engine.candidates(setup.incomplete_table):
            model = candidate.model
            train_time = (model.train_result.wall_time_s
                          if model.train_result else float("nan"))

            plain, _ = _timed_completion(
                model, experiment.seed, replace_synthesized=False
            )
            with_replacement, _ = _timed_completion(model, experiment.seed)

            rows.append(TimingRow(
                dataset=setup.dataset, setup=name, model_kind=model.kind,
                path=str(model.layout.path),
                train_seconds=train_time,
                completion_seconds=plain,
                completion_with_replacement_seconds=with_replacement,
            ))
    return rows


def print_timings(rows: Sequence[TimingRow]) -> None:
    print(f"{'setup':6s} {'kind':5s} {'train s':>8s} {'complete s':>11s} "
          f"{'(+NN repl) s':>13s}  path")
    for row in rows:
        print(f"{row.setup:6s} {row.model_kind:5s} {row.train_seconds:8.2f} "
              f"{row.completion_seconds:11.3f} "
              f"{row.completion_with_replacement_seconds:13.3f}  {row.path}")


# ----------------------------------------------------------------------
# Compiled-inference runtime comparison (completion throughput)
# ----------------------------------------------------------------------

@dataclass
class InferenceComparisonRow:
    """Completion time of one model with and without the compiled runtime.

    Both runs consume the same counter-based random draws, so the completed
    joins agree up to float32-vs-float64 rounding of the sampling CDFs —
    ``outputs_equivalent`` checks row counts and restored cardinality mass.
    """

    dataset: str
    setup: str
    model_kind: str
    path: str
    autograd_seconds: float
    compiled_seconds: float
    speedup: float
    completed_rows: int
    outputs_equivalent: bool

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "setup": self.setup,
            "model_kind": self.model_kind,
            "path": self.path,
            "autograd_seconds": self.autograd_seconds,
            "compiled_seconds": self.compiled_seconds,
            "speedup": self.speedup,
            "completed_rows": self.completed_rows,
            "outputs_equivalent": self.outputs_equivalent,
        }


def run_inference_comparison(
    setups: Optional[Sequence[str]] = None,
    experiment: Optional[ExperimentConfig] = None,
    repeats: int = 3,
    min_scale: float = 1.5,
) -> List[InferenceComparisonRow]:
    """Time the incompleteness join on both inference backends per model.

    The compiled (graph-free float32) runtime is the engine default; the
    autograd backend is the pre-runtime float64 Tensor forward.  Both are
    measured on the same fitted models and the same seed so the comparison
    isolates the execution substrate.  ``min_scale`` floors the dataset
    scale: completion throughput is a batched-sampling property and the
    smoke-sized grids underestimate it badly (fixed per-call overheads
    dominate a 50-row walk on either backend).
    """
    experiment = experiment or ExperimentConfig.default()
    if experiment.scale < min_scale:
        experiment = replace(experiment, scale=min_scale)
    names = list(setups) if setups is not None else ["H4", "M1"]
    rows: List[InferenceComparisonRow] = []
    for name in names:
        setup = ALL_SETUPS[name]
        keep = experiment.keep_rates[0]
        corr = experiment.removal_correlations[0]
        engine, dataset = run_setup_cell(setup, keep, corr, experiment)
        for candidate in engine.candidates(setup.incomplete_table):
            model = candidate.model
            backend_before = model.inference_backend
            try:
                model.inference_backend = "autograd"
                autograd_s, autograd_join = _timed_completion(
                    model, experiment.seed, repeats
                )
                model.inference_backend = "compiled"
                compiled_s, compiled_join = _timed_completion(
                    model, experiment.seed, repeats
                )
            finally:
                model.inference_backend = backend_before
            rows.append(InferenceComparisonRow(
                dataset=setup.dataset, setup=name, model_kind=model.kind,
                path=str(model.layout.path),
                autograd_seconds=autograd_s,
                compiled_seconds=compiled_s,
                speedup=autograd_s / max(compiled_s, 1e-12),
                completed_rows=compiled_join.num_rows,
                outputs_equivalent=_joins_equivalent(autograd_join, compiled_join),
            ))
    return rows


def _joins_equivalent(a, b, tolerance: float = 0.02) -> bool:
    """Same completion up to sampling-CDF rounding: row counts and restored
    weight mass within ``tolerance`` relative difference."""
    rows_a, rows_b = a.num_rows, b.num_rows
    if rows_a == 0 or rows_b == 0:
        return rows_a == rows_b
    if abs(rows_a - rows_b) > tolerance * max(rows_a, rows_b):
        return False
    mass_a = float(a.result.effective_weights().sum())
    mass_b = float(b.result.effective_weights().sum())
    return abs(mass_a - mass_b) <= tolerance * max(mass_a, mass_b, 1e-12)


def print_inference_comparison(rows: Sequence[InferenceComparisonRow]) -> None:
    print(f"{'setup':6s} {'kind':5s} {'autograd s':>11s} {'compiled s':>11s} "
          f"{'speedup':>8s} {'equiv':>6s}  path")
    for row in rows:
        print(f"{row.setup:6s} {row.model_kind:5s} {row.autograd_seconds:11.3f} "
              f"{row.compiled_seconds:11.3f} {row.speedup:7.2f}x "
              f"{str(row.outputs_equivalent):>6s}  {row.path}")


# ----------------------------------------------------------------------
# Training-runtime comparison (fused kernels vs the autograd oracle)
# ----------------------------------------------------------------------

@dataclass
class TrainingComparisonRow:
    """End-to-end ``ReStore.fit()`` wall time per training backend.

    Both engines train the same candidate set from the same seed; the row
    also records the final-epoch training losses (the fused float32 path
    must track the float64 oracle) and whether §5 model selection ranked
    the candidates identically.
    """

    dataset: str
    setup: str
    num_models: int
    autograd_seconds: float
    fused_seconds: float
    speedup: float
    autograd_final_loss: float
    fused_final_loss: float
    final_loss_gap: float
    selection_agrees: bool

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "setup": self.setup,
            "num_models": self.num_models,
            "autograd_seconds": self.autograd_seconds,
            "fused_seconds": self.fused_seconds,
            "speedup": self.speedup,
            "autograd_final_loss": self.autograd_final_loss,
            "fused_final_loss": self.fused_final_loss,
            "final_loss_gap": self.final_loss_gap,
            "selection_agrees": self.selection_agrees,
        }


def _timed_fit(dataset, engine_config, target, repeats: int):
    """Best-of-``repeats`` end-to-end ``fit`` wall time (plus the engine).

    A fresh engine per repeat — ``fit`` would otherwise reuse state — with
    GC disabled inside the timer, mirroring :func:`_timed_completion`.
    """
    from ..core.engine import ReStore

    best = float("inf")
    engine = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            candidate = ReStore.from_dataset(dataset, engine_config)
            start = time.perf_counter()
            candidate.fit(targets=[target])
            best = min(best, time.perf_counter() - start)
            engine = candidate
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, engine


def run_training_comparison(
    setups: Optional[Sequence[str]] = None,
    experiment: Optional[ExperimentConfig] = None,
    repeats: int = 2,
    min_scale: float = 6.0,
) -> List[TrainingComparisonRow]:
    """Time end-to-end ``ReStore.fit()`` on both training backends.

    The fused (float32 kernel) runtime is the engine default; the autograd
    backend is the float64 reference engine.  ``min_scale`` floors the
    dataset scale the same way :func:`run_inference_comparison` does:
    training throughput is a batched-kernel property and smoke-sized grids
    measure per-call overhead instead.
    """
    experiment = experiment or ExperimentConfig.default()
    if experiment.scale < min_scale:
        experiment = replace(experiment, scale=min_scale)
    names = list(setups) if setups is not None else ["H4"]
    rows: List[TrainingComparisonRow] = []
    for name in names:
        setup = ALL_SETUPS[name]
        keep = experiment.keep_rates[0]
        corr = experiment.removal_correlations[0]
        db = base_database(setup.dataset, seed=experiment.seed,
                          scale=experiment.scale)
        dataset = setup.make(db, keep, corr, seed=experiment.seed)
        target = setup.incomplete_table

        base_config = experiment.engine_config()
        fused_s, fused_engine = _timed_fit(
            dataset, replace(base_config, train_backend="fused"),
            target, repeats,
        )
        autograd_s, autograd_engine = _timed_fit(
            dataset, replace(base_config, train_backend="autograd"),
            target, repeats,
        )

        def ranking(engine):
            return [
                (c.model.kind, c.path.tables)
                for c in engine.candidates(target)
            ]

        def final_loss(engine):
            return float(np.mean([
                c.model.train_result.final_train_loss
                for c in engine.candidates(target)
            ]))

        fused_loss = final_loss(fused_engine)
        autograd_loss = final_loss(autograd_engine)
        rows.append(TrainingComparisonRow(
            dataset=setup.dataset, setup=name,
            num_models=len(fused_engine.candidates(target)),
            autograd_seconds=autograd_s,
            fused_seconds=fused_s,
            speedup=autograd_s / max(fused_s, 1e-12),
            autograd_final_loss=autograd_loss,
            fused_final_loss=fused_loss,
            final_loss_gap=abs(fused_loss - autograd_loss),
            selection_agrees=ranking(fused_engine) == ranking(autograd_engine),
        ))
    return rows


def print_training_comparison(rows: Sequence[TrainingComparisonRow]) -> None:
    print(f"{'setup':6s} {'models':>6s} {'autograd s':>11s} {'fused s':>8s} "
          f"{'speedup':>8s} {'loss gap':>9s} {'same pick':>9s}")
    for row in rows:
        print(f"{row.setup:6s} {row.num_models:6d} {row.autograd_seconds:11.2f} "
              f"{row.fused_seconds:8.2f} {row.speedup:7.2f}x "
              f"{row.final_loss_gap:9.4f} {str(row.selection_agrees):>9s}")


# ----------------------------------------------------------------------
# Worker-scaling curve (parallel sharded completion throughput)
# ----------------------------------------------------------------------

@dataclass
class WorkerScalingRow:
    """Completion throughput of one executor configuration.

    ``identical_rows`` certifies that this configuration produced bitwise
    the same completed rows (up to order) as the serial baseline — the
    determinism contract of the sharded incompleteness join.
    """

    dataset: str
    setup: str
    model_kind: str
    path: str
    backend: str
    n_workers: int
    seconds: float
    rows_per_second: float
    speedup: float
    completed_rows: int
    identical_rows: bool

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "setup": self.setup,
            "model_kind": self.model_kind,
            "path": self.path,
            "backend": self.backend,
            "n_workers": self.n_workers,
            "seconds": self.seconds,
            "rows_per_second": self.rows_per_second,
            "speedup": self.speedup,
            "completed_rows": self.completed_rows,
            "identical_rows": self.identical_rows,
        }


def canonical_rows(completed):
    """Columns + weights sorted into a content-defined row order."""
    columns = completed.result.columns
    names = sorted(columns)
    weights = completed.result.effective_weights()
    order = np.lexsort(
        tuple(np.asarray(columns[name]) for name in names) + (weights,)
    )
    return (
        {name: np.asarray(columns[name])[order] for name in names},
        weights[order],
    )


def joins_bitwise_identical(a, b) -> bool:
    """Same completed rows, bitwise, up to row order."""
    if a.num_rows != b.num_rows:
        return False
    cols_a, w_a = canonical_rows(a)
    cols_b, w_b = canonical_rows(b)
    if set(cols_a) != set(cols_b):
        return False
    return (
        all(np.array_equal(cols_a[k], cols_b[k]) for k in cols_a)
        and np.array_equal(w_a, w_b)
    )


def run_worker_scaling(
    setups: Optional[Sequence[str]] = None,
    experiment: Optional[ExperimentConfig] = None,
    n_workers: Sequence[int] = (1, 2, 4),
    backends: Sequence[str] = ("thread", "process"),
    repeats: int = 3,
    min_scale: float = 48.0,
    max_epochs: int = 6,
) -> List[WorkerScalingRow]:
    """Completion throughput for serial vs thread/process worker counts.

    One AR model per setup (the curve measures the executor, not the model
    zoo — and the model architecture is scale-independent, so training is
    deliberately kept short via ``max_epochs`` while ``min_scale`` floors
    the *database* size: sharding a 50-row walk would measure pool start-up,
    not completion throughput).  Every parallel configuration is also
    checked for bitwise row identity against the serial baseline, so the
    benchmark doubles as a determinism audit.
    """
    experiment = experiment or ExperimentConfig.default()
    experiment = replace(
        experiment,
        scale=max(experiment.scale, min_scale),
        epochs=min(experiment.epochs, max_epochs),
    )
    names = list(setups) if setups is not None else ["H4"]
    rows: List[WorkerScalingRow] = []
    for name in names:
        setup = ALL_SETUPS[name]
        keep = experiment.keep_rates[0]
        corr = experiment.removal_correlations[0]
        engine, dataset = run_setup_cell(setup, keep, corr, experiment,
                                         use_ssar=False)
        model = engine.candidates(setup.incomplete_table)[0].model

        serial_s, serial_join = _timed_completion(model, experiment.seed, repeats)
        num_rows = serial_join.num_rows
        rows.append(WorkerScalingRow(
            dataset=setup.dataset, setup=name, model_kind=model.kind,
            path=str(model.layout.path), backend="serial", n_workers=1,
            seconds=serial_s, rows_per_second=num_rows / max(serial_s, 1e-12),
            speedup=1.0, completed_rows=num_rows, identical_rows=True,
        ))
        for backend in backends:
            for workers in n_workers:
                seconds, join = _timed_completion(
                    model, experiment.seed, repeats,
                    n_workers=workers, parallel_backend=backend,
                )
                rows.append(WorkerScalingRow(
                    dataset=setup.dataset, setup=name, model_kind=model.kind,
                    path=str(model.layout.path), backend=backend,
                    n_workers=workers, seconds=seconds,
                    rows_per_second=join.num_rows / max(seconds, 1e-12),
                    speedup=serial_s / max(seconds, 1e-12),
                    completed_rows=join.num_rows,
                    identical_rows=joins_bitwise_identical(serial_join, join),
                ))
    return rows


def print_worker_scaling(rows: Sequence[WorkerScalingRow]) -> None:
    print(f"{'setup':6s} {'kind':5s} {'backend':8s} {'workers':>7s} "
          f"{'seconds':>9s} {'rows/s':>10s} {'speedup':>8s} {'same rows':>9s}")
    for row in rows:
        print(f"{row.setup:6s} {row.model_kind:5s} {row.backend:8s} "
              f"{row.n_workers:7d} {row.seconds:9.3f} "
              f"{row.rows_per_second:10.0f} {row.speedup:7.2f}x "
              f"{str(row.identical_rows):>9s}")
