"""Exp. 1 — data completion on synthetic data (Fig. 5a/5b/5c).

Fig. 5a sweeps predictability (top row) and Zipf skew (bottom row) against
removal correlation and keep rate, reporting the bias reduction of the
completed data.  Fig. 5b reports the training/test loss as the
model-selection signal.  Fig. 5c compares SSAR against AR as the fan-out
(sibling-coherence) predictability grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core import (
    ARCompletionModel,
    EvidenceForest,
    IncompletenessJoin,
    ModelConfig,
    PathLayout,
    SSARCompletionModel,
    build_encoders,
)
from ..datasets import SyntheticConfig, generate_synthetic
from ..incomplete import registry
from ..metrics import bias_reduction, categorical_fraction
from ..nn import TrainConfig
from ..relational import CompletionPath, fan_out_relations
from .common import ExperimentConfig, full_grid


@dataclass
class SyntheticCell:
    """One point of the Fig. 5a/5b grids."""

    predictability: float
    skew: float
    keep_rate: float
    removal_correlation: float
    bias_reduction: float
    train_loss: float
    test_loss: float


def _complete_and_measure(
    config: SyntheticConfig,
    keep_rate: float,
    removal_correlation: float,
    experiment: ExperimentConfig,
    use_ssar: bool = False,
) -> Tuple[float, float, float]:
    """(bias reduction, final train loss, target test loss) for one cell."""
    db = generate_synthetic(config)
    # The Exp. 1 removal protocol is the registry's "synthetic/biased"
    # scenario (tb biased on b, TF keep rate 50%).
    dataset = registry.build_scenario(
        "synthetic/biased", keep_rate, removal_correlation
    ).instantiate(db, seed=experiment.seed)
    encoders = build_encoders(dataset.incomplete, num_bins=16)
    path = CompletionPath(("ta", "tb"))
    layout = PathLayout(dataset.incomplete, dataset.annotation, path, encoders)
    model_config = ModelConfig(
        hidden=experiment.hidden,
        seed=experiment.seed,
        train=TrainConfig(epochs=experiment.epochs, batch_size=256, lr=5e-3,
                          patience=4, seed=experiment.seed),
    )
    if use_ssar:
        walks = fan_out_relations(
            dataset.incomplete, dataset.annotation, path,
            include_self_evidence=True,
        )
        forest = EvidenceForest(
            dataset.incomplete, "ta", walks, encoders, self_evidence_table="tb"
        )
        model: ARCompletionModel = SSARCompletionModel(layout, forest, model_config)
    else:
        model = ARCompletionModel(layout, model_config)
    result = model.fit()

    completed = IncompletenessJoin(model, seed=experiment.seed).run()
    weights = completed.result.effective_weights()
    values = completed.result.resolve("tb.b")

    # The removal targets the most frequent value of b (the RemovalSpec
    # default), so measure the fraction of that value (Eq. 2, categorical).
    uniques, counts = np.unique(db.table("tb")["b"], return_counts=True)
    biased_value = uniques[counts.argmax()]
    true_stat = categorical_fraction(db.table("tb")["b"], biased_value)
    inc_stat = categorical_fraction(dataset.incomplete.table("tb")["b"], biased_value)
    comp_stat = categorical_fraction(values, biased_value, weights)
    reduction = bias_reduction(true_stat, inc_stat, comp_stat)
    return reduction, result.final_train_loss, model.target_test_loss()


def fig5a_predictability(
    experiment: Optional[ExperimentConfig] = None,
) -> List[SyntheticCell]:
    """Top row of Fig. 5a: bias reduction vs removal correlation, one panel
    per predictability level, lines per keep rate."""
    experiment = experiment or ExperimentConfig.default()
    predictabilities = (
        (0.2, 0.4, 0.6, 0.8, 1.0) if full_grid() else (0.2, 0.6, 1.0)
    )
    cells: List[SyntheticCell] = []
    for predictability in predictabilities:
        cfg = SyntheticConfig(
            num_parents=1000, predictability=predictability,
            seed=experiment.seed,
        )
        for corr in experiment.removal_correlations:
            for keep in experiment.keep_rates:
                reduction, train_loss, test_loss = _complete_and_measure(
                    cfg, keep, corr, experiment
                )
                cells.append(SyntheticCell(
                    predictability=predictability, skew=0.0, keep_rate=keep,
                    removal_correlation=corr, bias_reduction=reduction,
                    train_loss=train_loss, test_loss=test_loss,
                ))
    return cells


def fig5a_skew(experiment: Optional[ExperimentConfig] = None) -> List[SyntheticCell]:
    """Bottom row of Fig. 5a: Zipf skew panels at fixed 80% predictability."""
    experiment = experiment or ExperimentConfig.default()
    skews = (1.0, 1.5, 2.0, 2.5, 3.0) if full_grid() else (1.0, 2.0, 3.0)
    cells: List[SyntheticCell] = []
    for skew in skews:
        cfg = SyntheticConfig(
            num_parents=1000, predictability=0.8, skew=skew, seed=experiment.seed,
        )
        for corr in experiment.removal_correlations:
            for keep in experiment.keep_rates:
                reduction, train_loss, test_loss = _complete_and_measure(
                    cfg, keep, corr, experiment
                )
                cells.append(SyntheticCell(
                    predictability=0.8, skew=skew, keep_rate=keep,
                    removal_correlation=corr, bias_reduction=reduction,
                    train_loss=train_loss, test_loss=test_loss,
                ))
    return cells


def fig5b_training_loss(
    experiment: Optional[ExperimentConfig] = None,
) -> List[Tuple[float, float]]:
    """Fig. 5b: (predictability, held-out target loss) — the selection signal."""
    experiment = experiment or ExperimentConfig.default()
    predictabilities = (
        (0.2, 0.4, 0.6, 0.8, 1.0) if full_grid() else (0.2, 0.6, 1.0)
    )
    points = []
    for predictability in predictabilities:
        cfg = SyntheticConfig(num_parents=1000, predictability=predictability,
                              seed=experiment.seed)
        _, __, test_loss = _complete_and_measure(cfg, 0.6, 0.4, experiment)
        points.append((predictability, test_loss))
    return points


def fig5c_fan_out(
    experiment: Optional[ExperimentConfig] = None,
) -> List[Tuple[float, float, float]]:
    """Fig. 5c: (fan-out predictability, AR reduction, SSAR reduction).

    The group base value is independent of the evidence attribute, so AR
    models cannot see it; SSAR models read it off the surviving siblings
    (self-evidence).
    """
    experiment = experiment or ExperimentConfig.default()
    levels = (0.0, 0.25, 0.5, 0.75, 1.0) if full_grid() else (0.0, 0.5, 1.0)
    rows = []
    for level in levels:
        cfg = SyntheticConfig(
            num_parents=1000, predictability=0.2,
            fan_out_predictability=level, fan_out_mean=4.0,
            seed=experiment.seed,
        )
        ar_red, _, __ = _complete_and_measure(cfg, 0.6, 0.4, experiment,
                                              use_ssar=False)
        ssar_red, _, __ = _complete_and_measure(cfg, 0.6, 0.4, experiment,
                                                use_ssar=True)
        rows.append((level, ar_red, ssar_red))
    return rows
