"""Exp. 3 — end-to-end query processing (Table 1 + Fig. 8).

For every Table 1 query, build the incomplete dataset of its setup, answer
the query on (a) the incomplete data directly and (b) the ReStore-completed
data, and report the improvement of the average relative error (Eq. 1)
against the ground truth — the y-axis of Fig. 8.

Engines are shared across the queries of one (setup, cell): completed joins
are cached (§4.5), so e.g. housing Q1 and Q6 under H1 reuse one completion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics import relative_error
from ..query import Query, execute
from ..workloads import ALL_SETUPS, base_database, queries_for
from .common import ExperimentConfig, run_setup_cell


@dataclass
class Fig8Row:
    """Relative-error improvement of one query under one sweep cell."""

    dataset: str
    query: str
    setup: str
    keep_rate: float
    removal_correlation: float
    error_incomplete: float
    error_completed: float
    #: Wall time of the ``engine.answer`` call (join may come from cache).
    wall_ms: float = 0.0
    #: Root evidence rows a full materialization walks / a pushed run would
    #: walk (``None`` when the query needs no completion).
    roots_total: Optional[int] = None
    roots_qualifying: Optional[int] = None

    @property
    def improvement(self) -> float:
        return self.error_incomplete - self.error_completed


def run_fig8(
    dataset: str,
    queries: Optional[Sequence[str]] = None,
    experiment: Optional[ExperimentConfig] = None,
) -> List[Fig8Row]:
    """Fig. 8 rows for one dataset ("housing" or "movies")."""
    experiment = experiment or ExperimentConfig.default()
    workload = queries_for(dataset)
    names = list(queries) if queries is not None else list(workload)

    # Group queries by their setup so each (setup, cell) trains one engine.
    by_setup: Dict[str, List[Tuple[str, Query]]] = {}
    for name in names:
        setup_name, query = workload[name]
        by_setup.setdefault(setup_name, []).append((name, query))

    db = base_database(dataset, seed=experiment.seed, scale=experiment.scale)
    rows: List[Fig8Row] = []
    for setup_name, members in by_setup.items():
        setup = ALL_SETUPS[setup_name]
        for keep in experiment.keep_rates:
            for corr in experiment.removal_correlations:
                engine, incomplete = run_setup_cell(
                    setup, keep, corr, experiment, db=db
                )
                for query_name, query in members:
                    truth = execute(db, query)
                    on_incomplete = execute(incomplete.incomplete, query)
                    started = time.perf_counter()
                    answer = engine.answer(query)
                    wall_ms = (time.perf_counter() - started) * 1000.0
                    profile = engine.pushdown_profile(query) or {}
                    rows.append(Fig8Row(
                        dataset=dataset,
                        query=query_name,
                        setup=setup_name,
                        keep_rate=keep,
                        removal_correlation=corr,
                        error_incomplete=relative_error(on_incomplete, truth),
                        error_completed=relative_error(answer.result, truth),
                        wall_ms=wall_ms,
                        roots_total=profile.get("roots_total"),
                        roots_qualifying=profile.get("roots_qualifying"),
                    ))
    return rows


def summarize_fig8(rows: Sequence[Fig8Row]) -> Dict[str, float]:
    """Mean relative-error improvement per query."""
    out: Dict[str, float] = {}
    for query in sorted({r.query for r in rows}, key=lambda q: int(q[1:])):
        mine = [r.improvement for r in rows if r.query == query]
        out[query] = float(np.mean(mine))
    return out


def print_fig8(rows: Sequence[Fig8Row]) -> None:
    """Paper-style per-query summary."""
    if not rows:
        return
    dataset = rows[0].dataset
    print(f"{dataset}: relative error improvement (Eq. 1, higher is better)")
    print(f"{'query':6s} {'setup':6s} {'err(incomplete)':>16s} "
          f"{'err(completed)':>15s} {'improvement':>12s} {'wall_ms':>9s} "
          f"{'scan':>12s}")
    for query in sorted({r.query for r in rows}, key=lambda q: int(q[1:])):
        mine = [r for r in rows if r.query == query]
        inc = float(np.mean([r.error_incomplete for r in mine]))
        comp = float(np.mean([r.error_completed for r in mine]))
        wall = float(np.mean([r.wall_ms for r in mine]))
        scanned = [r for r in mine if r.roots_total is not None]
        if scanned:
            scan = (f"{sum(r.roots_qualifying for r in scanned)}"
                    f"/{sum(r.roots_total for r in scanned)}")
        else:
            scan = "-"
        print(f"{query:6s} {mine[0].setup:6s} {inc:16.3f} {comp:15.3f} "
              f"{inc - comp:12.3f} {wall:9.1f} {scan:>12s}")
