"""The query workload of Table 1 (Q1–Q10 per dataset), adapted verbatim to
the synthetic stand-in schemas.

Two small adaptations versus the paper's SQL text:

* movie queries spell ``movie_company`` consistently (the paper mixes
  ``movie_companies``),
* Q1/Q7 of the movies set, printed without a FROM clause in the paper,
  target the obvious tables (``movie`` and ``movie_company ⋈ company``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..query import Query, parse_query

# Query text per Table 1; each entry pairs the setup it is evaluated under
# with the SQL string.
HOUSING_QUERIES: Dict[str, Tuple[str, str]] = {
    "Q1": ("H1", "SELECT SUM(price) FROM apartment WHERE room_type = 'Entire home/apt';"),
    "Q2": ("H2", "SELECT COUNT(*) FROM apartment WHERE room_type = 'Entire home/apt' "
                 "AND property_type = 'House' GROUP BY property_type;"),
    "Q3": ("H3", "SELECT COUNT(*) FROM apartment WHERE property_type = 'House';"),
    "Q4": ("H4", "SELECT COUNT(*) FROM landlord WHERE landlord_since >= 2011;"),
    "Q5": ("H5", "SELECT AVG(landlord_response_rate) FROM landlord "
                 "WHERE landlord_response_time >= 2;"),
    "Q6": ("H1", "SELECT AVG(price) FROM landlord NATURAL JOIN apartment "
                 "WHERE room_type = 'Entire home/apt' GROUP BY landlord_since;"),
    "Q7": ("H2", "SELECT COUNT(*) FROM landlord NATURAL JOIN apartment "
                 "WHERE accommodates >= 3 GROUP BY landlord_since;"),
    "Q8": ("H3", "SELECT COUNT(*) FROM landlord NATURAL JOIN apartment "
                 "WHERE landlord_since >= 2013 GROUP BY landlord_since;"),
    "Q9": ("H4", "SELECT SUM(landlord_since) FROM landlord NATURAL JOIN apartment "
                 "WHERE room_type = 'Entire home/apt' AND landlord_response_time >= 2;"),
    "Q10": ("H5", "SELECT AVG(landlord_response_rate) FROM landlord NATURAL JOIN "
                  "apartment WHERE room_type = 'Entire home/apt' "
                  "AND landlord_response_time >= 2;"),
}

MOVIES_QUERIES: Dict[str, Tuple[str, str]] = {
    "Q1": ("M1", "SELECT COUNT(*) FROM movie GROUP BY production_year;"),
    "Q2": ("M2", "SELECT COUNT(*) FROM movie WHERE genre = 'Drama' "
                 "GROUP BY production_year;"),
    "Q3": ("M3", "SELECT COUNT(*) FROM movie WHERE genre = 'Drama' GROUP BY country;"),
    "Q4": ("M4", "SELECT AVG(birth_year) FROM director WHERE gender = 'm';"),
    "Q5": ("M5", "SELECT COUNT(*) FROM company WHERE country_code = '[us]';"),
    "Q6": ("M1", "SELECT SUM(production_year) FROM movie NATURAL JOIN movie_director "
                 "NATURAL JOIN director WHERE birth_country = 'USA' "
                 "GROUP BY production_year;"),
    "Q7": ("M2", "SELECT COUNT(*) FROM movie_company NATURAL JOIN company "
                 "GROUP BY country_code;"),
    "Q8": ("M3", "SELECT COUNT(*) FROM movie NATURAL JOIN movie_company "
                 "NATURAL JOIN company WHERE country_code = '[us]' "
                 "GROUP BY production_year;"),
    "Q9": ("M4", "SELECT COUNT(*) FROM movie NATURAL JOIN movie_director "
                 "NATURAL JOIN director WHERE gender = 'm';"),
    "Q10": ("M5", "SELECT COUNT(*) FROM movie NATURAL JOIN movie_company "
                  "NATURAL JOIN company WHERE country_code = '[us]' GROUP BY country;"),
}


def queries_for(dataset: str) -> Dict[str, Tuple[str, Query]]:
    """Parsed Table 1 queries: name -> (setup name, Query)."""
    raw = HOUSING_QUERIES if dataset == "housing" else MOVIES_QUERIES
    return {name: (setup, parse_query(sql)) for name, (setup, sql) in raw.items()}
