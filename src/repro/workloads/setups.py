"""The completion setups of Fig. 4c: H1–H5 (housing) and M1–M5 (movies).

The removal protocols themselves live in
:mod:`repro.incomplete.registry` (scenario names ``"housing/H1"`` …
``"movies/M5"``) — this module derives the experiment-facing
:class:`CompletionSetup` metadata *from* those registry entries, so there
is exactly one definition of each protocol.  Keep rate and removal
correlation are swept by the experiments; the tuple-factor keep rates
follow the paper (30% housing, 20% movies), and the movie setups apply the
hardened protocol (dangling m:n link rows removed; M4/M5 additionally
remove 20% of the movies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..datasets import (
    HousingConfig,
    MoviesConfig,
    ScaleConfig,
    SyntheticConfig,
    generate_housing,
    generate_movies,
    generate_scale,
    generate_synthetic,
)
from ..incomplete import IncompleteDataset, RemovalSpec, ScenarioSpec, registry
from ..relational import Database


@dataclass(frozen=True)
class CompletionSetup:
    """One row of Fig. 4c, backed by a registry scenario.

    The setup's removal protocol lives in
    :mod:`repro.incomplete.registry` under ``"<dataset>/<name>"`` — this
    class keeps the experiment-facing metadata (which table, which biased
    attribute) and delegates instantiation to the registry so every sweep
    cell the experiments run is a scenario the invariant harness covers.
    All fields are *derived* from the registry entry (see
    :func:`_setup_from_registry`); a custom setup must register its
    scenario first.
    """

    name: str
    dataset: str                    # "housing" | "movies"
    incomplete_table: str
    biased_attribute: str
    tf_keep_rate: float
    extra_removals: Tuple[RemovalSpec, ...] = ()

    @property
    def scenario_name(self) -> str:
        return f"{self.dataset}/{self.name}"

    def scenario(
        self, keep_rate: float, removal_correlation: float
    ) -> ScenarioSpec:
        """The registry scenario of one sweep cell."""
        return registry.build_scenario(
            self.scenario_name, keep_rate, removal_correlation
        )

    def make(
        self,
        db: Database,
        keep_rate: float,
        removal_correlation: float,
        seed: int = 0,
    ) -> IncompleteDataset:
        """Instantiate the incomplete dataset for one sweep cell."""
        return self.scenario(keep_rate, removal_correlation).instantiate(
            db, seed=seed
        )


def _setup_from_registry(name: str, dataset: str) -> CompletionSetup:
    """Derive one Fig. 4c setup's metadata from its registry scenario."""
    scenario = registry.build_scenario(f"{dataset}/{name}")
    primary = scenario.removals[0]
    return CompletionSetup(
        name=name,
        dataset=dataset,
        incomplete_table=primary.table,
        biased_attribute=primary.biased_attribute,
        tf_keep_rate=scenario.tf_keep_rate,
        extra_removals=scenario.removals[1:],
    )


# Fig. 4c rows, derived from the registry (housing TF keep rate 30%; movies
# 20%, hardened link protocol, M4/M5 with the extra 20% movie removal).
HOUSING_SETUPS: Dict[str, CompletionSetup] = {
    name: _setup_from_registry(name, "housing")
    for name in ("H1", "H2", "H3", "H4", "H5")
}

MOVIES_SETUPS: Dict[str, CompletionSetup] = {
    name: _setup_from_registry(name, "movies")
    for name in ("M1", "M2", "M3", "M4", "M5")
}

ALL_SETUPS: Dict[str, CompletionSetup] = {**HOUSING_SETUPS, **MOVIES_SETUPS}

KEEP_RATES = (0.2, 0.4, 0.6, 0.8)
REMOVAL_CORRELATIONS = (0.2, 0.4, 0.6, 0.8)


def base_database(dataset: str, seed: int = 0, scale: float = 1.0) -> Database:
    """The complete ground-truth database for a setup or scenario family."""
    if dataset == "synthetic":
        cfg = SyntheticConfig(
            num_parents=max(200, int(1000 * scale)),
            predictability=0.8,
            seed=seed,
        )
        return generate_synthetic(cfg)
    if dataset == "housing":
        cfg = HousingConfig(
            num_neighborhoods=max(20, int(120 * scale)),
            num_landlords=max(60, int(700 * scale)),
            apartments_per_neighborhood=25.0,
            seed=seed,
        )
        return generate_housing(cfg)
    if dataset == "movies":
        cfg = MoviesConfig(
            num_movies=max(200, int(1500 * scale)),
            num_directors=max(60, int(400 * scale)),
            num_actors=max(100, int(900 * scale)),
            num_companies=max(40, int(200 * scale)),
            seed=seed,
        )
        return generate_movies(cfg)
    if dataset == "scale":
        # The counter-based tier: ``scale`` is the SF itself (1.0 ≈ 100k
        # roots).  Harness/test callers pass tiny fractions; the SF 1/10/100
        # benchmark path generates straight into the mapped store instead.
        cfg = ScaleConfig(scale_factor=scale, seed=seed)
        return generate_scale(cfg)
    raise ValueError(f"unknown dataset {dataset!r}")
