"""The completion setups of Fig. 4c: H1–H5 (housing) and M1–M5 (movies).

Each setup names the biased attribute, the table made incomplete, and the
per-table keep rates.  Keep rate and removal correlation are swept by the
experiments; the tuple-factor keep rates follow the paper (30% housing,
20% movies), and the movie setups apply the hardened protocol (dangling
m:n link rows removed; M4/M5 additionally remove 20% of the movies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..datasets import (
    HousingConfig,
    MoviesConfig,
    generate_housing,
    generate_movies,
)
from ..incomplete import IncompleteDataset, RemovalSpec, make_incomplete
from ..relational import Database


@dataclass(frozen=True)
class CompletionSetup:
    """One row of Fig. 4c."""

    name: str
    dataset: str                    # "housing" | "movies"
    incomplete_table: str
    biased_attribute: str
    tf_keep_rate: float
    extra_removals: Tuple[RemovalSpec, ...] = ()

    def make(
        self,
        db: Database,
        keep_rate: float,
        removal_correlation: float,
        seed: int = 0,
    ) -> IncompleteDataset:
        """Instantiate the incomplete dataset for one sweep cell."""
        specs = [
            RemovalSpec(
                table=self.incomplete_table,
                biased_attribute=self.biased_attribute,
                keep_rate=keep_rate,
                removal_correlation=removal_correlation,
            ),
            *self.extra_removals,
        ]
        # Paper §7.3: only link rows whose *movie* was removed are dropped;
        # links dangling against removed directors/companies survive (their
        # foreign keys are the evidence that a tuple is missing).
        dangling_parents = ("movie",) if self.dataset == "movies" else None
        return make_incomplete(
            db, specs, tf_keep_rate=self.tf_keep_rate,
            drop_dangling_links=True, dangling_parents=dangling_parents,
            seed=seed,
        )


# Fig. 4c, housing rows.  TF keep rate 30%.
HOUSING_SETUPS: Dict[str, CompletionSetup] = {
    "H1": CompletionSetup("H1", "housing", "apartment", "price", 0.3),
    "H2": CompletionSetup("H2", "housing", "apartment", "room_type", 0.3),
    "H3": CompletionSetup("H3", "housing", "apartment", "property_type", 0.3),
    "H4": CompletionSetup("H4", "housing", "landlord", "landlord_since", 0.3),
    "H5": CompletionSetup("H5", "housing", "landlord", "landlord_response_rate", 0.3),
}

# Fig. 4c, movies rows.  TF keep rate 20%; M4/M5 additionally remove 20% of
# the movies (keep 80%) with a mild year bias, per §7.3.
_M45_EXTRA = (RemovalSpec("movie", "production_year", 0.8, 0.2),)

MOVIES_SETUPS: Dict[str, CompletionSetup] = {
    "M1": CompletionSetup("M1", "movies", "movie", "production_year", 0.2),
    "M2": CompletionSetup("M2", "movies", "movie", "genre", 0.2),
    "M3": CompletionSetup("M3", "movies", "movie", "country", 0.2),
    "M4": CompletionSetup("M4", "movies", "director", "birth_year", 0.2,
                          extra_removals=_M45_EXTRA),
    "M5": CompletionSetup("M5", "movies", "company", "country_code", 0.2,
                          extra_removals=_M45_EXTRA),
}

ALL_SETUPS: Dict[str, CompletionSetup] = {**HOUSING_SETUPS, **MOVIES_SETUPS}

KEEP_RATES = (0.2, 0.4, 0.6, 0.8)
REMOVAL_CORRELATIONS = (0.2, 0.4, 0.6, 0.8)


def base_database(dataset: str, seed: int = 0, scale: float = 1.0) -> Database:
    """The complete ground-truth database for a setup family."""
    if dataset == "housing":
        cfg = HousingConfig(
            num_neighborhoods=max(20, int(120 * scale)),
            num_landlords=max(60, int(700 * scale)),
            apartments_per_neighborhood=25.0,
            seed=seed,
        )
        return generate_housing(cfg)
    if dataset == "movies":
        cfg = MoviesConfig(
            num_movies=max(200, int(1500 * scale)),
            num_directors=max(60, int(400 * scale)),
            num_actors=max(100, int(900 * scale)),
            num_companies=max(40, int(200 * scale)),
            seed=seed,
        )
        return generate_movies(cfg)
    raise ValueError(f"unknown dataset {dataset!r}")
