"""Paper workloads: Fig. 4c completion setups and Table 1 queries."""

from .setups import (
    ALL_SETUPS,
    HOUSING_SETUPS,
    KEEP_RATES,
    MOVIES_SETUPS,
    REMOVAL_CORRELATIONS,
    CompletionSetup,
    base_database,
)
from .queries import HOUSING_QUERIES, MOVIES_QUERIES, queries_for

__all__ = [
    "CompletionSetup",
    "HOUSING_SETUPS",
    "MOVIES_SETUPS",
    "ALL_SETUPS",
    "KEEP_RATES",
    "REMOVAL_CORRELATIONS",
    "base_database",
    "HOUSING_QUERIES",
    "MOVIES_QUERIES",
    "queries_for",
]
