"""A small SQL front-end for the restricted SPJA grammar of the paper.

Supports exactly the query shape used throughout ReStore's evaluation
(Table 1):

.. code-block:: sql

    SELECT AVG(price) FROM neighborhood NATURAL JOIN apartment
    WHERE room_type = 'Entire home/apt' AND landlord_since >= 2011
    GROUP BY state;

Joins are NATURAL JOINs along declared foreign keys (the executor resolves
the join order), predicates are conjunctive comparisons or IN-lists, and the
single select item is COUNT(*)/COUNT(col)/SUM(col)/AVG(col).
"""

from __future__ import annotations

import re
from typing import List, Union

from .ast import Aggregate, AggregateKind, Filter, FilterOp, Query

_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^']*)'            # single-quoted string
      | >=|<=|!=|=|>|<|\(|\)|,|;|\*
      | [A-Za-z_][A-Za-z0-9_.]*
      | -?\d+\.\d+|-?\d+
    )
    """,
    re.VERBOSE,
)


class SQLSyntaxError(ValueError):
    """Raised when a query string does not match the supported grammar."""


def _tokenize(sql: str) -> List[str]:
    tokens = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            if sql[pos:].strip() == "":
                break
            raise SQLSyntaxError(f"cannot tokenize at: {sql[pos:pos + 20]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else ""

    def next(self) -> str:
        token = self.peek()
        if not token:
            raise SQLSyntaxError("unexpected end of query")
        self.pos += 1
        return token

    def expect_keyword(self, keyword: str) -> None:
        token = self.next()
        if token.upper() != keyword.upper():
            raise SQLSyntaxError(f"expected {keyword!r}, got {token!r}")

    def at_keyword(self, keyword: str) -> bool:
        return self.peek().upper() == keyword.upper()


def _parse_value(token: str) -> Union[str, int, float]:
    if token.startswith("'"):
        return token[1:-1]
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    if re.fullmatch(r"-?\d+\.\d+", token):
        return float(token)
    raise SQLSyntaxError(f"expected a literal, got {token!r}")


_OPS = {
    "=": FilterOp.EQ,
    "!=": FilterOp.NE,
    "<": FilterOp.LT,
    "<=": FilterOp.LE,
    ">": FilterOp.GT,
    ">=": FilterOp.GE,
}


def parse_query(sql: str) -> Query:
    """Parse one SPJA statement into a :class:`~repro.query.ast.Query`."""
    parser = _Parser(_tokenize(sql))
    parser.expect_keyword("SELECT")

    agg_name = parser.next().upper()
    try:
        kind = AggregateKind[agg_name]
    except KeyError as exc:
        raise SQLSyntaxError(f"unsupported aggregate {agg_name!r}") from exc
    parser.expect_keyword("(")
    target = parser.next()
    column = None if target == "*" else target
    parser.expect_keyword(")")
    aggregate = Aggregate(kind, column)

    parser.expect_keyword("FROM")
    tables = [parser.next()]
    while parser.at_keyword("NATURAL"):
        parser.expect_keyword("NATURAL")
        parser.expect_keyword("JOIN")
        tables.append(parser.next())

    filters: List[Filter] = []
    if parser.at_keyword("WHERE"):
        parser.expect_keyword("WHERE")
        while True:
            filters.append(_parse_predicate(parser))
            if parser.at_keyword("AND"):
                parser.expect_keyword("AND")
                continue
            break

    group_by: List[str] = []
    if parser.at_keyword("GROUP"):
        parser.expect_keyword("GROUP")
        parser.expect_keyword("BY")
        group_by.append(parser.next())
        while parser.peek() == ",":
            parser.next()
            group_by.append(parser.next())

    if parser.peek() == ";":
        parser.next()
    if parser.peek():
        raise SQLSyntaxError(f"trailing tokens: {parser.tokens[parser.pos:]}")

    return Query(
        tables=tuple(tables),
        aggregate=aggregate,
        filters=tuple(filters),
        group_by=tuple(group_by),
    )


def _parse_predicate(parser: _Parser) -> Filter:
    column = parser.next()
    op_token = parser.next()
    if op_token.upper() == "IN":
        parser.expect_keyword("(")
        values: List[Union[str, int, float]] = [_parse_value(parser.next())]
        while parser.peek() == ",":
            parser.next()
            values.append(_parse_value(parser.next()))
        parser.expect_keyword(")")
        return Filter(column, FilterOp.IN, tuple(values))
    if op_token not in _OPS:
        raise SQLSyntaxError(f"unsupported operator {op_token!r}")
    return Filter(column, _OPS[op_token], _parse_value(parser.next()))
