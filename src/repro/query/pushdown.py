"""Predicate pushdown planning for query-driven partial completion.

The incompleteness join materializes one row per evidence combination along
a completion path; an AQP query then filters most of them away.  This
module classifies each conjunctive :class:`~repro.query.ast.Filter` of a
query against the path the selected model completes:

* **pre-walk** (``prune_slot == 0``) — decidable on observed base-table
  columns of the *root* evidence table.  Qualifying root rows are known
  before any model sampling, so non-qualifying rows (and whole chunks) are
  never walked at all.
* **mid-walk** (``0 < prune_slot < last``) — decidable once the hop that
  materializes the filter's table completes.  Non-qualifying walk rows are
  dropped there, skipping all downstream hops' sampling.
* **post-hoc** (``prune_slot == last``) — decidable only on the final
  table; rows are still dropped before concatenation/projection, but no
  sampling is saved.

Pruning is exact, not approximate: every walk row's sampled values are a
pure function of the seed and its lineage stream (:mod:`repro.runtime.rng`),
so removing a row never changes any other row.  Rows that survive pruning
are therefore bitwise identical to the corresponding rows of a full run at
the same seed, and the filtered aggregate equals post-hoc filtering of the
fully materialized join.

The one structural exception is the *dangling foreign key* machinery: rows
whose real FK references a removed parent are parked mid-walk and resolved
globally, conditioning the shared parent on a canonical representative
child.  Pruning rows *before* such a hop could remove the representative
and change the shared parent's tuple for rows that survive.  The planner
therefore bumps every filter's prune point past the last dangling-capable
hop on the path (:func:`dangling_hop_slots`), trading speedup for exactness
on those paths — parked sets become plan-independent, which is also what
lets the partial-completion cache reuse chunk outputs across plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..relational import Database
from .ast import Filter, Query
from .executor import predicate_mask

#: Classification labels (reported in answer provenance and benchmarks).
KIND_PRE = "pre"
KIND_MID = "mid"
KIND_POST = "post"


@dataclass(frozen=True)
class PushedFilter:
    """One pushable predicate bound to its position on a completion path."""

    filter: Filter
    column: str        #: fully qualified ``table.col``
    table: str
    slot: int          #: path slot whose hop materializes the column
    prune_slot: int    #: slot after which rows may actually be dropped
    kind: str          #: ``pre`` / ``mid`` / ``post``

    def fingerprint(self) -> Tuple:
        return self.filter.fingerprint(self.column)


@dataclass(frozen=True)
class PushdownPlan:
    """A query's predicates classified against one completion path.

    ``pushed`` predicates are applied *during* the incompleteness join (at
    their ``prune_slot``); ``residual`` predicates could not be resolved to
    a unique path column and are left to post-hoc filtering.  The plan's
    :meth:`fingerprint` identifies exactly the row subset a chunk walked
    with this plan contains — the partial-completion cache keys on it.
    """

    path_tables: Tuple[str, ...]
    pushed: Tuple[PushedFilter, ...]
    residual: Tuple[Filter, ...]
    dangling_slots: Tuple[int, ...]

    @property
    def has_pushdown(self) -> bool:
        return bool(self.pushed)

    @property
    def has_root_filters(self) -> bool:
        return any(p.prune_slot == 0 for p in self.pushed)

    def fingerprint(self) -> Tuple:
        """Canonical, order-independent identity of the pushed predicates."""
        return tuple(sorted(p.fingerprint() for p in self.pushed))

    def fingerprint_set(self) -> FrozenSet[Tuple]:
        return frozenset(p.fingerprint() for p in self.pushed)

    def filters_at(self, slot: int) -> List[PushedFilter]:
        return [p for p in self.pushed if p.prune_slot == slot]

    def filters_not_in(self, fingerprints: FrozenSet[Tuple]) -> List[PushedFilter]:
        """Pushed filters a cached chunk (walked under ``fingerprints``) has
        not applied yet — the residual a subset-reuse must still enforce."""
        return [p for p in self.pushed if p.fingerprint() not in fingerprints]

    def mask_at(
        self, slot: int, columns: Dict[str, np.ndarray], num_rows: int
    ) -> Optional[np.ndarray]:
        """Conjunction of the slot's filters over a walk state's columns.

        ``None`` when no filter prunes at this slot (the caller skips the
        row copy entirely).
        """
        filters = self.filters_at(slot)
        if not filters:
            return None
        return conjunction_mask(columns, filters, num_rows)

    def counts_by_kind(self) -> Dict[str, int]:
        counts = {KIND_PRE: 0, KIND_MID: 0, KIND_POST: 0}
        for p in self.pushed:
            counts[p.kind] += 1
        return counts

    def describe(self) -> str:
        parts = [f"{p.filter} @slot{p.prune_slot}[{p.kind}]" for p in self.pushed]
        parts.extend(f"{f} [residual]" for f in self.residual)
        return "; ".join(parts) if parts else "(no predicates)"


def conjunction_mask(
    columns: Dict[str, np.ndarray],
    filters: Sequence[PushedFilter],
    num_rows: int,
) -> np.ndarray:
    """AND of pushed predicates over qualified column arrays."""
    mask = np.ones(num_rows, dtype=bool)
    for pushed in filters:
        mask &= predicate_mask(np.asarray(columns[pushed.column]), pushed.filter)
    return mask


def dangling_hop_slots(db: Database, path_tables: Sequence[str]) -> Tuple[int, ...]:
    """Slots of n:1 hops whose child table carries dangling real FKs.

    A real FK value with no matching parent row makes the hop park rows for
    globally resolved shared parents; pruning upstream of such a hop would
    perturb the canonical-representative choice (see module docstring).
    """
    slots: List[int] = []
    for slot in range(1, len(path_tables)):
        prev, new = path_tables[slot - 1], path_tables[slot]
        if db.is_fan_out_step(prev, new):
            continue
        fk = db.fk_between(prev, new)
        refs = np.asarray(db.table(fk.child_table)[fk.child_column], dtype=np.int64)
        valid = refs[refs >= 0]
        if len(valid) == 0:
            continue
        parents = np.asarray(
            db.table(fk.parent_table)[fk.parent_column], dtype=np.int64
        )
        if not np.isin(valid, parents).all():
            slots.append(slot)
    return tuple(slots)


def _resolve_filter_column(
    db: Database, query: Query, column: str
) -> Optional[Tuple[str, str]]:
    """``(table, qualified)`` for a filter column, mirroring
    :meth:`JoinResult.resolve` over the query's tables; ``None`` when the
    name is unknown or ambiguous (left residual — post-hoc filtering will
    raise the executor's own error)."""
    if "." in column:
        table, _col = column.split(".", 1)
        if table in query.tables and _col in db.table(table).column_names:
            return table, column
        return None
    matches = [
        table for table in query.tables
        if column in db.table(table).column_names
    ]
    if len(matches) != 1:
        return None
    return matches[0], f"{matches[0]}.{column}"


def plan_pushdown(
    db: Database, path_tables: Sequence[str], query: Query
) -> PushdownPlan:
    """Classify the query's predicates against a completion path.

    Every query table must lie on the path (the engine enforces coverage
    before planning).  Filters that do not resolve to a unique query-table
    column stay residual; everything else is pushed at
    ``max(its slot, last dangling-capable slot)``.
    """
    path = tuple(path_tables)
    missing = set(query.tables) - set(path)
    if missing:
        raise ValueError(
            f"completion path {path} does not cover query tables "
            f"{sorted(missing)}"
        )
    dangling = dangling_hop_slots(db, path)
    prune_floor = max(dangling) if dangling else 0
    last_slot = len(path) - 1

    pushed: List[PushedFilter] = []
    residual: List[Filter] = []
    for predicate in query.filters:
        resolved = _resolve_filter_column(db, query, predicate.column)
        if resolved is None:
            residual.append(predicate)
            continue
        table, qualified = resolved
        slot = path.index(table)
        prune_slot = max(slot, prune_floor)
        if prune_slot == 0:
            kind = KIND_PRE
        elif prune_slot == last_slot:
            kind = KIND_POST
        else:
            kind = KIND_MID
        pushed.append(
            PushedFilter(
                filter=predicate,
                column=qualified,
                table=table,
                slot=slot,
                prune_slot=prune_slot,
                kind=kind,
            )
        )
    return PushdownPlan(
        path_tables=path,
        pushed=tuple(pushed),
        residual=tuple(residual),
        dangling_slots=dangling,
    )
