"""SPJA execution: FK hash joins, predicate evaluation, grouped aggregation.

The executor operates on :class:`JoinResult` — a flat, column-oriented view
of a (possibly completed) join with qualified column names and optional
per-row weights.  ReStore's incompleteness join produces the same structure,
so the downstream filter/aggregate pipeline is shared between ground-truth
execution, incomplete-data execution and completed-data execution, exactly
as in the paper ("once data is completed for a join, we use normal query
operators").

Row weights generalize plain execution: synthesized rows may carry
fractional multiplicities when completion paths introduce fan-out
reweighting (§4.4); COUNT sums weights, SUM sums ``weight * value`` and AVG
is the weighted mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import QueryValidationError
from ..relational import Database, join_order
from .ast import Aggregate, AggregateKind, Filter, FilterOp, GroupKey, Query, QueryResult


@dataclass
class JoinResult:
    """A materialized join: qualified columns plus optional row weights."""

    columns: Dict[str, np.ndarray]
    weights: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        lengths = {len(v) for v in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged join result: lengths {sorted(lengths)}")
        self._num_rows = lengths.pop() if lengths else 0
        if self.weights is not None and len(self.weights) != self._num_rows:
            raise ValueError("weights must align with join rows")

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def effective_weights(self) -> np.ndarray:
        if self.weights is None:
            return np.ones(self._num_rows)
        return np.asarray(self.weights, dtype=float)

    def resolve(self, column: str) -> np.ndarray:
        """Find a column by qualified or unambiguous unqualified name."""
        if column in self.columns:
            return self.columns[column]
        matches = [
            name for name in self.columns if name.split(".", 1)[-1] == column
        ]
        if not matches:
            raise KeyError(f"no column {column!r} in join ({sorted(self.columns)})")
        if len(matches) > 1:
            raise KeyError(f"ambiguous column {column!r}: {matches}")
        return self.columns[matches[0]]

    def select(self, mask: np.ndarray) -> "JoinResult":
        mask = np.asarray(mask, dtype=bool)
        cols = {name: arr[mask] for name, arr in self.columns.items()}
        weights = self.weights[mask] if self.weights is not None else None
        return JoinResult(cols, weights)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------

def available_columns(db: Database, tables: Sequence[str]) -> List[str]:
    """Qualified column names a query over ``tables`` may reference.

    Unknown table names raise ``ValueError`` listing the database's tables.
    """
    known = set(db.table_names())
    unknown = [t for t in tables if t not in known]
    if unknown:
        raise QueryValidationError(
            f"query references unknown table(s) {sorted(unknown)}; "
            f"available tables: {sorted(known)}"
        )
    return [
        f"{table}.{column}"
        for table in tables
        for column in db.table(table).column_names
    ]


def validate_query_columns(db: Database, query: Query) -> None:
    """Check every column the query references resolves in its tables.

    Raises ``ValueError`` — never a raw ``KeyError`` from deep inside the
    executor — naming the offending column and listing the candidate
    qualified columns, so admission layers (the completion service) can
    reject bad queries before any completion work is spent.
    """
    candidates = available_columns(db, query.tables)
    unqualified: Dict[str, List[str]] = {}
    for name in candidates:
        unqualified.setdefault(name.split(".", 1)[1], []).append(name)
    qualified = set(candidates)
    for column in query.columns_referenced():
        if column in qualified:
            continue
        matches = unqualified.get(column, [])
        if len(matches) == 1:
            continue
        if len(matches) > 1:
            raise QueryValidationError(
                f"column {column!r} is ambiguous across {sorted(matches)}; "
                f"qualify it as one of them"
            )
        raise QueryValidationError(
            f"query references unknown column {column!r}; "
            f"candidate columns: {sorted(candidates)}"
        )


# ----------------------------------------------------------------------
# Join
# ----------------------------------------------------------------------

def join_tables(db: Database, tables: Sequence[str]) -> JoinResult:
    """Inner equi-join of ``tables`` along their foreign keys.

    Negative key values (the missing-key sentinel of synthesized tuples)
    never match, so partially synthesized data joins conservatively.
    """
    tables = list(tables)
    first = tables[0]
    row_idx: Dict[str, np.ndarray] = {
        first: np.arange(len(db.table(first)), dtype=np.int64)
    }

    for anchor, new in join_order(db, tables):
        fk = db.fk_between(anchor, new)
        if fk.child_table == anchor:
            row_idx = _join_to_parent(db, row_idx, anchor, new, fk)
        else:
            row_idx = _join_to_children(db, row_idx, anchor, new, fk)

    columns: Dict[str, np.ndarray] = {}
    for table_name in tables:
        table = db.table(table_name)
        idx = row_idx[table_name]
        for col in table.column_names:
            columns[f"{table_name}.{col}"] = table[col][idx]
    return JoinResult(columns)


def _join_to_parent(db, row_idx, anchor, new, fk):
    """n:1 hop — each current row keeps at most one partner."""
    child_vals = db.table(anchor)[fk.child_column][row_idx[anchor]]
    parent_keys = db.table(new)[fk.parent_column]
    positions = _lookup_positions(parent_keys, child_vals)
    keep = positions >= 0
    out = {name: idx[keep] for name, idx in row_idx.items()}
    out[new] = positions[keep]
    return out

def _join_to_children(db, row_idx, anchor, new, fk):
    """1:n hop — each current row expands to all of its children."""
    anchor_keys = db.table(anchor)[fk.parent_column][row_idx[anchor]]
    child_refs = db.table(new)[fk.child_column]
    order = np.argsort(child_refs, kind="stable")
    sorted_refs = child_refs[order]
    starts = np.searchsorted(sorted_refs, anchor_keys, side="left")
    stops = np.searchsorted(sorted_refs, anchor_keys, side="right")
    counts = stops - starts
    total = int(counts.sum())

    expand = np.repeat(np.arange(len(anchor_keys)), counts)
    child_positions = np.empty(total, dtype=np.int64)
    cursor = 0
    nonzero = np.flatnonzero(counts)
    for i in nonzero:
        n = counts[i]
        child_positions[cursor:cursor + n] = order[starts[i]:stops[i]]
        cursor += n

    out = {name: idx[expand] for name, idx in row_idx.items()}
    out[new] = child_positions
    return out


def _lookup_positions(keys: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Row positions of ``queries`` in unique ``keys`` (-1 where absent)."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    pos = np.searchsorted(sorted_keys, queries)
    pos = np.clip(pos, 0, max(len(sorted_keys) - 1, 0))
    if len(sorted_keys) == 0:
        return np.full(len(queries), -1, dtype=np.int64)
    found = (sorted_keys[pos] == queries) & (queries >= 0)
    result = np.where(found, order[pos], -1)
    return result.astype(np.int64)


# ----------------------------------------------------------------------
# Filters
# ----------------------------------------------------------------------

_OPS = {
    FilterOp.EQ: lambda col, v: col == v,
    FilterOp.NE: lambda col, v: col != v,
    FilterOp.LT: lambda col, v: col < v,
    FilterOp.LE: lambda col, v: col <= v,
    FilterOp.GT: lambda col, v: col > v,
    FilterOp.GE: lambda col, v: col >= v,
}


def predicate_mask(col: np.ndarray, predicate: Filter) -> np.ndarray:
    """Boolean mask of one predicate over a column array.

    The single evaluation rule shared by post-hoc filtering and the
    pushdown planner (:mod:`repro.query.pushdown`) — pruning a walk row
    mid-join and filtering the materialized join must agree bitwise.
    """
    if predicate.op is FilterOp.IN:
        sub = np.zeros(len(col), dtype=bool)
        for value in predicate.value:  # type: ignore[union-attr]
            sub |= col == value
        return sub
    return np.asarray(_OPS[predicate.op](col, predicate.value), dtype=bool)


def filter_mask(joined: JoinResult, filters: Sequence[Filter]) -> np.ndarray:
    """Conjunction of all predicates as a boolean row mask."""
    mask = np.ones(joined.num_rows, dtype=bool)
    for predicate in filters:
        mask &= predicate_mask(joined.resolve(predicate.column), predicate)
    return mask


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------

def aggregate(
    joined: JoinResult,
    agg: Aggregate,
    group_by: Sequence[str] = (),
) -> QueryResult:
    """Weighted grouped aggregation over a (filtered) join."""
    weights = joined.effective_weights()
    if agg.column is not None:
        values = np.asarray(joined.resolve(agg.column), dtype=float)
    else:
        values = np.ones(joined.num_rows)

    if not group_by:
        return QueryResult({(): _reduce(agg.kind, values, weights)})

    group_cols = [joined.resolve(col) for col in group_by]
    codes, uniques = _group_codes(group_cols)
    num_groups = len(uniques)
    result: Dict[GroupKey, float] = {}
    w_sum = np.bincount(codes, weights=weights, minlength=num_groups)
    wx_sum = np.bincount(codes, weights=weights * values, minlength=num_groups)
    for g, key in enumerate(uniques):
        if w_sum[g] == 0:
            continue
        if agg.kind is AggregateKind.COUNT:
            result[key] = float(w_sum[g])
        elif agg.kind is AggregateKind.SUM:
            result[key] = float(wx_sum[g])
        else:
            result[key] = float(wx_sum[g] / w_sum[g])
    return QueryResult(result)


def _reduce(kind: AggregateKind, values: np.ndarray, weights: np.ndarray) -> float:
    total_weight = float(weights.sum())
    if kind is AggregateKind.COUNT:
        return total_weight
    weighted = float((values * weights).sum())
    if kind is AggregateKind.SUM:
        return weighted
    if total_weight == 0:
        return float("nan")
    return weighted / total_weight


def _group_codes(group_cols: List[np.ndarray]) -> Tuple[np.ndarray, List[GroupKey]]:
    """Encode multi-column group keys as dense integer codes."""
    per_col_codes = []
    per_col_values = []
    for col in group_cols:
        uniq, inverse = np.unique(col, return_inverse=True)
        per_col_codes.append(inverse)
        per_col_values.append(uniq)
    combined = per_col_codes[0].astype(np.int64)
    for codes, uniq in zip(per_col_codes[1:], per_col_values[1:]):
        combined = combined * len(uniq) + codes
    final_uniq, final_codes = np.unique(combined, return_inverse=True)
    keys: List[GroupKey] = []
    for combo in final_uniq:
        parts = []
        remainder = int(combo)
        for uniq in reversed(per_col_values[1:]):
            remainder, part = divmod(remainder, len(uniq))
            parts.append(uniq[part])
        parts.append(per_col_values[0][remainder])
        keys.append(tuple(_to_python(v) for v in reversed(parts)))
    return final_codes, keys


def _to_python(value):
    """Convert numpy scalars to plain python for stable dict keys."""
    if isinstance(value, np.generic):
        return value.item()
    return value


# ----------------------------------------------------------------------
# End-to-end helpers
# ----------------------------------------------------------------------

def execute(db: Database, query: Query) -> QueryResult:
    """Join, filter and aggregate ``query`` directly against ``db``."""
    joined = join_tables(db, query.tables)
    return execute_on_join(joined, query)


def execute_on_join(joined: JoinResult, query: Query) -> QueryResult:
    """Filter and aggregate a pre-computed (possibly completed) join."""
    mask = filter_mask(joined, query.filters)
    return aggregate(joined.select(mask), query.aggregate, query.group_by)
