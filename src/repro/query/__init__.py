"""SPJA query engine: AST, SQL front-end, hash-join executor."""

from .ast import (
    Aggregate,
    AggregateKind,
    Filter,
    FilterOp,
    GroupKey,
    Query,
    QueryResult,
)
from .executor import (
    JoinResult,
    aggregate,
    available_columns,
    execute,
    execute_on_join,
    filter_mask,
    join_tables,
    validate_query_columns,
)
from .sql import SQLSyntaxError, parse_query

__all__ = [
    "Aggregate",
    "AggregateKind",
    "Filter",
    "FilterOp",
    "GroupKey",
    "Query",
    "QueryResult",
    "JoinResult",
    "join_tables",
    "filter_mask",
    "aggregate",
    "execute",
    "execute_on_join",
    "available_columns",
    "validate_query_columns",
    "parse_query",
    "SQLSyntaxError",
]
