"""SPJA query engine: AST, SQL front-end, hash-join executor."""

from .ast import (
    Aggregate,
    AggregateKind,
    Filter,
    FilterOp,
    GroupKey,
    Query,
    QueryResult,
)
from .executor import (
    JoinResult,
    aggregate,
    execute,
    execute_on_join,
    filter_mask,
    join_tables,
)
from .sql import SQLSyntaxError, parse_query

__all__ = [
    "Aggregate",
    "AggregateKind",
    "Filter",
    "FilterOp",
    "GroupKey",
    "Query",
    "QueryResult",
    "JoinResult",
    "join_tables",
    "filter_mask",
    "aggregate",
    "execute",
    "execute_on_join",
    "parse_query",
    "SQLSyntaxError",
]
