"""SPJA query engine: AST, SQL front-end, hash-join executor."""

from .ast import (
    Aggregate,
    AggregateKind,
    Filter,
    FilterOp,
    GroupKey,
    Query,
    QueryResult,
)
from .executor import (
    JoinResult,
    aggregate,
    available_columns,
    execute,
    execute_on_join,
    filter_mask,
    join_tables,
    predicate_mask,
    validate_query_columns,
)
from .pushdown import (
    PushdownPlan,
    PushedFilter,
    dangling_hop_slots,
    plan_pushdown,
)
from .sql import SQLSyntaxError, parse_query

__all__ = [
    "Aggregate",
    "AggregateKind",
    "Filter",
    "FilterOp",
    "GroupKey",
    "Query",
    "QueryResult",
    "JoinResult",
    "join_tables",
    "filter_mask",
    "predicate_mask",
    "aggregate",
    "PushdownPlan",
    "PushedFilter",
    "plan_pushdown",
    "dangling_hop_slots",
    "execute",
    "execute_on_join",
    "available_columns",
    "validate_query_columns",
    "parse_query",
    "SQLSyntaxError",
]
