"""Query AST for the SPJA workload class supported by ReStore.

Paper §2.2: acyclic select-project-join-aggregate queries with equi-joins
along foreign keys, arbitrary filter predicates, COUNT/SUM/AVG aggregates and
any number of group-by attributes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

Value = Union[str, int, float]


class AggregateKind(enum.Enum):
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"


class FilterOp(enum.Enum):
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IN = "in"


@dataclass(frozen=True)
class Aggregate:
    """One aggregate expression, e.g. ``AVG(price)`` or ``COUNT(*)``."""

    kind: AggregateKind
    column: Optional[str] = None  # None only valid for COUNT(*)

    def __post_init__(self) -> None:
        if self.kind is not AggregateKind.COUNT and self.column is None:
            raise ValueError(f"{self.kind.value.upper()} requires a column")

    def __str__(self) -> str:
        return f"{self.kind.value.upper()}({self.column or '*'})"


@dataclass(frozen=True)
class Filter:
    """One predicate ``column op value`` (value is a tuple for IN)."""

    column: str
    op: FilterOp
    value: Union[Value, Tuple[Value, ...]]

    def __post_init__(self) -> None:
        if self.op is FilterOp.IN and not isinstance(self.value, tuple):
            raise ValueError("IN filters take a tuple of values")

    def fingerprint(self, column: Optional[str] = None) -> Tuple:
        """Canonical hashable identity of this predicate.

        ``column`` substitutes the fully qualified column name when the
        caller has resolved it (two spellings of the same predicate —
        ``price`` vs ``apartment.price`` — then share one fingerprint).
        The partial-completion cache keys chunk reuse on sets of these.
        """
        value = self.value if isinstance(self.value, tuple) else (self.value,)
        return (column or self.column, self.op.value, tuple(sorted(map(repr, value))))

    def __str__(self) -> str:
        return f"{self.column} {self.op.value} {self.value!r}"


@dataclass(frozen=True)
class Query:
    """A complete SPJA query.

    Attributes
    ----------
    tables:
        Tables joined along foreign keys (order irrelevant; the executor
        derives a join order).  A single entry means no join.
    aggregate:
        The aggregate to compute.
    filters:
        Conjunctive predicates applied after the join.
    group_by:
        Grouping attributes (possibly empty).
    """

    tables: Tuple[str, ...]
    aggregate: Aggregate
    filters: Tuple[Filter, ...] = ()
    group_by: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError("a query needs at least one table")
        if len(set(self.tables)) != len(self.tables):
            raise ValueError("duplicate tables in query (self-joins unsupported)")

    def predicate_fingerprint(self) -> Tuple:
        """Order-independent identity of the WHERE clause (see
        :meth:`Filter.fingerprint`)."""
        return tuple(sorted(f.fingerprint() for f in self.filters))

    def columns_referenced(self) -> List[str]:
        cols = [f.column for f in self.filters]
        cols.extend(self.group_by)
        if self.aggregate.column:
            cols.append(self.aggregate.column)
        return cols

    def __str__(self) -> str:
        sql = f"SELECT {self.aggregate} FROM {' NATURAL JOIN '.join(self.tables)}"
        if self.filters:
            sql += " WHERE " + " AND ".join(str(f) for f in self.filters)
        if self.group_by:
            sql += " GROUP BY " + ", ".join(self.group_by)
        return sql


GroupKey = Tuple[Value, ...]


@dataclass
class QueryResult:
    """Aggregate values per group; the empty tuple keys ungrouped results."""

    values: Dict[GroupKey, float] = field(default_factory=dict)

    @property
    def scalar(self) -> float:
        """The single value of an ungrouped query."""
        if list(self.values.keys()) != [()]:
            raise ValueError("result is grouped; no scalar value")
        return self.values[()]

    def groups(self) -> List[GroupKey]:
        return list(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, key: GroupKey) -> float:
        return self.values[key]
