"""Tuple factors: per-parent child counts along a foreign key.

Tuple factors (TFs, following DeepDB [17]) capture *how many* child tuples a
parent tuple joins with.  ReStore learns them as an additional discrete
column of the completion model so that, at completion time, it can estimate
how many tuples are missing for each evidence tuple (paper Fig. 1a and
§4.2).  When the user knows a relationship is complete for a subset of
parents, those observed TFs are ground truth; for the rest the model
predicts them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .schema import Database, ForeignKey

TF_UNKNOWN = -1
"""Marker for parents whose tuple factor is not annotated as known."""


def observed_tuple_factors(db: Database, fk: ForeignKey) -> np.ndarray:
    """Count children per parent row, aligned with the parent table's rows.

    Synthesized children carrying the missing-key sentinel (negative FK
    values) are ignored.
    """
    parent = db.table(fk.parent_table)
    child = db.table(fk.child_table)
    parent_keys = parent[fk.parent_column]
    child_refs = child[fk.child_column]

    counts = np.zeros(len(parent), dtype=np.int64)
    if len(child_refs) == 0:
        return counts
    valid = child_refs >= 0
    if not valid.any():
        return counts
    refs = child_refs[valid]
    # Parent keys are unique; map key value -> row position.
    order = np.argsort(parent_keys, kind="stable")
    sorted_keys = parent_keys[order]
    pos = np.searchsorted(sorted_keys, refs)
    pos = np.clip(pos, 0, len(sorted_keys) - 1)
    matched = sorted_keys[pos] == refs
    np.add.at(counts, order[pos[matched]], 1)
    return counts


def annotated_tuple_factors(
    db: Database,
    fk: ForeignKey,
    tf_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Tuple factors with unknown entries marked :data:`TF_UNKNOWN`.

    ``tf_mask`` is the per-parent availability mask from the schema
    annotation; where it is ``False`` the observed count is *not* trusted
    (the relationship may be incomplete there) and the model must predict it.
    """
    counts = observed_tuple_factors(db, fk)
    if tf_mask is None:
        return counts
    mask = np.asarray(tf_mask, dtype=bool)
    if mask.shape != counts.shape:
        raise ValueError("tuple-factor mask has wrong length")
    out = counts.copy()
    out[~mask] = TF_UNKNOWN
    return out


def cap_tuple_factors(tfs: np.ndarray, cap: int) -> np.ndarray:
    """Clip tuple factors into ``[0, cap]`` for categorical modeling.

    The completion models treat TFs as a categorical variable with vocabulary
    ``0 .. cap`` (plus the unknown marker handled by the codec); extremely
    heavy tails are clipped, which matches naru-style practice and bounds the
    output head size.
    """
    if cap < 1:
        raise ValueError("tuple-factor cap must be >= 1")
    capped = np.asarray(tfs).copy()
    known = capped != TF_UNKNOWN
    capped[known] = np.clip(capped[known], 0, cap)
    return capped
