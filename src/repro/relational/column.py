"""Column kinds and per-column metadata for the relational substrate.

ReStore distinguishes three kinds of attributes:

* ``KEY`` — primary/foreign keys.  Never modeled by the completion networks
  (the paper notes AR/SSAR models do not synthesize keys; joins with complete
  tables instead go through nearest-neighbour replacement).
* ``CATEGORICAL`` — discrete values (strings or ints); modeled directly.
* ``CONTINUOUS`` — numeric values; quantile-binned by :mod:`repro.encoding`
  before being fed to a model and dequantized when synthesized.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class ColumnKind(enum.Enum):
    """Semantic role of a column within a table."""

    KEY = "key"
    CATEGORICAL = "categorical"
    CONTINUOUS = "continuous"


@dataclass(frozen=True)
class ColumnMeta:
    """Name and kind of one column."""

    name: str
    kind: ColumnKind

    @property
    def is_key(self) -> bool:
        return self.kind is ColumnKind.KEY

    @property
    def is_modelable(self) -> bool:
        """Whether completion models learn a distribution over this column."""
        return self.kind in (ColumnKind.CATEGORICAL, ColumnKind.CONTINUOUS)


def coerce_values(kind: ColumnKind, values) -> np.ndarray:
    """Normalize raw column values to the canonical dtype for their kind.

    Keys become ``int64`` (with -1 reserved as the missing-key sentinel),
    continuous columns ``float64``, and categoricals keep their natural dtype
    (object arrays for strings, integers stay integral).
    """
    arr = np.asarray(values)
    if kind is ColumnKind.KEY:
        return arr.astype(np.int64)
    if kind is ColumnKind.CONTINUOUS:
        return arr.astype(np.float64)
    return arr


MISSING_KEY = np.int64(-1)
"""Sentinel used for foreign keys of synthesized tuples (paper §4.2: the
models do not generate keys, so completed rows carry this marker until —
and unless — nearest-neighbour replacement assigns a real partner)."""
