"""Relational substrate: tables, schemas, tuple factors, schema-graph walks."""

from .column import MISSING_KEY, ColumnKind, ColumnMeta, coerce_values
from .storage import (
    ColumnStore,
    InMemoryStore,
    MappedStore,
    StoreColumns,
    StoreWriter,
    contiguous_range,
    spill_arrays,
)
from .table import Table
from .schema import Database, ForeignKey, SchemaAnnotation
from .tuple_factors import (
    TF_UNKNOWN,
    annotated_tuple_factors,
    cap_tuple_factors,
    observed_tuple_factors,
)
from .graph import (
    CompletionPath,
    enumerate_completion_paths,
    fan_out_relations,
    join_order,
    schema_graph,
)

__all__ = [
    "ColumnKind",
    "ColumnMeta",
    "MISSING_KEY",
    "coerce_values",
    "ColumnStore",
    "InMemoryStore",
    "MappedStore",
    "StoreColumns",
    "StoreWriter",
    "contiguous_range",
    "spill_arrays",
    "Table",
    "Database",
    "ForeignKey",
    "SchemaAnnotation",
    "TF_UNKNOWN",
    "observed_tuple_factors",
    "annotated_tuple_factors",
    "cap_tuple_factors",
    "CompletionPath",
    "enumerate_completion_paths",
    "fan_out_relations",
    "join_order",
    "schema_graph",
]
