"""Databases: named tables connected by foreign-key relationships.

This module provides the schema substrate that ReStore's completion layer is
built on: foreign keys with direction (child ``n : 1`` parent), the schema
graph, and the completeness annotations of paper §2.2 (which tables are
complete, which incomplete).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from .table import Table


@dataclass(frozen=True)
class ForeignKey:
    """A directed relationship: each child row references one parent row.

    ``child.child_column`` holds primary-key values of
    ``parent.parent_column``.  Read as *child n:1 parent*; traversing from the
    parent side is the 1:n (fan-out) direction.
    """

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str = "id"

    def involves(self, table: str) -> bool:
        return table in (self.child_table, self.parent_table)

    def other(self, table: str) -> str:
        if table == self.child_table:
            return self.parent_table
        if table == self.parent_table:
            return self.child_table
        raise ValueError(f"{table} is not part of {self}")

    def __str__(self) -> str:
        return (
            f"{self.child_table}.{self.child_column} -> "
            f"{self.parent_table}.{self.parent_column}"
        )


class Database:
    """A set of tables plus the foreign keys connecting them."""

    def __init__(self, tables: Iterable[Table], foreign_keys: Sequence[ForeignKey]):
        self.tables: Dict[str, Table] = {}
        for table in tables:
            if table.name in self.tables:
                raise ValueError(f"duplicate table {table.name!r}")
            self.tables[table.name] = table
        self.foreign_keys: List[ForeignKey] = list(foreign_keys)
        self._validate()

    def _validate(self) -> None:
        for fk in self.foreign_keys:
            for table_name, column in (
                (fk.child_table, fk.child_column),
                (fk.parent_table, fk.parent_column),
            ):
                if table_name not in self.tables:
                    raise ValueError(f"foreign key {fk} references unknown table")
                if column not in self.tables[table_name]:
                    raise ValueError(f"foreign key {fk} references unknown column")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        if name not in self.tables:
            raise KeyError(f"no table {name!r}; have {sorted(self.tables)}")
        return self.tables[name]

    def table_names(self) -> List[str]:
        return list(self.tables)

    def replace_table(self, table: Table) -> "Database":
        """A new database with one table swapped out (same schema)."""
        if table.name not in self.tables:
            raise KeyError(f"no table {table.name!r} to replace")
        tables = [table if t.name == table.name else t for t in self.tables.values()]
        return Database(tables, self.foreign_keys)

    def copy(self) -> "Database":
        return Database(list(self.tables.values()), self.foreign_keys)

    # ------------------------------------------------------------------
    # Storage backends
    # ------------------------------------------------------------------
    def spill_to(self, directory: str) -> "Database":
        """Spill every table to a mapped store under ``directory``.

        Each table lands in its own subdirectory; ``database.json`` records
        the schema (table order, foreign keys) so :meth:`from_store` can
        reopen the database from a fresh process.
        """
        import json
        import os

        os.makedirs(directory, exist_ok=True)
        tables = [
            table.spill_to(os.path.join(directory, name))
            for name, table in self.tables.items()
        ]
        manifest = {
            "tables": list(self.tables),
            "foreign_keys": [
                [fk.child_table, fk.child_column, fk.parent_table, fk.parent_column]
                for fk in self.foreign_keys
            ],
        }
        with open(os.path.join(directory, "database.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2)
        return Database(tables, self.foreign_keys)

    @classmethod
    def from_store(cls, directory: str) -> "Database":
        """Reopen a spilled database (lazy, memory-mapped tables)."""
        import json
        import os

        with open(os.path.join(directory, "database.json"), "r",
                  encoding="utf-8") as fh:
            manifest = json.load(fh)
        tables = [
            Table.from_store(os.path.join(directory, name), name=name)
            for name in manifest["tables"]
        ]
        fks = [ForeignKey(*entry) for entry in manifest["foreign_keys"]]
        return cls(tables, fks)

    def nbytes_materialized(self) -> int:
        """Bytes the whole database occupies (or would) materialized in RAM."""
        return sum(t.nbytes_materialized() for t in self.tables.values())

    # ------------------------------------------------------------------
    # Schema graph
    # ------------------------------------------------------------------
    def fks_between(self, table_a: str, table_b: str) -> List[ForeignKey]:
        """All foreign keys connecting two tables (either direction)."""
        return [
            fk for fk in self.foreign_keys
            if {fk.child_table, fk.parent_table} == {table_a, table_b}
        ]

    def fk_between(self, table_a: str, table_b: str) -> ForeignKey:
        """The unique foreign key between two tables; raise otherwise."""
        fks = self.fks_between(table_a, table_b)
        if not fks:
            raise ValueError(f"no foreign key between {table_a} and {table_b}")
        if len(fks) > 1:
            raise ValueError(f"ambiguous foreign keys between {table_a} and {table_b}")
        return fks[0]

    def neighbors(self, table: str) -> List[str]:
        """Tables one foreign-key hop away (deduplicated, stable order)."""
        seen: List[str] = []
        for fk in self.foreign_keys:
            if fk.involves(table):
                other = fk.other(table)
                if other not in seen:
                    seen.append(other)
        return seen

    def is_fan_out_step(self, from_table: str, to_table: str) -> bool:
        """True when walking ``from_table -> to_table`` multiplies rows (1:n).

        Moving from a parent to its children is fan-out; moving from a child
        to its parent is n:1 and safe as AR evidence (paper §3.2).
        """
        fk = self.fk_between(from_table, to_table)
        return fk.parent_table == from_table

    def validate_references(self) -> List[str]:
        """Referential-integrity report: dangling FK values per relationship.

        Missing-key sentinels (negative values) are ignored — they mark
        synthesized rows whose partner was intentionally not generated.
        """
        problems = []
        for fk in self.foreign_keys:
            child = self.tables[fk.child_table]
            parent = self.tables[fk.parent_table]
            child_vals = np.asarray(child[fk.child_column])
            parent_keys = np.asarray(parent[fk.parent_column])
            real = child_vals[child_vals >= 0]
            dangling = int(len(real) - np.isin(real, parent_keys).sum())
            if dangling:
                problems.append(f"{fk}: {dangling} dangling references")
        return problems

    def __repr__(self) -> str:
        return (
            f"Database(tables={[f'{n}({len(t)})' for n, t in self.tables.items()]}, "
            f"fks={len(self.foreign_keys)})"
        )


@dataclass
class SchemaAnnotation:
    """The user-provided completeness annotation of paper §2.2.

    Attributes
    ----------
    complete_tables:
        Tables known to contain all tuples.
    incomplete_tables:
        Tables with (potentially systematically) missing tuples.
    known_tuple_factors:
        Per-relationship arrays aligned with the *parent* table's rows
        holding the **true** child count where the user annotated the
        relationship as complete for that parent, and ``TF_UNKNOWN`` (-1)
        elsewhere.  Keyed by ``str(fk)``.  For relationships into complete
        child tables no entry is needed — observed counts are the truth.
    """

    complete_tables: Set[str] = field(default_factory=set)
    incomplete_tables: Set[str] = field(default_factory=set)
    known_tuple_factors: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        overlap = self.complete_tables & self.incomplete_tables
        if overlap:
            raise ValueError(f"tables marked both complete and incomplete: {overlap}")

    def is_complete(self, table: str) -> bool:
        if table in self.complete_tables:
            return True
        if table in self.incomplete_tables:
            return False
        raise KeyError(f"table {table!r} has no completeness annotation")

    def annotated_tables(self) -> Set[str]:
        return self.complete_tables | self.incomplete_tables

    def check_covers(self, db: Database) -> None:
        missing = set(db.table_names()) - self.annotated_tables()
        if missing:
            raise ValueError(f"tables without completeness annotation: {sorted(missing)}")

    def tuple_factors_for(self, fk: ForeignKey, num_parent_rows: int) -> Optional[np.ndarray]:
        """Annotated true tuple factors for ``fk`` or ``None`` when absent.

        The returned array aligns with the (incomplete) parent table's rows;
        entries are true counts where known and ``TF_UNKNOWN`` elsewhere.
        """
        values = self.known_tuple_factors.get(str(fk))
        if values is None:
            return None
        values = np.asarray(values, dtype=np.int64)
        if values.shape != (num_parent_rows,):
            raise ValueError(f"tuple-factor annotation for {fk} has wrong length")
        return values
