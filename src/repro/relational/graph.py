"""Schema-graph walks: completion paths and fan-out evidence discovery.

ReStore needs two kinds of traversals over the foreign-key graph:

* **Completion paths** (§3.2, §5): simple paths ``T_1 — … — T_n — T_m`` from
  a *complete* table to the incomplete target.  Intermediate evidence tables
  must not introduce fan-out relative to the walk direction (each step toward
  the target except the last must be n:1 when read from the evidence side);
  the final hop may be 1:n (then tuple factors determine how many tuples to
  synthesize) or n:1.
* **Fan-out relations** (§3.3): for SSAR models, the acyclic walk that
  gathers additional 1:n evidence hanging off the evidence tables — these
  become deep-sets tree inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import networkx as nx

from .schema import Database, SchemaAnnotation


@dataclass(frozen=True)
class CompletionPath:
    """An ordered walk from an evidence table to the incomplete target.

    ``tables[0]`` is the root evidence table and ``tables[-1]`` the
    incomplete table to synthesize.  ``tables[:-1]`` all must be complete.
    """

    tables: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.tables) < 2:
            raise ValueError("a completion path needs at least evidence + target")
        if len(set(self.tables)) != len(self.tables):
            raise ValueError(f"completion path revisits a table: {self.tables}")

    @property
    def evidence_tables(self) -> Tuple[str, ...]:
        return self.tables[:-1]

    @property
    def target(self) -> str:
        return self.tables[-1]

    @property
    def length(self) -> int:
        """Number of hops (paper's "path distance")."""
        return len(self.tables) - 1

    def __str__(self) -> str:
        return " -> ".join(self.tables)


def schema_graph(db: Database) -> nx.Graph:
    """Undirected view of the FK graph (edges annotated with the FK)."""
    graph = nx.Graph()
    graph.add_nodes_from(db.table_names())
    for fk in db.foreign_keys:
        graph.add_edge(fk.child_table, fk.parent_table, fk=fk)
    return graph


def enumerate_completion_paths(
    db: Database,
    annotation: SchemaAnnotation,
    target: str,
    max_length: int = 6,
) -> List[CompletionPath]:
    """All admissible completion paths ending at the incomplete ``target``.

    Completion walks (Algorithm 1) repeatedly apply incompleteness joins, so
    interior tables may themselves be incomplete — the movie setups complete
    ``movie`` through the incomplete m:n link tables (§4.3), and the
    long-distance M4/M5 paths traverse several incomplete tables.  A path
    ``T_1, …, T_n, target`` (read root → target) is admissible when:

    * the root ``T_1`` is annotated complete (it seeds the walk with real
      evidence tuples),
    * every hop ``A -> B`` into a *complete* table ``B`` is 1:n — an n:1 hop
      into a complete table duplicates evidence tuples without completing
      anything, which is exactly the fan-out-evidence situation §3.2 rules
      out (the same evidence is reachable by rooting the path at ``B``'s
      side instead); hops into *incomplete* tables may go either way, since
      the incompleteness join synthesizes the missing side,
    * the path is simple (acyclic walk).

    Paths are returned shortest-first, root-table alphabetical second, which
    makes downstream selection deterministic.
    """
    if annotation.is_complete(target):
        raise ValueError(f"{target} is annotated complete; nothing to synthesize")

    paths: List[CompletionPath] = []

    def extend(prefix: List[str]) -> None:
        """Grow a partial path back-to-front: prefix ends at the target."""
        head = prefix[0]
        for neighbor in db.neighbors(head):
            if neighbor in prefix:
                continue
            # Hop neighbor -> head (toward the target): if head is complete
            # it must be the fan-out direction; incomplete tables (incl. the
            # target) accept both directions.
            head_complete = head != target and annotation.is_complete(head)
            if head_complete and not db.is_fan_out_step(neighbor, head):
                continue
            candidate = [neighbor, *prefix]
            if annotation.is_complete(neighbor):
                paths.append(CompletionPath(tuple(candidate)))
            if len(candidate) <= max_length:
                extend(candidate)

    extend([target])
    # Deduplicate (a prefix may be reachable through different recursions).
    unique = {p.tables: p for p in paths}
    ordered = sorted(unique.values(), key=lambda p: (p.length, p.tables))
    return ordered


def fan_out_relations(
    db: Database,
    annotation: SchemaAnnotation,
    path: CompletionPath,
    include_self_evidence: bool = True,
    max_depth: int = 2,
) -> List[Tuple[str, ...]]:
    """Fan-out walks usable as SSAR tree evidence for a completion path.

    Returns walks starting at the *root evidence table* ``path.tables[0]``
    into 1:n neighbourhoods not already on the path (paper §3.3).  When
    ``include_self_evidence`` is set and the last hop is 1:n, the target
    table itself is included as a walk — the already-available target tuples
    become self-evidence.

    Each walk is a tuple ``(root, child, [grandchild, …])``; depth is capped
    to keep training-data assembly tractable.
    """
    root = path.tables[0]
    walks: List[Tuple[str, ...]] = []

    def descend(prefix: Tuple[str, ...], depth: int) -> None:
        head = prefix[-1]
        for neighbor in db.neighbors(head):
            if neighbor in prefix or neighbor in path.tables[:-1]:
                continue
            if not db.is_fan_out_step(head, neighbor):
                continue
            is_target = neighbor == path.target
            if is_target and (not include_self_evidence or len(prefix) > 1):
                continue
            if not is_target and not annotation.is_complete(neighbor):
                continue
            walk = prefix + (neighbor,)
            walks.append(walk)
            if depth + 1 < max_depth:
                descend(walk, depth + 1)

    descend((root,), 0)
    return walks


def join_order(db: Database, tables: Sequence[str]) -> List[Tuple[str, str]]:
    """An edge sequence joining ``tables`` one hop at a time.

    Returns ``(already_joined_table, new_table)`` pairs forming a spanning
    tree of the induced subgraph; raises if the tables are not connected
    through each other (the paper restricts queries to acyclic FK joins).
    """
    remaining = list(tables)
    if not remaining:
        return []
    joined = {remaining.pop(0)}
    order: List[Tuple[str, str]] = []
    while remaining:
        for i, candidate in enumerate(remaining):
            anchor = next(
                (t for t in joined if db.fks_between(t, candidate)), None
            )
            if anchor is not None:
                order.append((anchor, candidate))
                joined.add(candidate)
                remaining.pop(i)
                break
        else:
            raise ValueError(
                f"tables {remaining} are not FK-connected to {sorted(joined)}"
            )
    return order
