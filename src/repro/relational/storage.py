"""Out-of-core column stores: the backend seam behind :class:`Table`.

A :class:`ColumnStore` owns the physical bytes of a table's columns.  Two
implementations exist:

* :class:`InMemoryStore` — the historical backend: plain numpy arrays in
  RAM.  ``read_range`` returns basic-slice *views*, so contiguous chunk
  walks stop paying the fancy-indexing copy tax.
* :class:`MappedStore` — one ``.npy`` file per column under a spill
  directory, read through short-lived ``numpy`` memory maps.  Numeric
  columns are stored verbatim; object (string) columns are dictionary
  encoded (``int16`` codes, promoted to ``int32`` when a dictionary
  outgrows 32767 entries) with the dictionary in a JSON sidecar.  Every
  read opens a fresh read-only map and drops it with the returned array,
  so resident pages are bounded by what callers keep alive — a chunked
  walk over a 10M-row table holds one chunk's pages, not the table.

``store.json`` records the schema (row count, per-column dtype/kind/
encoding, file sizes) and a self-digest; :meth:`MappedStore.open` refuses
tampered or truncated stores with :class:`~repro.errors.StoreIntegrityError`.

Writes go through :class:`StoreWriter`, which streams row blocks into
pre-sized ``.npy`` files with plain buffered ``write`` calls — no dirty
mapped pages — so a generator can produce a table far larger than RAM.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import StorageError, StoreIntegrityError
from .column import ColumnKind

STORE_META = "store.json"
STORE_FORMAT_VERSION = 1

#: dictionary code dtype ladder: start narrow, promote on overflow
_CODE_DTYPES = (np.dtype(np.int16), np.dtype(np.int32))


def _counter(name: str):
    """Spill telemetry counter (lazy import — relational stays obs-free)."""
    from ..obs.metrics import registry

    return registry().counter(name)


def _canonical_meta_bytes(meta: dict) -> bytes:
    """Deterministic serialization of the metadata minus its own digest."""
    body = {k: v for k, v in meta.items() if k != "digest"}
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def meta_digest(meta: dict) -> str:
    return hashlib.sha256(_canonical_meta_bytes(meta)).hexdigest()


@dataclass
class ColumnSpec:
    """Physical layout of one stored column."""

    name: str
    kind: str                  # ColumnKind value
    dtype: str                 # dtype of the materialized values
    encoding: str              # "raw" | "dict"
    file: str                  # npy file name within the store directory
    code_dtype: Optional[str] = None   # dict encoding: dtype of the codes
    dict_file: Optional[str] = None    # dict encoding: JSON dictionary

    def as_dict(self) -> dict:
        out = {
            "name": self.name,
            "kind": self.kind,
            "dtype": self.dtype,
            "encoding": self.encoding,
            "file": self.file,
        }
        if self.encoding == "dict":
            out["code_dtype"] = self.code_dtype
            out["dict_file"] = self.dict_file
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ColumnSpec":
        return cls(
            name=data["name"],
            kind=data["kind"],
            dtype=data["dtype"],
            encoding=data["encoding"],
            file=data["file"],
            code_dtype=data.get("code_dtype"),
            dict_file=data.get("dict_file"),
        )


def contiguous_range(indices: np.ndarray) -> Optional[Tuple[int, int]]:
    """``(start, stop)`` if ``indices`` is exactly ``arange(start, stop)``.

    The cheap first/last test is necessary but not sufficient (duplicates
    can balance gaps), so a full step check runs only when it passes.
    """
    idx = np.asarray(indices)
    if idx.ndim != 1 or len(idx) == 0 or idx.dtype.kind not in "iu":
        return None
    first = int(idx[0])
    last = int(idx[-1])
    if last - first + 1 != len(idx):
        return None
    if len(idx) > 1 and not bool((np.diff(idx) == 1).all()):
        return None
    return first, last + 1


class ColumnStore:
    """Read interface shared by both backends."""

    persistent = False  # True when the bytes live on disk (picklable by path)

    @property
    def num_rows(self) -> int:
        raise NotImplementedError

    def names(self) -> List[str]:
        raise NotImplementedError

    def kind(self, name: str) -> ColumnKind:
        raise NotImplementedError

    def read_full(self, name: str) -> np.ndarray:
        raise NotImplementedError

    def read_range(self, name: str, start: int, stop: int) -> np.ndarray:
        raise NotImplementedError

    def gather(self, name: str, rows: np.ndarray) -> np.ndarray:
        """Rows at arbitrary positions; contiguous requests become ranges."""
        bounds = contiguous_range(rows)
        if bounds is not None:
            return self.read_range(name, bounds[0], bounds[1])
        return self._gather_fancy(name, np.asarray(rows))

    def _gather_fancy(self, name: str, rows: np.ndarray) -> np.ndarray:
        return self.read_full(name)[rows]


class InMemoryStore(ColumnStore):
    """The in-RAM backend: a dict of arrays plus their kinds."""

    def __init__(
        self, columns: Mapping[str, np.ndarray], kinds: Mapping[str, ColumnKind]
    ):
        self._columns = dict(columns)
        self._kinds = dict(kinds)
        lengths = {len(a) for a in self._columns.values()}
        if len(lengths) > 1:
            raise StorageError(f"ragged columns with lengths {sorted(lengths)}")
        self._num_rows = lengths.pop() if lengths else 0

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def names(self) -> List[str]:
        return list(self._columns)

    def kind(self, name: str) -> ColumnKind:
        return self._kinds[name]

    def read_full(self, name: str) -> np.ndarray:
        return self._columns[name]

    def read_range(self, name: str, start: int, stop: int) -> np.ndarray:
        # Basic slicing: a zero-copy view into the resident array.
        return self._columns[name][start:stop]

    def _gather_fancy(self, name: str, rows: np.ndarray) -> np.ndarray:
        return self._columns[name][rows]


class MappedStore(ColumnStore):
    """Memory-mapped columnar backend rooted at one spill directory.

    Every read opens a *fresh* read-only memmap of the column file and
    returns a slice view (zero-copy for numeric columns); the map is
    released when the caller drops the array, so nothing this store does
    pins table-sized resident memory.  Instances pickle as their directory
    path — process workers reopen the store instead of receiving array
    bytes, making fan-out cost O(1) in the table size.
    """

    persistent = True

    def __init__(self, directory: str, meta: dict):
        self.directory = str(directory)
        self._meta = meta
        self._specs: Dict[str, ColumnSpec] = {
            spec["name"]: ColumnSpec.from_dict(spec) for spec in meta["columns"]
        }
        self._dicts: Dict[str, np.ndarray] = {}

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def open(cls, directory: str) -> "MappedStore":
        """Open and verify an existing store directory."""
        meta_path = os.path.join(directory, STORE_META)
        if not os.path.isfile(meta_path):
            raise StorageError(f"{directory} is not a column store (no {STORE_META})")
        with open(meta_path, "r", encoding="utf-8") as fh:
            try:
                meta = json.load(fh)
            except json.JSONDecodeError as exc:
                raise StoreIntegrityError(f"{meta_path} is not valid JSON: {exc}")
        version = meta.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise StorageError(
                f"store format version {version!r} is not supported "
                f"(expected {STORE_FORMAT_VERSION})"
            )
        recorded = meta.get("digest")
        if recorded != meta_digest(meta):
            raise StoreIntegrityError(
                f"store metadata digest mismatch in {meta_path} — "
                "the file was modified after the store was written"
            )
        store = cls(directory, meta)
        for file_name, size in meta["files"].items():
            path = os.path.join(directory, file_name)
            if not os.path.isfile(path):
                raise StoreIntegrityError(f"store file missing: {path}")
            actual = os.path.getsize(path)
            if actual != size:
                raise StoreIntegrityError(
                    f"store file {path} has {actual} bytes, expected {size}"
                )
        return store

    def __reduce__(self):
        return (MappedStore.open, (self.directory,))

    # -- schema --------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return int(self._meta["num_rows"])

    @property
    def table_name(self) -> str:
        return self._meta["table"]

    @property
    def primary_key(self) -> Optional[str]:
        return self._meta.get("primary_key")

    def names(self) -> List[str]:
        return list(self._specs)

    def spec(self, name: str) -> ColumnSpec:
        if name not in self._specs:
            raise KeyError(f"store has no column {name!r}")
        return self._specs[name]

    def kind(self, name: str) -> ColumnKind:
        return ColumnKind(self.spec(name).kind)

    # -- reads ---------------------------------------------------------
    def _mmap(self, spec: ColumnSpec) -> np.ndarray:
        path = os.path.join(self.directory, spec.file)
        return np.load(path, mmap_mode="r")

    def dictionary(self, name: str) -> np.ndarray:
        """The decode dictionary of a dict-encoded column (cached: small)."""
        spec = self.spec(name)
        if spec.encoding != "dict":
            raise StorageError(f"column {name!r} is not dictionary encoded")
        if name not in self._dicts:
            path = os.path.join(self.directory, spec.dict_file)
            with open(path, "r", encoding="utf-8") as fh:
                values = json.load(fh)
            self._dicts[name] = np.array(values, dtype=object)
        return self._dicts[name]

    def read_full(self, name: str) -> np.ndarray:
        return self.read_range(name, 0, self.num_rows)

    def read_range(self, name: str, start: int, stop: int) -> np.ndarray:
        spec = self.spec(name)
        raw = self._mmap(spec)[start:stop]
        _counter("storage.spill.reads").add(1)
        if spec.encoding == "dict":
            # Decoding materializes the requested range only.
            codes = np.asarray(raw)
            _counter("storage.spill.bytes_read").add(int(codes.nbytes))
            return self.dictionary(name)[codes]
        _counter("storage.spill.bytes_read").add(int(raw.nbytes))
        return raw

    def _gather_fancy(self, name: str, rows: np.ndarray) -> np.ndarray:
        spec = self.spec(name)
        picked = self._mmap(spec)[rows]       # copies just the touched rows
        _counter("storage.spill.reads").add(1)
        _counter("storage.spill.bytes_read").add(int(picked.nbytes))
        if spec.encoding == "dict":
            return self.dictionary(name)[picked]
        return picked

    def read_codes(self, name: str, start: int, stop: int) -> np.ndarray:
        """Raw dictionary codes of a range (no decode)."""
        spec = self.spec(name)
        if spec.encoding != "dict":
            raise StorageError(f"column {name!r} is not dictionary encoded")
        return self._mmap(spec)[start:stop]

    def nbytes_materialized(self) -> int:
        """Bytes the table would occupy fully materialized in RAM.

        Dict-encoded columns count as object arrays (one pointer per row)
        plus their dictionary payload — the honest in-RAM equivalent.
        """
        total = 0
        for spec in self._specs.values():
            if spec.encoding == "dict":
                total += self.num_rows * np.dtype(object).itemsize
                total += sum(len(str(v)) for v in self.dictionary(spec.name))
            else:
                total += self.num_rows * np.dtype(spec.dtype).itemsize
        return total


def _npy_header(fh, dtype: np.dtype, num_rows: int) -> None:
    np.lib.format.write_array_header_2_0(
        fh, {"descr": np.lib.format.dtype_to_descr(dtype),
             "fortran_order": False, "shape": (num_rows,)}
    )


class _RawColumnWriter:
    """Streams fixed-dtype blocks into a pre-sized npy file."""

    def __init__(self, path: str, dtype: np.dtype, num_rows: int):
        self.path = path
        self.dtype = np.dtype(dtype)
        self.num_rows = num_rows
        self.written = 0
        self._fh = open(path, "wb")
        _npy_header(self._fh, self.dtype, num_rows)

    def append(self, values: np.ndarray) -> int:
        block = np.ascontiguousarray(values, dtype=self.dtype)
        if self.written + len(block) > self.num_rows:
            raise StorageError(
                f"{self.path}: writing past the declared {self.num_rows} rows"
            )
        self._fh.write(block.tobytes())
        self.written += len(block)
        return int(block.nbytes)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class _DictColumnWriter:
    """Dictionary-encodes object values into a code file plus a JSON dict.

    Codes start as ``int16``; the moment the dictionary outgrows the int16
    code space, the already-written code file is stream-promoted to
    ``int32`` and writing continues — no caller involvement, no second
    pass over the source data.
    """

    def __init__(self, path: str, dict_path: str, num_rows: int):
        self.path = path
        self.dict_path = dict_path
        self.num_rows = num_rows
        self.codes: Dict[object, int] = {}
        self.values: List[object] = []
        self._writer = _RawColumnWriter(path, _CODE_DTYPES[0], num_rows)

    @property
    def code_dtype(self) -> np.dtype:
        return self._writer.dtype

    @property
    def written(self) -> int:
        return self._writer.written

    def _promote(self) -> None:
        """Rewrite the code file at the next wider dtype, then swap it in.

        The half-written file is shorter than its pre-sized header claims,
        so it cannot be memory-mapped yet — the written prefix is streamed
        back as raw bytes instead.
        """
        self._writer.close()
        old_dtype = self._writer.dtype
        new_dtype = _CODE_DTYPES[_CODE_DTYPES.index(old_dtype) + 1]
        tmp = self.path + ".promote"
        promoted = _RawColumnWriter(tmp, new_dtype, self.num_rows)
        done = self._writer.written
        step = 1 << 20
        with open(self.path, "rb") as fh:
            np.lib.format.read_magic(fh)
            # _npy_header always writes format 2.0
            np.lib.format.read_array_header_2_0(fh)
            for start in range(0, done, step):
                count = min(step, done - start)
                block = np.frombuffer(
                    fh.read(count * old_dtype.itemsize), dtype=old_dtype
                )
                promoted.append(block)
        promoted.close()
        os.replace(tmp, self.path)
        reopened = _RawColumnWriter.__new__(_RawColumnWriter)
        reopened.path = self.path
        reopened.dtype = new_dtype
        reopened.num_rows = self.num_rows
        reopened.written = done
        reopened._fh = open(self.path, "r+b")
        reopened._fh.seek(0, os.SEEK_END)
        self._writer = reopened

    def append(self, values: Sequence) -> int:
        arr = np.asarray(values, dtype=object)
        codes = np.empty(len(arr), dtype=np.int64)
        for i, value in enumerate(arr):
            code = self.codes.get(value)
            if code is None:
                if not isinstance(value, str):
                    raise StorageError(
                        "object columns must contain strings to spill; got "
                        f"{type(value).__name__} ({value!r})"
                    )
                code = len(self.values)
                self.codes[value] = code
                self.values.append(value)
            codes[i] = code
        limit = np.iinfo(self._writer.dtype).max
        if self.values and len(self.values) - 1 > limit:
            self._promote()
        return self._writer.append(codes)

    def close(self) -> None:
        self._writer.close()
        with open(self.dict_path, "w", encoding="utf-8") as fh:
            json.dump(self.values, fh)


class StoreWriter:
    """Streams a table of known row count into a new :class:`MappedStore`.

    Columns are declared up front (name, kind, dtype); rows arrive in
    blocks via :meth:`append` / :meth:`append_rows`.  ``finalize`` checks
    that every column received exactly ``num_rows`` rows, writes the
    digested metadata and returns the opened store.
    """

    def __init__(
        self,
        directory: str,
        table_name: str,
        num_rows: int,
        primary_key: Optional[str] = "id",
    ):
        self.directory = str(directory)
        self.table_name = table_name
        self.num_rows = int(num_rows)
        self.primary_key = primary_key
        os.makedirs(self.directory, exist_ok=True)
        self._order: List[str] = []
        self._kinds: Dict[str, ColumnKind] = {}
        self._writers: Dict[str, object] = {}
        self._bytes_written = 0

    def add_column(
        self, name: str, kind: ColumnKind, dtype: Optional[np.dtype] = None
    ) -> None:
        if name in self._writers:
            raise StorageError(f"column {name!r} declared twice")
        safe = name.replace(os.sep, "_")
        if dtype is not None and np.dtype(dtype) != np.dtype(object):
            writer = _RawColumnWriter(
                os.path.join(self.directory, f"{safe}.npy"),
                np.dtype(dtype), self.num_rows,
            )
        else:
            writer = _DictColumnWriter(
                os.path.join(self.directory, f"{safe}.codes.npy"),
                os.path.join(self.directory, f"{safe}.dict.json"),
                self.num_rows,
            )
        self._order.append(name)
        self._kinds[name] = kind
        self._writers[name] = writer

    def append(self, name: str, values: Sequence) -> None:
        if name not in self._writers:
            raise StorageError(f"column {name!r} was never declared")
        self._bytes_written += self._writers[name].append(values)

    def append_rows(self, columns: Mapping[str, Sequence]) -> None:
        """One row block touching every declared column."""
        if set(columns) != set(self._order):
            raise StorageError(
                f"row block columns {sorted(columns)} != declared {sorted(self._order)}"
            )
        for name in self._order:
            self.append(name, columns[name])

    def finalize(self) -> MappedStore:
        specs: List[dict] = []
        for name in self._order:
            writer = self._writers[name]
            if writer.written != self.num_rows:
                raise StorageError(
                    f"column {name!r} received {writer.written} rows, "
                    f"expected {self.num_rows}"
                )
            writer.close()
            safe = name.replace(os.sep, "_")
            if isinstance(writer, _DictColumnWriter):
                decoded = np.dtype(object)
                specs.append(ColumnSpec(
                    name=name, kind=self._kinds[name].value,
                    dtype=decoded.str, encoding="dict",
                    file=f"{safe}.codes.npy",
                    code_dtype=np.dtype(writer.code_dtype).str,
                    dict_file=f"{safe}.dict.json",
                ).as_dict())
            else:
                specs.append(ColumnSpec(
                    name=name, kind=self._kinds[name].value,
                    dtype=np.dtype(writer.dtype).str, encoding="raw",
                    file=f"{safe}.npy",
                ).as_dict())
        files = {}
        for spec in specs:
            for key in ("file", "dict_file"):
                file_name = spec.get(key)
                if file_name:
                    files[file_name] = os.path.getsize(
                        os.path.join(self.directory, file_name)
                    )
        meta = {
            "format_version": STORE_FORMAT_VERSION,
            "table": self.table_name,
            "num_rows": self.num_rows,
            "primary_key": self.primary_key,
            "columns": specs,
            "files": files,
        }
        meta["digest"] = meta_digest(meta)
        with open(os.path.join(self.directory, STORE_META), "w",
                  encoding="utf-8") as fh:
            json.dump(meta, fh, indent=2)
        _counter("storage.spill.writes").add(1)
        _counter("storage.spill.bytes_written").add(self._bytes_written)
        return MappedStore.open(self.directory)


def spill_arrays(
    directory: str,
    table_name: str,
    columns: Mapping[str, np.ndarray],
    kinds: Mapping[str, ColumnKind],
    primary_key: Optional[str] = "id",
    block_rows: int = 1 << 18,
) -> MappedStore:
    """Write in-RAM columns to a new mapped store in bounded blocks."""
    lengths = {len(a) for a in columns.values()}
    if len(lengths) > 1:
        raise StorageError(f"ragged columns with lengths {sorted(lengths)}")
    num_rows = lengths.pop() if lengths else 0
    writer = StoreWriter(directory, table_name, num_rows, primary_key=primary_key)
    for name, values in columns.items():
        arr = np.asarray(values)
        dtype = None if arr.dtype == object else arr.dtype
        writer.add_column(name, kinds[name], dtype=dtype)
    for start in range(0, num_rows, block_rows):
        stop = min(start + block_rows, num_rows)
        writer.append_rows({n: np.asarray(v)[start:stop] for n, v in columns.items()})
    if num_rows == 0:
        writer.append_rows({n: np.asarray(v)[:0] for n, v in columns.items()})
    return writer.finalize()


class StoreColumns(Mapping):
    """Lazy column mapping over a store — for results too big to hold.

    Accessing a key materializes that column on demand (memmap-backed for
    numeric columns, decoded for dict columns); nothing is cached, so the
    caller controls residency.
    """

    def __init__(self, store: MappedStore, names: Optional[Iterable[str]] = None):
        self._store = store
        self._names = list(names) if names is not None else store.names()

    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self._names:
            raise KeyError(name)
        return self._store.read_full(name)

    def __iter__(self):
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    @property
    def store(self) -> MappedStore:
        return self._store


__all__ = [
    "ColumnSpec",
    "ColumnStore",
    "InMemoryStore",
    "MappedStore",
    "StoreColumns",
    "StoreWriter",
    "STORE_FORMAT_VERSION",
    "STORE_META",
    "contiguous_range",
    "meta_digest",
    "spill_arrays",
]
