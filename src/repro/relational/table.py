"""Column-oriented tables over a pluggable storage backend.

A :class:`Table` stores equal-length columns keyed by name plus per-column
:class:`~repro.relational.column.ColumnMeta`.  The physical bytes live
behind a :class:`~repro.relational.storage.ColumnStore` seam: the default
backend keeps plain numpy arrays in RAM; :meth:`Table.spill_to` /
:meth:`Table.from_store` move a table onto the memory-mapped columnar
backend, where columns materialize lazily and row ranges are read through
short-lived maps.  Operations return new (in-RAM) tables; contiguous row
selections return zero-copy range views on both backends, everything else
falls back to fancy indexing (which copies).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .column import ColumnKind, ColumnMeta, coerce_values
from .storage import (
    ColumnStore,
    InMemoryStore,
    MappedStore,
    contiguous_range,
    spill_arrays,
)


class Table:
    """An immutable-ish named relation.

    Parameters
    ----------
    name:
        Relation name (unique within a database).
    columns:
        Mapping of column name to values; insertion order is preserved and
        becomes the canonical column order.
    kinds:
        Mapping of column name to :class:`ColumnKind`.  Every column must be
        declared.
    primary_key:
        Name of the primary-key column, or ``None`` for tables without one
        (e.g. pure m:n link tables).
    """

    def __init__(
        self,
        name: str,
        columns: Mapping[str, Sequence],
        kinds: Mapping[str, ColumnKind],
        primary_key: Optional[str] = "id",
    ):
        self.name = name
        self._columns: Dict[str, np.ndarray] = {}
        self._meta: Dict[str, ColumnMeta] = {}
        self._store: Optional[MappedStore] = None
        lengths = set()
        for col_name, values in columns.items():
            if col_name not in kinds:
                raise ValueError(f"{name}: column {col_name!r} has no declared kind")
            kind = kinds[col_name]
            arr = coerce_values(kind, values)
            if arr.ndim != 1:
                raise ValueError(f"{name}.{col_name}: columns must be 1-D")
            self._columns[col_name] = arr
            self._meta[col_name] = ColumnMeta(col_name, kind)
            lengths.add(len(arr))
        extra = set(kinds) - set(columns)
        if extra:
            raise ValueError(f"{name}: kinds declared for missing columns {sorted(extra)}")
        if len(lengths) > 1:
            raise ValueError(f"{name}: ragged columns with lengths {sorted(lengths)}")
        self._num_rows = lengths.pop() if lengths else 0
        if primary_key is not None and primary_key not in self._columns:
            raise ValueError(f"{name}: primary key {primary_key!r} is not a column")
        self.primary_key = primary_key

    # ------------------------------------------------------------------
    # Storage backends
    # ------------------------------------------------------------------
    @classmethod
    def from_store(
        cls, store, name: Optional[str] = None
    ) -> "Table":
        """A table backed by an existing column store (lazy columns).

        ``store`` is a :class:`~repro.relational.storage.MappedStore` or a
        spill-directory path to open one from.
        """
        if not isinstance(store, MappedStore):
            store = MappedStore.open(str(store))
        table = cls.__new__(cls)
        table.name = name if name is not None else store.table_name
        table._store = store
        table._columns = {}
        table._meta = {
            col: ColumnMeta(col, store.kind(col)) for col in store.names()
        }
        table._num_rows = store.num_rows
        table.primary_key = store.primary_key
        return table

    def spill_to(self, directory: str) -> "Table":
        """Write this table's columns to a mapped store; return the
        store-backed table.  Round-trips are bitwise identical."""
        store = spill_arrays(
            directory,
            self.name,
            {c: self.column(c) for c in self.column_names},
            self.kinds(),
            primary_key=self.primary_key,
        )
        return Table.from_store(store, name=self.name)

    @property
    def is_mapped(self) -> bool:
        """True when the bytes live in a mapped store (lazy columns)."""
        return self._store is not None

    @property
    def store(self) -> Optional[MappedStore]:
        return self._store

    def __getstate__(self) -> dict:
        if self._store is not None and self._store.persistent:
            # Ship the store path, not the bytes: workers reopen the mmap.
            return {
                "name": self.name,
                "primary_key": self.primary_key,
                "store_dir": self._store.directory,
            }
        return dict(self.__dict__)

    def __setstate__(self, state: dict) -> None:
        store_dir = state.pop("store_dir", None)
        if store_dir is not None:
            restored = Table.from_store(store_dir, name=state["name"])
            self.__dict__.update(restored.__dict__)
            self.primary_key = state["primary_key"]
            return
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self._num_rows

    def __len__(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> List[str]:
        return list(self._meta) if self._store is not None else list(self._columns)

    def __contains__(self, column: str) -> bool:
        return column in self._meta

    def column(self, name: str) -> np.ndarray:
        """The raw values of one column.

        In-RAM backend: the resident array, no copy.  Mapped backend: a
        fresh read (memmap view for numeric columns, decoded copy for
        dictionary columns) — deliberately *not* cached, so large columns
        do not accumulate in RSS behind the caller's back.
        """
        if self._store is not None:
            if name not in self._meta:
                raise KeyError(f"{self.name} has no column {name!r}")
            return self._store.read_full(name)
        if name not in self._columns:
            raise KeyError(f"{self.name} has no column {name!r}")
        return self._columns[name]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def column_range(self, name: str, start: int, stop: int) -> np.ndarray:
        """Zero-copy view of a contiguous row range of one column.

        Both backends return basic-slice views (the mapped backend's view
        holds its short-lived map alive until the caller drops it), so
        chunked walks stop paying the fancy-indexing copy tax.
        """
        if name not in self._meta:
            raise KeyError(f"{self.name} has no column {name!r}")
        if self._store is not None:
            return self._store.read_range(name, start, stop)
        return self._columns[name][start:stop]

    def gather(self, name: str, rows: np.ndarray) -> np.ndarray:
        """Rows of one column at the given positions.

        Contiguous requests become range views; anything else is a fancy
        gather (mapped columns read only the touched rows)."""
        if name not in self._meta:
            raise KeyError(f"{self.name} has no column {name!r}")
        if self._store is not None:
            return self._store.gather(name, rows)
        bounds = contiguous_range(rows)
        if bounds is not None:
            return self._columns[name][bounds[0]:bounds[1]]
        return self._columns[name][np.asarray(rows)]

    def meta(self, name: str) -> ColumnMeta:
        if name not in self._meta:
            raise KeyError(f"{self.name} has no column {name!r}")
        return self._meta[name]

    def kinds(self) -> Dict[str, ColumnKind]:
        return {name: meta.kind for name, meta in self._meta.items()}

    def modelable_columns(self) -> List[str]:
        """Columns whose distribution a completion model should learn."""
        return [name for name, meta in self._meta.items() if meta.is_modelable]

    def nbytes_materialized(self) -> int:
        """Bytes this table occupies (or would occupy) materialized in RAM."""
        if self._store is not None:
            return self._store.nbytes_materialized()
        return int(sum(arr.nbytes for arr in self._columns.values()))

    def __repr__(self) -> str:
        backend = "mapped" if self._store is not None else "ram"
        return (
            f"Table({self.name!r}, rows={self.num_rows}, "
            f"cols={self.column_names}, backend={backend})"
        )

    # ------------------------------------------------------------------
    # Row-level operations
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Table":
        """Rows at the given positions (duplicates and reordering allowed).

        Contiguous ascending positions return zero-copy range views."""
        idx = np.asarray(indices)
        bounds = contiguous_range(idx)
        if bounds is not None:
            return self.slice_rows(bounds[0], bounds[1])
        return self._with_columns(
            {name: self.gather(name, idx) for name in self.column_names}
        )

    def select(self, mask: np.ndarray) -> "Table":
        """Rows where the boolean ``mask`` is true (range view if contiguous)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._num_rows,):
            raise ValueError("mask must have one entry per row")
        return self.take(np.flatnonzero(mask))

    def slice_rows(self, start: int, stop: int) -> "Table":
        """The contiguous row range ``[start, stop)`` as zero-copy views."""
        start = max(0, int(start))
        stop = min(self._num_rows, int(stop))
        if stop < start:
            stop = start
        return self._with_columns(
            {name: self.column_range(name, start, stop) for name in self.column_names}
        )

    def head(self, n: int) -> "Table":
        return self.take(np.arange(min(n, self._num_rows)))

    # ------------------------------------------------------------------
    # Column-level operations
    # ------------------------------------------------------------------
    def project(self, columns: Iterable[str]) -> "Table":
        """Keep only the given columns (primary key dropped if not listed)."""
        cols = list(columns)
        data = {name: self.column(name) for name in cols}
        kinds = {name: self._meta[name].kind for name in cols}
        pk = self.primary_key if self.primary_key in cols else None
        return Table(self.name, data, kinds, primary_key=pk)

    def with_column(self, name: str, values: Sequence, kind: ColumnKind) -> "Table":
        """A new (in-RAM) table with one column added or replaced."""
        data = {c: self.column(c) for c in self.column_names}
        kinds = self.kinds()
        data[name] = values
        kinds[name] = kind
        return Table(self.name, data, kinds, primary_key=self.primary_key)

    def concat_rows(self, other: "Table") -> "Table":
        """Stack another table with identical columns underneath this one."""
        if other.column_names != self.column_names:
            raise ValueError(
                f"cannot concat {self.name}: column mismatch "
                f"{self.column_names} vs {other.column_names}"
            )
        data = {
            name: np.concatenate([self.column(name), other.column(name)])
            for name in self.column_names
        }
        return Table(self.name, data, self.kinds(), primary_key=self.primary_key)

    def _with_columns(self, columns: Dict[str, np.ndarray]) -> "Table":
        table = Table.__new__(Table)
        table.name = self.name
        table._columns = columns
        table._meta = self._meta
        table._store = None
        lengths = {len(arr) for arr in columns.values()}
        table._num_rows = lengths.pop() if lengths else 0
        table.primary_key = self.primary_key
        return table

    # ------------------------------------------------------------------
    # Conversion helpers (mostly for tests and examples)
    # ------------------------------------------------------------------
    def to_dicts(self) -> List[dict]:
        """Row dictionaries — convenient for assertions on small tables."""
        columns = {name: self.column(name) for name in self.column_names}
        return [
            {name: columns[name][i] for name in columns}
            for i in range(self._num_rows)
        ]

    def key_index(self) -> Dict[int, int]:
        """Map primary-key value → row position (requires a primary key)."""
        if self.primary_key is None:
            raise ValueError(f"{self.name} has no primary key")
        keys = self.column(self.primary_key)
        return {int(k): i for i, k in enumerate(keys)}
