"""Column-oriented in-memory tables.

A :class:`Table` stores equal-length numpy arrays keyed by column name plus
per-column :class:`~repro.relational.column.ColumnMeta`.  Operations return
new tables (copy-on-write at the array level: selections use fancy indexing,
which copies; metadata is shared).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from .column import ColumnKind, ColumnMeta, coerce_values


class Table:
    """An immutable-ish named relation.

    Parameters
    ----------
    name:
        Relation name (unique within a database).
    columns:
        Mapping of column name to values; insertion order is preserved and
        becomes the canonical column order.
    kinds:
        Mapping of column name to :class:`ColumnKind`.  Every column must be
        declared.
    primary_key:
        Name of the primary-key column, or ``None`` for tables without one
        (e.g. pure m:n link tables).
    """

    def __init__(
        self,
        name: str,
        columns: Mapping[str, Sequence],
        kinds: Mapping[str, ColumnKind],
        primary_key: Optional[str] = "id",
    ):
        self.name = name
        self._columns: Dict[str, np.ndarray] = {}
        self._meta: Dict[str, ColumnMeta] = {}
        lengths = set()
        for col_name, values in columns.items():
            if col_name not in kinds:
                raise ValueError(f"{name}: column {col_name!r} has no declared kind")
            kind = kinds[col_name]
            arr = coerce_values(kind, values)
            if arr.ndim != 1:
                raise ValueError(f"{name}.{col_name}: columns must be 1-D")
            self._columns[col_name] = arr
            self._meta[col_name] = ColumnMeta(col_name, kind)
            lengths.add(len(arr))
        extra = set(kinds) - set(columns)
        if extra:
            raise ValueError(f"{name}: kinds declared for missing columns {sorted(extra)}")
        if len(lengths) > 1:
            raise ValueError(f"{name}: ragged columns with lengths {sorted(lengths)}")
        self._num_rows = lengths.pop() if lengths else 0
        if primary_key is not None and primary_key not in self._columns:
            raise ValueError(f"{name}: primary key {primary_key!r} is not a column")
        self.primary_key = primary_key

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self._num_rows

    def __len__(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    def __contains__(self, column: str) -> bool:
        return column in self._columns

    def column(self, name: str) -> np.ndarray:
        """The raw values of one column (no copy)."""
        if name not in self._columns:
            raise KeyError(f"{self.name} has no column {name!r}")
        return self._columns[name]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def meta(self, name: str) -> ColumnMeta:
        if name not in self._meta:
            raise KeyError(f"{self.name} has no column {name!r}")
        return self._meta[name]

    def kinds(self) -> Dict[str, ColumnKind]:
        return {name: meta.kind for name, meta in self._meta.items()}

    def modelable_columns(self) -> List[str]:
        """Columns whose distribution a completion model should learn."""
        return [name for name, meta in self._meta.items() if meta.is_modelable]

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self.num_rows}, cols={self.column_names})"

    # ------------------------------------------------------------------
    # Row-level operations
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Table":
        """Rows at the given positions (duplicates and reordering allowed)."""
        idx = np.asarray(indices)
        return self._with_columns({name: arr[idx] for name, arr in self._columns.items()})

    def select(self, mask: np.ndarray) -> "Table":
        """Rows where the boolean ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._num_rows,):
            raise ValueError("mask must have one entry per row")
        return self.take(np.flatnonzero(mask))

    def head(self, n: int) -> "Table":
        return self.take(np.arange(min(n, self._num_rows)))

    # ------------------------------------------------------------------
    # Column-level operations
    # ------------------------------------------------------------------
    def project(self, columns: Iterable[str]) -> "Table":
        """Keep only the given columns (primary key dropped if not listed)."""
        cols = list(columns)
        data = {name: self._columns[name] for name in cols}
        kinds = {name: self._meta[name].kind for name in cols}
        pk = self.primary_key if self.primary_key in cols else None
        return Table(self.name, data, kinds, primary_key=pk)

    def with_column(self, name: str, values: Sequence, kind: ColumnKind) -> "Table":
        """A new table with one column added or replaced."""
        data = dict(self._columns)
        kinds = self.kinds()
        data[name] = values
        kinds[name] = kind
        return Table(self.name, data, kinds, primary_key=self.primary_key)

    def concat_rows(self, other: "Table") -> "Table":
        """Stack another table with identical columns underneath this one."""
        if other.column_names != self.column_names:
            raise ValueError(
                f"cannot concat {self.name}: column mismatch "
                f"{self.column_names} vs {other.column_names}"
            )
        data = {
            name: np.concatenate([self._columns[name], other._columns[name]])
            for name in self.column_names
        }
        return Table(self.name, data, self.kinds(), primary_key=self.primary_key)

    def _with_columns(self, columns: Dict[str, np.ndarray]) -> "Table":
        table = Table.__new__(Table)
        table.name = self.name
        table._columns = columns
        table._meta = self._meta
        lengths = {len(arr) for arr in columns.values()}
        table._num_rows = lengths.pop() if lengths else 0
        table.primary_key = self.primary_key
        return table

    # ------------------------------------------------------------------
    # Conversion helpers (mostly for tests and examples)
    # ------------------------------------------------------------------
    def to_dicts(self) -> List[dict]:
        """Row dictionaries — convenient for assertions on small tables."""
        return [
            {name: self._columns[name][i] for name in self.column_names}
            for i in range(self._num_rows)
        ]

    def key_index(self) -> Dict[int, int]:
        """Map primary-key value → row position (requires a primary key)."""
        if self.primary_key is None:
            raise ValueError(f"{self.name} has no primary key")
        keys = self._columns[self.primary_key]
        return {int(k): i for i, k in enumerate(keys)}
