"""The common benchmark-result envelope.

Every ``benchmarks/bench_*.py`` JSON payload is stamped with one envelope
(via the ``pytest_benchmark_update_json`` hook in ``benchmarks/conftest.py``)
so BENCH_*.json files from different machines and commits are comparable:
repro version, git sha, hostname, python/numpy versions, platform, and a
summary of the process metrics registry.  :func:`validate_envelope` is the
schema check CI and the benchmarks themselves run — hand-rolled (this
package takes no dependency on jsonschema), but strict about types.
"""

from __future__ import annotations

import platform
import socket
import subprocess
import sys
import time
from typing import List

from .metrics import registry, update_process_gauges
from .trace import get_tracer, tracing_enabled

__all__ = ["bench_envelope", "validate_envelope", "ENVELOPE_VERSION"]

ENVELOPE_VERSION = 1

#: field name -> required python types
_SCHEMA = {
    "envelope_version": (int,),
    "repro_version": (str,),
    "git_sha": (str,),
    "hostname": (str,),
    "platform": (str,),
    "python_version": (str,),
    "numpy_version": (str,),
    "timestamp": (int, float),
    "obs": (dict,),
}


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def obs_summary() -> dict:
    """A compact snapshot of the process's telemetry state.

    Refreshes the ``process.*`` memory gauges first, so every benchmark
    envelope records the peak RSS and (via the spill counters, when a
    mapped store was involved) the out-of-core read/write traffic of the
    run it stamps.
    """
    update_process_gauges()
    tracer = get_tracer()
    return {
        "tracing_enabled": tracing_enabled(),
        "spans_collected": len(tracer),
        "spans_dropped": tracer.dropped,
        "metrics": registry().snapshot(),
    }


def bench_envelope() -> dict:
    """The envelope stamped onto every benchmark JSON payload."""
    import numpy as np

    from ..version import repro_version

    return {
        "envelope_version": ENVELOPE_VERSION,
        "repro_version": repro_version(),
        "git_sha": _git_sha(),
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python_version": sys.version.split()[0],
        "numpy_version": np.__version__,
        "timestamp": time.time(),
        "obs": obs_summary(),
    }


def validate_envelope(envelope: dict) -> List[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(envelope, dict):
        return [f"envelope must be a dict, got {type(envelope).__name__}"]
    for field, types in _SCHEMA.items():
        if field not in envelope:
            problems.append(f"missing field {field!r}")
        elif not isinstance(envelope[field], types):
            problems.append(
                f"field {field!r} must be {'/'.join(t.__name__ for t in types)}, "
                f"got {type(envelope[field]).__name__}"
            )
    if not problems:
        if envelope["envelope_version"] != ENVELOPE_VERSION:
            problems.append(
                f"envelope_version {envelope['envelope_version']} != "
                f"{ENVELOPE_VERSION}"
            )
        obs = envelope["obs"]
        for key in ("tracing_enabled", "spans_collected", "metrics"):
            if key not in obs:
                problems.append(f"obs summary missing {key!r}")
    return problems
