"""``repro.obs`` — zero-dependency telemetry for the whole pipeline.

Three legs, all off by default with asserted near-zero disabled cost:

* **Tracing** (:mod:`~repro.obs.trace`): ``trace(name, **attrs)`` spans
  with trace/span ids, monotonic clocks and thread/process-safe
  collection, instrumenting query planning, pushdown pruning, chunk
  walks, kernel batches, training epochs, cache probes, batch formation,
  single-flight joins, fleet routing and hot swaps end to end.  Trace
  context crosses the router↔worker wire, so a fleet query's spans
  stitch into one tree.
* **Metrics** (:mod:`~repro.obs.metrics`): a process-wide
  :class:`MetricsRegistry` of counters/gauges/histograms (p50/p95/p99)
  that the serving stats surfaces are re-expressed on top of, with
  ``snapshot()`` / ``to_json()`` export.
* **Structured logs** (:mod:`~repro.obs.log`): JSON lines with trace ids
  attached; fleet lifecycle events (spawn, ready, swap, death, drain)
  flow through it.

Exports land in ``chrome://tracing`` / Perfetto via
:func:`export_chrome_trace`, or as a human latency-breakdown table via
:func:`report`.  Typical session::

    import repro.obs as obs

    obs.enable_tracing()
    answer = engine.answer(query)
    print(obs.report())                     # where did the latency go?
    obs.export_chrome_trace("trace.json")   # load in ui.perfetto.dev
"""

from .envelope import ENVELOPE_VERSION, bench_envelope, obs_summary, validate_envelope
from .export import (
    chrome_trace_events,
    export_chrome_trace,
    report,
    span_tree,
    validate_chrome_trace,
)
from .log import clear_records, configure_logging, get_logger, recent_records
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_rss_bytes,
    peak_rss_bytes,
    registry,
    reset_peak_rss,
    set_registry,
    update_process_gauges,
)
from .profile import (
    KernelProfiler,
    disable_kernel_profiling,
    enable_kernel_profiling,
    kernel_profiler,
    profile_kernels,
)
from .trace import (
    NOOP_SPAN,
    Span,
    TraceContext,
    Tracer,
    activate,
    current_context,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    trace,
    tracing_enabled,
)

__all__ = [
    # tracing
    "trace",
    "Span",
    "TraceContext",
    "Tracer",
    "activate",
    "current_context",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "get_tracer",
    "set_tracer",
    "NOOP_SPAN",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "registry",
    "set_registry",
    "current_rss_bytes",
    "peak_rss_bytes",
    "reset_peak_rss",
    "update_process_gauges",
    # kernel profiling
    "KernelProfiler",
    "profile_kernels",
    "enable_kernel_profiling",
    "disable_kernel_profiling",
    "kernel_profiler",
    # exporters
    "export_chrome_trace",
    "chrome_trace_events",
    "validate_chrome_trace",
    "report",
    "span_tree",
    # structured logging
    "get_logger",
    "configure_logging",
    "recent_records",
    "clear_records",
    # envelope
    "bench_envelope",
    "validate_envelope",
    "obs_summary",
    "ENVELOPE_VERSION",
]
