"""Structured spans: the tracing half of :mod:`repro.obs`.

A *span* is one timed operation — a query being planned, a chunk being
walked, a join being led — identified by a 64-bit span id, grouped into a
*trace* by a 128-bit trace id, and nested through a parent span id.  The
API is one context manager::

    with trace("engine.answer", tables=len(query.tables)) as span:
        ...
        span.set("rows", completed.num_rows)

Design constraints, in priority order:

* **Off by default with a no-op fast path.**  ``trace(...)`` with tracing
  disabled returns a module-level singleton whose ``__enter__`` /
  ``__exit__`` / ``set`` / ``event`` do nothing — no allocation, no clock
  read, no lock.  The serving and completion hot paths are permanently
  instrumented, so this path is benchmarked
  (:mod:`benchmarks.bench_obs`) and must stay within its overhead bound.
* **Thread- and process-safe collection.**  Finished spans land in the
  process-wide :class:`Tracer` under a lock; spans are plain picklable
  dataclasses, so a worker process ships its spans back over the wire
  and the router ingests them into one stitched tree
  (:meth:`Tracer.ingest`).
* **Monotonic timing, wall-clock anchoring.**  Durations come from
  ``perf_counter_ns``; each tracer also records a wall-clock anchor so
  exported timestamps from different processes on one machine line up.
* **Sampling.**  ``enable_tracing(sample_rate=...)`` traces that fraction
  of *root* spans (decided per trace, deterministic counter-based, never
  mid-trace), bounding overhead under heavy traffic.

Context propagation uses :mod:`contextvars`, which follows asyncio tasks
natively.  Pool threads do **not** inherit context; code that hands work
to a thread pool carries the :class:`TraceContext` explicitly (see
``CoreRequest.trace_ctx`` in :mod:`repro.serving.core`) and re-activates
it with :func:`activate`.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "trace",
    "activate",
    "current_context",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "get_tracer",
    "set_tracer",
]


# ----------------------------------------------------------------------
# Span model
# ----------------------------------------------------------------------

@dataclass
class Span:
    """One finished (or in-flight) timed operation.

    Times are microseconds: ``start_us`` on the tracer's wall-anchored
    monotonic axis, ``duration_us`` pure monotonic.  ``attrs`` values must
    stay JSON-representable (numbers, strings, bools) — exporters emit
    them verbatim.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start_us: int
    duration_us: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)
    pid: int = 0
    thread: str = ""
    events: List[Tuple[str, int]] = field(default_factory=list)

    def set(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def event(self, name: str) -> None:
        """Mark an instant within the span (exported as its offset)."""
        self.events.append((name, time.perf_counter_ns() // 1000))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "attrs": dict(self.attrs),
            "pid": self.pid,
            "thread": self.thread,
        }


@dataclass(frozen=True)
class TraceContext:
    """The (trace id, active span id, sampled) triple that crosses seams.

    Picklable and tiny: this is what rides on request objects between
    event loop and pool threads, and in wire frames between router and
    worker processes.
    """

    trace_id: str
    span_id: Optional[str]
    sampled: bool = True

    def as_wire(self) -> dict:
        return {"trace_id": self.trace_id, "parent_span_id": self.span_id,
                "sampled": self.sampled}

    @classmethod
    def from_wire(cls, payload: Optional[dict]) -> Optional["TraceContext"]:
        if not payload:
            return None
        trace_id = payload.get("trace_id")
        if not trace_id:
            return None
        return cls(
            trace_id=str(trace_id),
            span_id=payload.get("parent_span_id"),
            sampled=bool(payload.get("sampled", True)),
        )


_context: "contextvars.ContextVar[Optional[TraceContext]]" = \
    contextvars.ContextVar("repro_obs_trace_context", default=None)


def current_context() -> Optional[TraceContext]:
    """The active trace context of this task/thread, if any."""
    return _context.get()


class _ContextToken:
    """Restores the previous context on exit (plain ``with activate(...)``)."""

    __slots__ = ("_token",)

    def __init__(self, token: "contextvars.Token"):
        self._token = token

    def __enter__(self) -> None:
        return None

    def __exit__(self, *_exc) -> None:
        _context.reset(self._token)


def activate(ctx: Optional[TraceContext]) -> _ContextToken:
    """Make ``ctx`` the ambient trace context (context-manager scoped).

    Used where contextvars cannot flow by themselves: a pool thread
    serving a request created on the event loop, or a worker process
    resuming a trace begun by the router.
    """
    return _ContextToken(_context.set(ctx))


# ----------------------------------------------------------------------
# Tracer (per-process span collection)
# ----------------------------------------------------------------------

class Tracer:
    """Thread-safe collector of finished spans for one process.

    Spans are kept in a bounded buffer (oldest dropped first, counted in
    :attr:`dropped`) and queried per trace id — the fleet worker drains a
    request's spans into its answer frame with :meth:`take`.
    """

    def __init__(self, max_spans: int = 100_000):
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self.dropped = 0
        # Wall-clock anchor: start_us = anchor_wall_us + (mono - anchor_mono).
        self._anchor_wall_us = time.time_ns() // 1000
        self._anchor_mono_us = time.perf_counter_ns() // 1000

    def now_us(self) -> int:
        """Monotonic microseconds on this tracer's wall-anchored axis."""
        return self._anchor_wall_us + (
            time.perf_counter_ns() // 1000 - self._anchor_mono_us
        )

    def add(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self._spans.pop(0)
                self.dropped += 1
            self._spans.append(span)

    def ingest(self, spans: List[Span]) -> None:
        """Adopt spans produced elsewhere (another process, over the wire)."""
        for span in spans:
            self.add(span)

    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        with self._lock:
            if trace_id is None:
                return list(self._spans)
            return [s for s in self._spans if s.trace_id == trace_id]

    def take(self, trace_id: str) -> List[Span]:
        """Remove and return every span of one trace (wire hand-off)."""
        with self._lock:
            taken = [s for s in self._spans if s.trace_id == trace_id]
            if taken:
                self._spans = [
                    s for s in self._spans if s.trace_id != trace_id
                ]
            return taken

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# ----------------------------------------------------------------------
# Global state and the no-op fast path
# ----------------------------------------------------------------------

class _NoopSpan:
    """The disabled-path span: every method is a constant no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> None:
        return None

    def set(self, key: str, value: object) -> None:
        return None

    def event(self, name: str) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class _UnsampledSpan:
    """A sampled-out *root*: collects nothing, but pins a not-sampled
    context for its scope so descendants are suppressed too — a trace is
    always complete or absent, never partial."""

    __slots__ = ("_token",)

    def __init__(self) -> None:
        self._token = _context.set(_UNSAMPLED_CONTEXT)

    def __enter__(self) -> "_NoopSpan":
        return NOOP_SPAN

    def __exit__(self, *_exc) -> None:
        _context.reset(self._token)


_UNSAMPLED_CONTEXT = TraceContext("", None, sampled=False)


class _State:
    """Mutable tracing state, one instance per process."""

    __slots__ = ("enabled", "sample_rate", "tracer", "counter", "lock")

    def __init__(self) -> None:
        self.enabled = False
        self.sample_rate = 1.0
        self.tracer = Tracer()
        self.counter = 0
        self.lock = threading.Lock()


_state = _State()


def tracing_enabled() -> bool:
    return _state.enabled


def enable_tracing(sample_rate: float = 1.0, tracer: Optional[Tracer] = None) -> Tracer:
    """Turn span collection on; returns the active tracer.

    ``sample_rate`` in (0, 1] samples that fraction of *root* spans —
    the decision is made once per trace, deterministically (every
    ``round(1/rate)``-th root), so a trace is always complete or absent,
    never partial.
    """
    if not 0.0 < sample_rate <= 1.0:
        raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate}")
    if tracer is not None:
        _state.tracer = tracer
    _state.sample_rate = sample_rate
    _state.counter = 0
    _state.enabled = True
    return _state.tracer


def disable_tracing() -> None:
    _state.enabled = False


def get_tracer() -> Tracer:
    return _state.tracer


def set_tracer(tracer: Tracer) -> None:
    _state.tracer = tracer


def _new_id(bits: int = 64) -> str:
    return os.urandom(bits // 8).hex()


def _sample_root() -> bool:
    rate = _state.sample_rate
    if rate >= 1.0:
        return True
    period = max(1, round(1.0 / rate))
    with _state.lock:
        _state.counter += 1
        return _state.counter % period == 1 or period == 1


class _LiveSpan:
    """An open span: context manager that records itself when it exits."""

    __slots__ = ("span", "_token", "_start_ns")

    def __init__(self, name: str, ctx: Optional[TraceContext], attrs: dict):
        tracer = _state.tracer
        if ctx is None:
            trace_id = _new_id(128)
            parent_id = None
        else:
            trace_id = ctx.trace_id
            parent_id = ctx.span_id
        self.span = Span(
            name=name,
            trace_id=trace_id,
            span_id=_new_id(64),
            parent_id=parent_id,
            start_us=tracer.now_us(),
            attrs=attrs,
            pid=os.getpid(),
            thread=threading.current_thread().name,
        )
        self._start_ns = time.perf_counter_ns()
        self._token = _context.set(
            TraceContext(trace_id, self.span.span_id, True)
        )

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, _tb) -> None:
        self.span.duration_us = (
            time.perf_counter_ns() - self._start_ns
        ) // 1000
        if exc_type is not None:
            self.span.attrs["error"] = exc_type.__name__
        start_ns = self._start_ns
        if self.span.events:
            self.span.events = [
                (name, max(0, t_us - start_ns // 1000))
                for name, t_us in self.span.events
            ]
        _context.reset(self._token)
        _state.tracer.add(self.span)


def trace(name: str, **attrs):
    """Open a span named ``name`` (context manager yielding the span).

    The one instrumentation entry point.  Disabled (the default), it
    returns the shared no-op span immediately; enabled, it opens a child
    of the ambient context (or a sampled root when there is none) and
    records the finished span into the process tracer on exit.
    """
    if not _state.enabled:
        return NOOP_SPAN
    ctx = _context.get()
    if ctx is None:
        if not _sample_root():
            return _UnsampledSpan()
    elif not ctx.sampled:
        return NOOP_SPAN
    return _LiveSpan(name, ctx, attrs)
