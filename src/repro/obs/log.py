"""Structured JSON-lines logging with trace correlation.

``get_logger(name)`` returns an :class:`ObsLogger` whose ``info`` /
``warning`` / ``error`` emit one JSON object per line::

    {"ts": 1723111845.123, "level": "info", "logger": "repro.fleet",
     "event": "worker.ready", "trace_id": "...", "worker": 0, "pid": 4242}

The active :class:`~repro.obs.trace.TraceContext`'s ids are attached
automatically, so a log line and the span tree it was emitted under join
on ``trace_id``.  Lifecycle events that used to be silent — worker spawn,
ready, swap, death, drain — flow through here from the serving fleet.

Sinks: a bounded in-memory ring buffer always records the most recent
records (tests and ``repro.obs.summary()`` read it); emission to a stream
is opt-in via :func:`configure_logging` or the ``REPRO_OBS_LOG``
environment variable (``stderr``, ``stdout``, or a file path).  Keeping
the default silent preserves the library's no-noise contract.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from typing import Dict, List, Optional, TextIO

from .trace import current_context

__all__ = ["ObsLogger", "get_logger", "configure_logging", "recent_records",
           "clear_records"]

_lock = threading.Lock()
_records: deque = deque(maxlen=4096)
_stream: Optional[TextIO] = None
_stream_configured = False
_loggers: Dict[str, "ObsLogger"] = {}


def _resolve_stream() -> Optional[TextIO]:
    global _stream_configured, _stream
    if _stream_configured:
        return _stream
    _stream_configured = True
    target = os.environ.get("REPRO_OBS_LOG", "")
    if not target:
        _stream = None
    elif target == "stderr":
        _stream = sys.stderr
    elif target == "stdout":
        _stream = sys.stdout
    else:
        _stream = open(target, "a", encoding="utf-8")
    return _stream


def configure_logging(stream: Optional[TextIO]) -> None:
    """Send records to ``stream`` (None silences; ring buffer always on)."""
    global _stream, _stream_configured
    with _lock:
        _stream = stream
        _stream_configured = True


def recent_records(
    event: Optional[str] = None, logger: Optional[str] = None
) -> List[dict]:
    """The ring buffer's records, optionally filtered (oldest first)."""
    with _lock:
        records = list(_records)
    if event is not None:
        records = [r for r in records if r.get("event") == event]
    if logger is not None:
        records = [r for r in records if r.get("logger") == logger]
    return records


def clear_records() -> None:
    with _lock:
        _records.clear()


class ObsLogger:
    """One named emitter of structured records."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _emit(self, level: str, event: str, fields: dict) -> None:
        record = {
            "ts": time.time(),
            "level": level,
            "logger": self.name,
            "event": event,
            "pid": os.getpid(),
        }
        ctx = current_context()
        if ctx is not None:
            record["trace_id"] = ctx.trace_id
            if ctx.span_id:
                record["span_id"] = ctx.span_id
        record.update(fields)
        with _lock:
            _records.append(record)
            stream = _resolve_stream()
            if stream is not None:
                try:
                    stream.write(json.dumps(record, default=str) + "\n")
                    stream.flush()
                except OSError:
                    pass  # a dead sink must never take serving down

    def info(self, event: str, **fields) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields) -> None:
        self._emit("error", event, fields)


def get_logger(name: str) -> ObsLogger:
    with _lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = _loggers[name] = ObsLogger(name)
        return logger
