"""Exporters: Chrome-trace JSON and the human latency-breakdown table.

:func:`export_chrome_trace` writes the Trace Event Format that both
``chrome://tracing`` and https://ui.perfetto.dev load directly — one
complete (``"ph": "X"``) event per span, rows grouped by process/thread,
span attributes as event ``args``.  :func:`report` renders the same spans
as an indented text table answering "where did this query's latency go":
one line per span, depth-indented, with duration, share of the root, and
the attributes that matter (rows scanned, cache hits, batch sizes).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .trace import Span, Tracer, get_tracer

__all__ = ["chrome_trace_events", "export_chrome_trace", "report",
           "span_tree", "validate_chrome_trace"]


def chrome_trace_events(spans: Sequence[Span]) -> List[dict]:
    """Spans → Chrome Trace Event Format event dicts (plus metadata)."""
    events: List[dict] = []
    seen_procs: set = set()
    for span in spans:
        if span.pid not in seen_procs:
            seen_procs.add(span.pid)
            events.append({
                "ph": "M", "name": "process_name", "pid": span.pid, "tid": 0,
                "args": {"name": f"repro pid {span.pid}"},
            })
        args = {k: v for k, v in span.attrs.items()}
        args["trace_id"] = span.trace_id
        args["span_id"] = span.span_id
        if span.parent_id:
            args["parent_id"] = span.parent_id
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "pid": span.pid,
            "tid": span.thread or "main",
            "ts": span.start_us,
            "dur": max(span.duration_us, 1),
            "args": args,
        })
        for event_name, offset_us in span.events:
            events.append({
                "ph": "i",
                "name": event_name,
                "cat": span.name.split(".", 1)[0],
                "pid": span.pid,
                "tid": span.thread or "main",
                "ts": span.start_us + offset_us,
                "s": "t",
            })
    return events


def export_chrome_trace(
    path,
    spans: Optional[Sequence[Span]] = None,
    tracer: Optional[Tracer] = None,
) -> dict:
    """Write a ``chrome://tracing`` / Perfetto JSON file; returns the doc.

    With no explicit ``spans``, exports everything the (given or global)
    tracer collected.
    """
    if spans is None:
        spans = (tracer or get_tracer()).spans()
    doc = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc


def validate_chrome_trace(doc: dict) -> List[str]:
    """Structural validation (the CI obs-smoke contract); returns problems.

    Checks: non-empty, every event well-formed, and spans *nest* — every
    ``parent_id`` resolves to a span in the document, and no span is its
    own ancestor.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        problems.append("no complete ('X') span events")
    ids: Dict[str, dict] = {}
    for event in spans:
        for key in ("name", "pid", "tid", "ts", "dur"):
            if key not in event:
                problems.append(f"span event missing {key!r}: {event}")
        span_id = event.get("args", {}).get("span_id")
        if span_id:
            ids[span_id] = event
    for event in spans:
        args = event.get("args", {})
        parent_id = args.get("parent_id")
        if parent_id and parent_id not in ids:
            problems.append(
                f"span {args.get('span_id')} ({event.get('name')}) has "
                f"unresolved parent {parent_id}"
            )
    # Cycle check: walk each span to a root, bounded by the span count.
    for span_id in ids:
        seen = set()
        node = span_id
        while node is not None:
            if node in seen:
                problems.append(f"parent cycle through span {span_id}")
                break
            seen.add(node)
            node = ids[node]["args"].get("parent_id") if node in ids else None
    return problems


def span_tree(spans: Sequence[Span]) -> List[dict]:
    """Roots of the parent/child forest as nested dicts.

    Each node is ``{"span": Span, "children": [...]}``; children sort by
    start time.  Spans whose parent is absent (sampled out, or produced
    before tracing was enabled) are treated as roots.
    """
    by_id = {span.span_id: {"span": span, "children": []} for span in spans}
    roots: List[dict] = []
    for span in spans:
        node = by_id[span.span_id]
        parent = by_id.get(span.parent_id) if span.parent_id else None
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    def sort(nodes: List[dict]) -> None:
        nodes.sort(key=lambda n: n["span"].start_us)
        for node in nodes:
            sort(node["children"])
    sort(roots)
    return roots


#: Attributes worth showing in the latency table, in display order.
_REPORT_ATTRS = (
    "rows_scanned", "rows", "chunk", "chunks", "chunks_walked",
    "chunks_cached", "chunks_skipped", "batch_size", "group_size", "role",
    "cache", "worker", "signature_kind", "epoch", "tables", "error",
)


def _format_attrs(span: Span) -> str:
    parts = [
        f"{key}={span.attrs[key]}" for key in _REPORT_ATTRS
        if key in span.attrs
    ]
    return "  ".join(parts)


def report(
    spans: Optional[Sequence[Span]] = None,
    trace_id: Optional[str] = None,
    tracer: Optional[Tracer] = None,
) -> str:
    """A human latency-breakdown table of one or more traces.

    One line per span, indented by depth, with wall duration, the share
    of its root span, and load-bearing attributes.  Pass ``trace_id`` to
    restrict to one trace; by default every collected trace renders, one
    tree after another.
    """
    if spans is None:
        spans = (tracer or get_tracer()).spans(trace_id)
    elif trace_id is not None:
        spans = [s for s in spans if s.trace_id == trace_id]
    if not spans:
        return "(no spans collected — is tracing enabled?)"
    lines = [
        f"{'span':<46} {'wall ms':>10} {'% root':>7}  detail",
        "-" * 92,
    ]

    def emit(node: dict, depth: int, root_us: int) -> None:
        span = node["span"]
        label = ("  " * depth) + span.name
        share = 100.0 * span.duration_us / root_us if root_us else 100.0
        lines.append(
            f"{label:<46} {span.duration_us / 1000.0:>10.3f} "
            f"{share:>6.1f}%  {_format_attrs(span)}"
        )
        for child in node["children"]:
            emit(child, depth + 1, root_us)

    for root in span_tree(spans):
        root_us = max(root["span"].duration_us, 1)
        emit(root, 0, root_us)
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
