"""The process-wide metrics registry: counters, gauges, histograms.

Every layer of the pipeline used to keep private counters with private
percentile code (``ServingCore.stats``, ``FleetRouter.router_stats``, the
join caches); :class:`MetricsRegistry` is the one accounting surface they
now share.  Three instrument kinds:

* :class:`Counter` — monotonic, lock-protected ``add``; a
  Barrier-hammering concurrency test pins that increments are never lost.
* :class:`Gauge` — last-write-wins point value.
* :class:`Histogram` — a bounded observation window with p50/p95/p99 at
  snapshot time.  The percentile implementation is *the* one the serving
  layers report through (``numpy.percentile`` over the window, linear
  interpolation), so every layer's p50/p95 agrees by construction.

Registries also accept *collectors* — callables returning a dict — for
stats that already live elsewhere (the join caches' monotonic counters);
``snapshot()`` folds them in, so one call truthfully describes the whole
process.  :func:`registry` returns the process-wide default instance.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_rss_bytes",
    "peak_rss_bytes",
    "registry",
    "reset_peak_rss",
    "set_registry",
    "update_process_gauges",
]


class Counter:
    """A monotonic counter; ``add`` is atomic under the instrument lock."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def add(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    inc = add

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value (queue depth, workers alive, ...)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Bounded-window observations with percentile summaries.

    ``window`` bounds memory exactly like the serving layers' old latency
    deques did; ``count``/``total`` stay monotonic over the full history.
    ``percentile`` matches ``np.percentile`` over the current window —
    the single implementation every stats surface now reports through.
    """

    __slots__ = ("name", "window", "_lock", "_values", "_count", "_total",
                 "_min", "_max")

    def __init__(self, name: str, window: int = 2048):
        if window < 1:
            raise ValueError(f"Histogram window must be >= 1, got {window}")
        self.name = name
        self.window = window
        self._lock = threading.Lock()
        self._values: deque = deque(maxlen=window)
        self._count = 0
        self._total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._values.append(value)
            self._count += 1
            self._total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def values(self) -> List[float]:
        """The current observation window (oldest first)."""
        with self._lock:
            return list(self._values)

    def percentile(self, q: float) -> float:
        """``np.percentile`` of the window; 0.0 when empty (as the old
        hand-rolled stats paths reported)."""
        with self._lock:
            if not self._values:
                return 0.0
            values = np.asarray(self._values, dtype=float)
        return float(np.percentile(values, q))

    def mean(self) -> float:
        with self._lock:
            if not self._values:
                return 0.0
            return float(np.mean(np.asarray(self._values, dtype=float)))

    def summary(self) -> dict:
        with self._lock:
            values = np.asarray(self._values, dtype=float)
            count, total = self._count, self._total
            vmin, vmax = self._min, self._max
        out = {
            "count": count,
            "total": total,
            "min": vmin if vmin is not None else 0.0,
            "max": vmax if vmax is not None else 0.0,
            "mean": float(np.mean(values)) if len(values) else 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }
        if len(values):
            p50, p95, p99 = np.percentile(values, [50, 95, 99])
            out.update(p50=float(p50), p95=float(p95), p99=float(p99))
        return out

    def snapshot(self) -> dict:
        return self.summary()


class MetricsRegistry:
    """Named instruments plus external collectors, one truthful snapshot.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create (the same
    name always returns the same instrument — layers share instruments by
    naming convention, e.g. ``serving.latency_ms``).  ``histogram``
    re-requested with a different window keeps the original instrument:
    the window is a creation-time property.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: Dict[str, Callable[[], dict]] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str, window: int = 2048) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, window)
            return instrument

    def register_collector(self, name: str, collect: Callable[[], dict]) -> None:
        """Fold an external stats source (e.g. a cache's counters) into
        snapshots under ``name``.  Re-registering replaces the collector —
        a reloaded engine's caches supersede the old engine's."""
        with self._lock:
            self._collectors[name] = collect

    def unregister_collector(self, name: str) -> None:
        with self._lock:
            self._collectors.pop(name, None)

    def snapshot(self) -> dict:
        """Everything, as plain JSON-ready data."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            collectors = dict(self._collectors)
        out = {
            "counters": {n: c.snapshot() for n, c in counters.items()},
            "gauges": {n: g.snapshot() for n, g in gauges.items()},
            "histograms": {n: h.snapshot() for n, h in histograms.items()},
        }
        collected = {}
        for name, collect in collectors.items():
            try:
                collected[name] = collect()
            except Exception as exc:  # a broken collector must not sink stats
                collected[name] = {"error": f"{type(exc).__name__}: {exc}"}
        if collected:
            out["collected"] = collected
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True,
                          default=str)

    def reset(self) -> None:
        """Drop every instrument and collector (tests and process reuse)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._collectors.clear()


# ----------------------------------------------------------------------
# Process memory accounting (Linux /proc; 0 where unavailable)
# ----------------------------------------------------------------------

def _proc_status_kb(field: str) -> int:
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith(field + ":"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return 0


def current_rss_bytes() -> int:
    """The process's resident set size right now (``VmRSS``)."""
    return _proc_status_kb("VmRSS") * 1024


def peak_rss_bytes() -> int:
    """The process's peak resident set size (``VmHWM``) since start or the
    last :func:`reset_peak_rss`."""
    return _proc_status_kb("VmHWM") * 1024


def reset_peak_rss() -> bool:
    """Reset the kernel's peak-RSS watermark to the current RSS.

    Writes ``5`` to ``/proc/self/clear_refs`` (Linux ≥ 4.0), which lets a
    benchmark measure the peak of one *phase* rather than of the whole
    process lifetime.  Returns whether the reset took effect.
    """
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
        return True
    except OSError:
        return False


def update_process_gauges(reg: Optional[MetricsRegistry] = None) -> dict:
    """Refresh the ``process.*`` memory gauges and return their values."""
    reg = reg if reg is not None else registry()
    values = {
        "process.rss_bytes": float(current_rss_bytes()),
        "process.peak_rss_bytes": float(peak_rss_bytes()),
    }
    for name, value in values.items():
        reg.gauge(name).set(value)
    return values


_default = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default


def set_registry(reg: MetricsRegistry) -> MetricsRegistry:
    """Replace the process default (tests isolate themselves this way)."""
    global _default
    _default = reg
    return reg
