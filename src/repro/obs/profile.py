"""Kernel-level profiling for the compiled runtime.

Per-span tracing is the wrong tool inside :mod:`repro.runtime.kernels` —
a single chunk walk issues thousands of dense/softmax calls, and a span
per GEMM would cost more than the GEMM.  The :class:`KernelProfiler`
instead *accumulates*: per kernel name, the call count, total wall time
and rows processed, under one lock, queried once at the end.

Off by default: the kernels check a module attribute
(``profile.ACTIVE``) and skip both clock reads when it is ``None`` — the
same near-zero no-op discipline as the tracer, asserted by
``benchmarks/bench_obs.py``.  Enable with :func:`profile_kernels` (a
context manager) or :func:`enable_kernel_profiling`; the active profiler
registers itself as the ``kernels`` collector on the process metrics
registry, so ``repro.obs.registry().snapshot()`` includes it.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from .metrics import registry

__all__ = ["KernelProfiler", "profile_kernels", "enable_kernel_profiling",
           "disable_kernel_profiling", "kernel_profiler"]


class KernelProfiler:
    """Thread-safe per-kernel accumulation: calls, wall time, rows."""

    __slots__ = ("_lock", "_stats")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats: Dict[str, Dict[str, float]] = {}

    def record(self, name: str, elapsed_ns: int, rows: int = 0) -> None:
        with self._lock:
            entry = self._stats.get(name)
            if entry is None:
                entry = self._stats[name] = {
                    "calls": 0, "total_ms": 0.0, "rows": 0,
                }
            entry["calls"] += 1
            entry["total_ms"] += elapsed_ns / 1e6
            entry["rows"] += rows

    def snapshot(self) -> dict:
        with self._lock:
            return {
                name: dict(entry) for name, entry in self._stats.items()
            }

    def report(self) -> str:
        """Kernel table sorted by total time, heaviest first."""
        snap = self.snapshot()
        lines = [
            f"{'kernel':<32} {'calls':>10} {'total ms':>12} {'rows':>14}",
            "-" * 72,
        ]
        for name, entry in sorted(
            snap.items(), key=lambda kv: -kv[1]["total_ms"]
        ):
            lines.append(
                f"{name:<32} {int(entry['calls']):>10} "
                f"{entry['total_ms']:>12.3f} {int(entry['rows']):>14}"
            )
        return "\n".join(lines) + "\n"

    def clear(self) -> None:
        with self._lock:
            self._stats.clear()


#: The kernels' single check: ``None`` means profiling is off (fast path).
ACTIVE: Optional[KernelProfiler] = None


def kernel_profiler() -> Optional[KernelProfiler]:
    return ACTIVE


def enable_kernel_profiling(
    profiler: Optional[KernelProfiler] = None,
) -> KernelProfiler:
    global ACTIVE
    ACTIVE = profiler if profiler is not None else (ACTIVE or KernelProfiler())
    registry().register_collector("kernels", ACTIVE.snapshot)
    return ACTIVE


def disable_kernel_profiling() -> None:
    global ACTIVE
    ACTIVE = None
    registry().unregister_collector("kernels")


class profile_kernels:
    """``with profile_kernels() as prof:`` — scoped kernel accumulation."""

    def __init__(self) -> None:
        self.profiler = KernelProfiler()
        self._previous: Optional[KernelProfiler] = None

    def __enter__(self) -> KernelProfiler:
        global ACTIVE
        self._previous = ACTIVE
        ACTIVE = self.profiler
        registry().register_collector("kernels", self.profiler.snapshot)
        return self.profiler

    def __exit__(self, *_exc) -> None:
        global ACTIVE
        ACTIVE = self._previous
        if self._previous is not None:
            registry().register_collector("kernels", self._previous.snapshot)
        else:
            registry().unregister_collector("kernels")


def record_kernel(name: str, started_ns: int, rows: int = 0) -> None:
    """Helper the kernels call on their instrumented (slow) path."""
    profiler = ACTIVE
    if profiler is not None:
        profiler.record(name, time.perf_counter_ns() - started_ns, rows)
