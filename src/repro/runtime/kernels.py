"""Shared layer kernels for the compiled inference and fused training paths.

One kernel set, two consumers: :mod:`repro.runtime.compiled` evaluates
graph-free forwards for the completion hot path, and
:mod:`repro.runtime.training` runs hand-derived fused forward+backward
passes for ``ReStore.fit()``.  Keeping the dense/embedding/softmax
primitives in one module guarantees that the two paths cannot drift — the
float32 matmul a compiled forward executes is the same line of code the
training kernel differentiates.

Everything here operates on plain numpy arrays; nothing touches the
autograd :class:`~repro.nn.tensor.Tensor`.  Backward helpers return (or
accumulate into) gradient arrays of the same dtype as their inputs, so the
fused trainer can run in float32 (the default) or float64 (the gradcheck
oracle configuration).
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..obs import profile as _profile

#: Fixed row-tile size of the compiled inference path.  Dense transforms run
#: over zero-padded tiles of this many rows so a row's activations are
#: bitwise identical no matter how the batch around it is chunked.
TILE = 128

#: Default execution dtype of both compiled inference and fused training.
DTYPE = np.float32


def tile_apply(x: np.ndarray, fn: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
    """Apply ``fn`` over fixed-size row tiles of ``x`` (zero-padded).

    ``fn`` must be row-local (each output row a function of the matching
    input row only) — true for dense layers and elementwise nonlinearities.
    """
    n = len(x)
    if n == 0:
        probe = fn(np.zeros((TILE, x.shape[1]), dtype=DTYPE))
        return np.zeros((0, probe.shape[1]), dtype=probe.dtype)
    pieces: List[np.ndarray] = []
    for start in range(0, n, TILE):
        block = x[start:start + TILE]
        if len(block) < TILE:
            padded = np.zeros((TILE, x.shape[1]), dtype=DTYPE)
            padded[: len(block)] = block
            pieces.append(fn(padded)[: len(block)])
        else:
            pieces.append(fn(block))
    return np.concatenate(pieces, axis=0)


class DenseKernel:
    """A pure-numpy affine + optional ReLU snapshot of a (masked) linear.

    Inference-side kernel: the weight is stored pre-masked (for MADE layers)
    and pre-cast, so ``__call__`` is a single GEMM plus elementwise tail.
    """

    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray],
                 relu: bool = False):
        self.weight = np.ascontiguousarray(weight, dtype=DTYPE)
        self.bias = None if bias is None else bias.astype(DTYPE)
        self.relu = relu

    def __call__(self, x: np.ndarray) -> np.ndarray:
        # Kernel profiling (repro.obs.profile) accumulates instead of
        # tracing: one attribute check when off, two clock reads when on.
        profiler = _profile.ACTIVE
        started = time.perf_counter_ns() if profiler is not None else 0
        out = x @ self.weight
        if self.bias is not None:
            out += self.bias
        if self.relu:
            np.maximum(out, 0.0, out=out)
        if profiler is not None:
            profiler.record(
                "dense", time.perf_counter_ns() - started, rows=len(x)
            )
        return out


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    profiler = _profile.ACTIVE
    started = time.perf_counter_ns() if profiler is not None else 0
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    out = exp / exp.sum(axis=-1, keepdims=True)
    if profiler is not None:
        profiler.record(
            "softmax", time.perf_counter_ns() - started, rows=len(logits)
        )
    return out


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(softmax(logits))`` along the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def nll_rows(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-row negative log-likelihood of integer ``targets`` (forward only)."""
    log_probs = log_softmax(logits)
    return -log_probs[np.arange(len(targets)), np.asarray(targets)]


# ----------------------------------------------------------------------
# Training-side fused primitives
# ----------------------------------------------------------------------

def embedding_backward(
    grad_weight: np.ndarray, indices: np.ndarray, d_out: np.ndarray
) -> None:
    """Scatter-add ``d_out`` rows into ``grad_weight`` at ``indices``.

    The adjoint of a row gather; duplicate indices accumulate, matching the
    autograd engine's ``np.add.at`` semantics exactly.
    """
    np.add.at(grad_weight, np.asarray(indices), d_out)


def segment_sum_forward(
    values: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Sum ``values`` rows into ``num_segments`` buckets (deep-sets pooling)."""
    out = np.zeros((num_segments, values.shape[1]), dtype=values.dtype)
    np.add.at(out, segment_ids, values)
    return out


def segment_sum_backward(d_out: np.ndarray, segment_ids: np.ndarray) -> np.ndarray:
    """Adjoint of :func:`segment_sum_forward`: broadcast back to the rows."""
    return d_out[segment_ids]


def softmax_nll_grad(
    logits: np.ndarray,
    targets: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray]:
    """Fused weighted-mean softmax cross-entropy: loss and exact gradient.

    Implements one MADE output head's contribution to the training loss,

    ``L = -(sum_i w_i * log p_i[t_i]) / sum_i w_i``

    (uniform weights when ``weights`` is None), returning ``(L, dL/dlogits)``
    in a single pass — the softmax computed for the loss is reused for the
    gradient, which is the main saving over the autograd graph.
    """
    targets = np.asarray(targets)
    rows = np.arange(len(targets))
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    norm = exp.sum(axis=-1, keepdims=True)
    picked = shifted[rows, targets] - np.log(norm[:, 0])
    if weights is None:
        w = np.full(len(targets), 1.0 / max(len(targets), 1), dtype=logits.dtype)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("softmax_nll_grad weights must have positive sum")
        w = (weights / total).astype(logits.dtype)
    loss = float(-(w * picked).sum())
    d_logits = exp / norm
    d_logits[rows, targets] -= 1.0
    d_logits *= w[:, None]
    return loss, d_logits


class MultiheadNLLKernel:
    """All MADE output heads' weighted softmax-NLL in one fused pass.

    Equivalent to calling :func:`softmax_nll_grad` per head on
    ``logits[:, offsets[i]:offsets[i+1]]`` and summing, but expressed over
    the concatenated logits so the cost is a handful of full-width array
    ops instead of ``num_heads`` small ones — the inner loop of fused MADE
    training.  Per-head sums and head→column broadcasts go through a cached
    0/1 segment-indicator matrix (one small GEMM each), which beats both
    ``np.ufunc.reduceat`` and fancy-index expansion at mini-batch sizes.
    """

    def __init__(self, offsets: np.ndarray, dtype=DTYPE):
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.starts = self.offsets[:-1]
        num_heads = len(self.starts)
        width = int(self.offsets[-1])
        # segments[i, k] = 1 iff column k belongs to head i.
        self.segments = np.zeros((num_heads, width), dtype=dtype)
        for i, (start, stop) in enumerate(zip(self.offsets[:-1], self.offsets[1:])):
            self.segments[i, start:stop] = 1.0

    def __call__(
        self,
        logits: np.ndarray,
        targets: np.ndarray,
        weight_matrix: np.ndarray,
    ) -> Tuple[float, np.ndarray]:
        """``(loss, dL/dlogits)`` of the summed weighted-mean head losses.

        Parameters
        ----------
        logits:
            ``(batch, sum(K_i))`` concatenated per-head scores.  The buffer
            is reused for the gradient — the caller owns it and must not
            read the raw scores afterwards.
        targets:
            ``(batch, num_heads)`` integer labels, 0-based within each head.
        weight_matrix:
            ``(batch, num_heads)`` *pre-normalized* per-example weights —
            each column must sum to that head's weighted-mean normalizer
            (1.0 for a plain mean).
        """
        profiler = _profile.ACTIVE
        started = time.perf_counter_ns() if profiler is not None else 0
        maxes = np.maximum.reduceat(logits, self.starts, axis=1)
        logits -= maxes @ self.segments                        # shifted
        rows = np.arange(len(logits))[:, None]
        target_cols = self.starts[None, :] + np.asarray(targets)
        target_shift = logits[rows, target_cols]
        np.exp(logits, out=logits)                             # exp(shifted)
        sums = logits @ self.segments.T
        picked = target_shift - np.log(sums)
        loss = float(-(weight_matrix * picked).sum())
        # (softmax - onehot) * w == (exp - onehot * sum) * (w / sum): one
        # fused rescale instead of separate normalize and weight passes.
        d_logits = logits
        d_logits[rows, target_cols] -= sums
        scale = (weight_matrix / sums).astype(logits.dtype, copy=False)
        d_logits *= scale @ self.segments
        if profiler is not None:
            profiler.record(
                "multihead_nll", time.perf_counter_ns() - started,
                rows=len(targets),
            )
        return loss, d_logits


def multihead_softmax_nll_grad(
    logits: np.ndarray,
    offsets: np.ndarray,
    targets: np.ndarray,
    weight_matrix: np.ndarray,
) -> Tuple[float, np.ndarray]:
    """One-shot convenience wrapper around :class:`MultiheadNLLKernel`."""
    return MultiheadNLLKernel(offsets, dtype=logits.dtype)(
        logits, targets, weight_matrix
    )


def dense_scatter(
    indices: np.ndarray, d_out: np.ndarray, num_rows: int
) -> np.ndarray:
    """Scatter-add ``d_out`` rows into a fresh ``(num_rows, dim)`` array.

    Equivalent to :func:`embedding_backward` on zeros, but built from one
    ``np.bincount`` per output column — for the batch-sized scatters of
    MADE embedding gradients this runs an order of magnitude faster than
    ``np.add.at``, whose per-element dispatch dominates at these sizes.
    """
    indices = np.asarray(indices)
    out = np.empty((num_rows, d_out.shape[1]), dtype=d_out.dtype)
    for column in range(d_out.shape[1]):
        out[:, column] = np.bincount(
            indices, weights=d_out[:, column], minlength=num_rows
        )
    return out
