"""A bounded LRU cache for completed incompleteness joins (paper §4.5).

The engine reuses a completed join across every query that selects the same
model, but completed joins can dwarf the database itself (one row per
evidence combination).  The seed engine kept them in an unbounded dict;
:class:`JoinCache` bounds the footprint with least-recently-used eviction,
supports explicit invalidation on re-``fit`` (the models behind a cached
join changed), and surfaces hit/miss/eviction counters so operators can size
the cache against their workload.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Tuple


@dataclass
class CacheStats:
    """Monotonic counters describing cache behaviour since construction."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class JoinCache:
    """LRU cache keyed by the full identity of a completed join.

    Keys are ``(kind, path_tables, seed, approximate_replacement,
    inference_backend)`` — every input that changes the bitwise content of a
    completed join (the float32 and float64 backends round sampling CDFs
    differently, so the backend is part of the identity).  ``get`` refreshes
    recency and counts hits/misses; ``contains`` is a pure probe (no stats,
    no reordering) for provenance reporting.

    All operations are thread-safe: the completion service
    (:mod:`repro.serving`) answers concurrent micro-batches on worker
    threads that share one engine, so bookkeeping and eviction are guarded
    by a lock.  The lock serializes cache *accounting*, not join
    computation — callers that must avoid duplicate joins for one key
    coalesce at a higher level (single-flight in the service).
    """

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError("JoinCache capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def contains(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Tuple[Hashable, ...]:
        """Keys from least- to most-recently used (for introspection)."""
        with self._lock:
            return tuple(self._entries.keys())

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (models were re-fitted; cached joins are stale)."""
        with self._lock:
            if self._entries:
                self.stats.invalidations += 1
            self._entries.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = CacheStats()
