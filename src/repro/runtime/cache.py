"""Bounded LRU caches for completed and partial incompleteness joins (§4.5).

The engine reuses a completed join across every query that selects the same
model, but completed joins can dwarf the database itself (one row per
evidence combination).  The seed engine kept them in an unbounded dict;
:class:`JoinCache` bounds the footprint with least-recently-used eviction,
supports explicit invalidation on re-``fit`` (the models behind a cached
join changed), and surfaces hit/miss/eviction counters so operators can size
the cache against their workload.

:class:`PartialJoinCache` is the budget-aware layer underneath: it caches
*chunk outputs* of the incompleteness join keyed by ``(join signature,
predicate fingerprint, chunk bounds)``.  Chunk outputs are pure functions of
those keys, so overlapping queries reuse each other's completed chunks, a
budgeted (partial) run leaves chunks behind that a later full-join request
tops up instead of starting over, and a chunk walked under a *looser*
predicate set serves a stricter query after post-hoc filtering
(subset-fingerprint reuse).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Set, Tuple


@dataclass
class CacheStats:
    """Monotonic counters describing cache behaviour since construction."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class JoinCache:
    """LRU cache keyed by the full identity of a completed join.

    Keys are ``(kind, path_tables, seed, approximate_replacement,
    inference_backend)`` — every input that changes the bitwise content of a
    completed join (the float32 and float64 backends round sampling CDFs
    differently, so the backend is part of the identity).  ``get`` refreshes
    recency and counts hits/misses; ``contains`` is a pure probe (no stats,
    no reordering) for provenance reporting.

    All operations are thread-safe: the completion service
    (:mod:`repro.serving`) answers concurrent micro-batches on worker
    threads that share one engine, so bookkeeping and eviction are guarded
    by a lock.  The lock serializes cache *accounting*, not join
    computation — callers that must avoid duplicate joins for one key
    coalesce at a higher level (single-flight in the service).
    """

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError("JoinCache capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def contains(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Tuple[Hashable, ...]:
        """Keys from least- to most-recently used (for introspection)."""
        with self._lock:
            return tuple(self._entries.keys())

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (models were re-fitted; cached joins are stale)."""
        with self._lock:
            if self._entries:
                self.stats.invalidations += 1
            self._entries.clear()

    def evict(self, key: Hashable) -> bool:
        """Drop one entry by key, counting the eviction truthfully.

        Returns whether the key was present.  Counters are monotonic —
        partial invalidation must never look like a stats reset.
        """
        with self._lock:
            if key not in self._entries:
                return False
            del self._entries[key]
            self.stats.evictions += 1
            self.stats.invalidations += 1
            return True

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = CacheStats()

    def register_metrics(self, reg, name: str = "join_cache") -> None:
        """Expose the live counters as a collector on a ``MetricsRegistry``.

        The collector closes over ``self`` (not the stats object), so it
        keeps reporting truthfully after ``reset_stats`` swaps the stats.
        """
        reg.register_collector(name, lambda: self.stats.as_dict())


@dataclass
class PartialCacheStats(CacheStats):
    """Partial-cache counters; ``subset_hits`` are hits served from a chunk
    walked under a looser predicate set (caller re-filters the rows)."""

    subset_hits: int = 0

    def as_dict(self) -> dict:
        out = super().as_dict()
        out["subset_hits"] = self.subset_hits
        return out


class PartialJoinCache:
    """Chunk-granular LRU cache of partial incompleteness-join results.

    One entry is one chunk output (the walked rows of a root-row range plus
    its parked dangling-FK side state), keyed by::

        (join signature, chunk grid, chunk bounds, predicate fingerprints)

    * The *join signature* pins everything that changes bitwise content
      (model identity, path, seed, inference backend) — same key the
      engine's :class:`JoinCache` uses.
    * The *chunk grid* (the full task list the bounds came from) guards
      against mixing chunkings: bounds are only comparable within one grid.
    * The *predicate fingerprints* (a frozenset of canonical filter
      identities, see :meth:`repro.query.ast.Filter.fingerprint`) identify
      which pushed filters pruned the chunk's rows.

    :meth:`lookup` serves an exact fingerprint match first, then falls back
    to any cached entry whose fingerprints are a **subset** of the request:
    a chunk walked under fewer filters contains a superset of the rows, and
    pruning is pure row selection, so the caller obtains the exact stricter
    chunk by applying the leftover filters post-hoc.  The returned
    fingerprints tell the caller which filters are still outstanding.
    Parked side state is plan-independent by planner construction, so it is
    reusable as-is in both cases.

    Capacity is counted in chunks.  Thread-safe like :class:`JoinCache`;
    invalidation drops everything (models were re-fitted).
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("PartialJoinCache capacity must be >= 1")
        self.capacity = capacity
        self.stats = PartialCacheStats()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        # base key (signature, grid, bounds) -> fingerprint sets present
        self._by_base: Dict[Hashable, Set[FrozenSet]] = {}
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def _base_key(signature: Hashable, grid: Tuple, task: Tuple) -> Hashable:
        return (signature, grid, task)

    def has_entries(self, signature: Hashable, grid: Tuple) -> bool:
        """Pure probe: any chunk cached for this join signature and grid?

        Lets a full-join request decide whether a top-up from partial
        chunks is possible without spending per-chunk miss counters.
        """
        with self._lock:
            return any(
                base[0] == signature and base[1] == grid
                for base in self._by_base
            )

    def lookup(
        self,
        signature: Hashable,
        grid: Tuple,
        task: Tuple,
        fingerprints: FrozenSet,
    ) -> Optional[Tuple[Any, FrozenSet]]:
        """The cached chunk for ``task`` under ``fingerprints``, if any.

        Returns ``(chunk output, cached fingerprints)``; the second element
        equals ``fingerprints`` on an exact hit and is a proper subset on a
        looser-plan hit (the caller must apply the missing filters).  Among
        several subset candidates the largest wins — fewest rows left to
        re-filter.
        """
        base = self._base_key(signature, grid, task)
        with self._lock:
            candidates = self._by_base.get(base)
            if candidates:
                if fingerprints in candidates:
                    key = (base, fingerprints)
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return self._entries[key], fingerprints
                subsets: List[FrozenSet] = [
                    fps for fps in candidates if fps < fingerprints
                ]
                if subsets:
                    best = max(subsets, key=len)
                    key = (base, best)
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    self.stats.subset_hits += 1
                    return self._entries[key], best
            self.stats.misses += 1
            return None

    def put(
        self,
        signature: Hashable,
        grid: Tuple,
        task: Tuple,
        fingerprints: FrozenSet,
        output: Any,
    ) -> None:
        # Spilled chunk outputs live in a run-scoped directory that is
        # gone after assembly — caching the handle would serve dangling
        # paths.  Such outputs declare themselves non-cacheable.
        if not getattr(output, "cacheable", True):
            return
        base = self._base_key(signature, grid, task)
        key = (base, fingerprints)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = output
                return
            self._entries[key] = output
            self._by_base.setdefault(base, set()).add(fingerprints)
            while len(self._entries) > self.capacity:
                old_key, _ = self._entries.popitem(last=False)
                old_base, old_fps = old_key
                remaining = self._by_base.get(old_base)
                if remaining is not None:
                    remaining.discard(old_fps)
                    if not remaining:
                        del self._by_base[old_base]
                self.stats.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (models were re-fitted; cached chunks are stale)."""
        with self._lock:
            if self._entries:
                self.stats.invalidations += 1
            self._entries.clear()
            self._by_base.clear()

    def invalidate_delta(
        self,
        signature: Hashable,
        tasks: Optional[FrozenSet[Tuple[int, int]]] = None,
    ) -> int:
        """Evict the chunks a mutation delta made stale; count truthfully.

        Drops every entry under ``signature`` whose chunk bounds are in
        ``tasks`` — or *all* of the signature's entries when ``tasks`` is
        ``None`` (grid change / non-root mutation).  Entries for other
        signatures, and hit/miss history, are untouched: each removal
        increments ``evictions``, and the call as a whole counts one
        ``invalidation`` when anything was dropped (the PR 4 regression
        class was counters silently resetting here).

        Returns the number of chunk entries evicted.
        """
        with self._lock:
            victims = [
                (base, fps)
                for base, fp_sets in self._by_base.items()
                if base[0] == signature
                and (tasks is None or base[2] in tasks)
                for fps in fp_sets
            ]
            for key in victims:
                del self._entries[key]
            for base in {base for base, _ in victims}:
                del self._by_base[base]
            if victims:
                self.stats.evictions += len(victims)
                self.stats.invalidations += 1
            return len(victims)

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = PartialCacheStats()

    def register_metrics(self, reg, name: str = "partial_cache") -> None:
        """Expose the live counters as a collector on a ``MetricsRegistry``."""
        reg.register_collector(name, lambda: self.stats.as_dict())
