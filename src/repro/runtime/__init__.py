"""Execution runtime: the compiled substrate of both hot paths.

The float64 autograd engine (:mod:`repro.nn`) remains the reference oracle;
both completion (inference) and ``fit`` (training) execute here instead:

* :mod:`~repro.runtime.kernels` — the shared dense/embedding/softmax layer
  kernels both compiled inference and fused training are built from,
* :mod:`~repro.runtime.compiled` — graph-free float32 forwards for MADE and
  deep-sets modules, executed over fixed-size row tiles so results are
  independent of batch chunking,
* :mod:`~repro.runtime.training` — hand-derived fused forward+backward
  kernels over flat float32 parameter buffers, the default ``fit`` backend,
* :mod:`~repro.runtime.rng` — counter-based per-row random streams, making
  sampling a pure function of a row's lineage rather than batch order,
* :mod:`~repro.runtime.cache` — a bounded LRU cache for completed joins with
  hit/miss/eviction accounting,
* :mod:`~repro.runtime.parallel` — serial/thread/process executors that fan
  chunked work out over workers with deterministic, ordered merging.
"""

from . import kernels, rng
from .cache import CacheStats, JoinCache, PartialCacheStats, PartialJoinCache
from .compiled import (
    TILE,
    CompiledDense,
    CompiledMADE,
    CompiledTreeEncoder,
    compile_module,
)
from .training import (
    FusedResidualMADE,
    FusedTrainStepper,
    FusedTreeEncoder,
    ParameterBuffer,
)
from .parallel import (
    PARALLEL_BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_chunk_size,
    get_executor,
)
from .rng import chunk_slices

__all__ = [
    "kernels",
    "rng",
    "CacheStats",
    "JoinCache",
    "PartialCacheStats",
    "PartialJoinCache",
    "ParameterBuffer",
    "FusedResidualMADE",
    "FusedTreeEncoder",
    "FusedTrainStepper",
    "TILE",
    "CompiledDense",
    "CompiledMADE",
    "CompiledTreeEncoder",
    "compile_module",
    "chunk_slices",
    "PARALLEL_BACKENDS",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "default_chunk_size",
]
