"""Inference runtime: the execution substrate of the completion hot path.

Training uses the float64 autograd engine (:mod:`repro.nn`); everything the
incompleteness join does at completion time routes through this package
instead:

* :mod:`~repro.runtime.compiled` — graph-free float32 forwards for MADE and
  deep-sets modules, executed over fixed-size row tiles so results are
  independent of batch chunking,
* :mod:`~repro.runtime.rng` — counter-based per-row random streams, making
  sampling a pure function of a row's lineage rather than batch order,
* :mod:`~repro.runtime.cache` — a bounded LRU cache for completed joins with
  hit/miss/eviction accounting,
* :mod:`~repro.runtime.parallel` — serial/thread/process executors that fan
  chunked work out over workers with deterministic, ordered merging.
"""

from . import rng
from .cache import CacheStats, JoinCache
from .compiled import (
    TILE,
    CompiledDense,
    CompiledMADE,
    CompiledTreeEncoder,
    compile_module,
)
from .parallel import (
    PARALLEL_BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_chunk_size,
    get_executor,
)
from .rng import chunk_slices

__all__ = [
    "rng",
    "CacheStats",
    "JoinCache",
    "TILE",
    "CompiledDense",
    "CompiledMADE",
    "CompiledTreeEncoder",
    "compile_module",
    "chunk_slices",
    "PARALLEL_BACKENDS",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "default_chunk_size",
]
