"""Counter-based random streams for chunk-invariant sampling.

The incompleteness join synthesizes tuples with autoregressive sampling, and
the runtime executes it over row chunks (bounded memory).  A shared
``np.random.Generator`` would make every sampled value depend on how rows are
batched — chunked and unchunked runs would diverge.  Instead, every walk row
carries its own *stream id* (derived from its lineage: the root evidence row
plus the ordinal of every child expansion along the way) and a *draw
counter*.  A uniform draw is then the pure function

    u = splitmix64(seed ⊕ stream ⊕ counter)  →  [0, 1)

so any partition of the rows into chunks consumes exactly the same
randomness per row.  All operations are vectorized over ``uint64`` arrays.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

# Lineage tags keep the streams of different derivation sites disjoint.
TAG_CHILD = np.uint64(0x1B873593C2B2AE35)    # existing child joined in a fan-out hop
TAG_SYNTH = np.uint64(0x9E3779B185EBCA87)    # synthesized child of a fan-out hop
TAG_KEY = np.uint64(0xC2B2AE3D27D4EB4F)      # shared parent keyed by a dangling FK


def _splitmix64(z: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over uint64 arrays."""
    z = (z + _GOLDEN).astype(np.uint64)
    z = ((z ^ (z >> np.uint64(30))) * _MIX1).astype(np.uint64)
    z = ((z ^ (z >> np.uint64(27))) * _MIX2).astype(np.uint64)
    return (z ^ (z >> np.uint64(31))).astype(np.uint64)


def fold_seed(seed: int) -> np.uint64:
    """Condition an arbitrary integer seed into a well-mixed 64-bit word."""
    return _splitmix64(np.array([np.uint64(seed & 0xFFFFFFFFFFFFFFFF)]))[0]


def derive_streams(
    parent_streams: np.ndarray, tag: np.uint64, ordinals: np.ndarray
) -> np.ndarray:
    """Stream ids for rows derived from parent rows.

    ``ordinals`` disambiguates siblings created from the same parent (the
    child's database row for joined children, the synthesis ordinal for
    model-generated children).  Distinct (parent, tag, ordinal) triples map
    to distinct streams up to 64-bit hash collisions.
    """
    with np.errstate(over="ignore"):
        mixed = _splitmix64(np.asarray(parent_streams, dtype=np.uint64) ^ tag)
        return _splitmix64(
            mixed + _GOLDEN * np.asarray(ordinals, dtype=np.uint64)
        )


def key_streams(tag: np.uint64, keys: np.ndarray) -> np.ndarray:
    """Streams keyed by a database value (shared synthesized parents).

    Every chunk that needs the parent of dangling-FK key ``k`` derives the
    same stream, so the shared tuple is synthesized identically regardless
    of which chunk its children land in.
    """
    with np.errstate(over="ignore"):
        return _splitmix64(
            _splitmix64(np.asarray(keys, dtype=np.int64).view(np.uint64) ^ tag)
        )


def uniforms(
    seed64: np.uint64, streams: np.ndarray, counters: np.ndarray, k: int = 1
) -> np.ndarray:
    """``(rows, k)`` uniforms in ``[0, 1)``: draws ``counter .. counter+k-1``.

    Callers must advance their counters by ``k`` afterwards (see
    :func:`draw`), otherwise the same numbers are returned again.
    """
    streams = np.asarray(streams, dtype=np.uint64)
    counters = np.asarray(counters, dtype=np.uint64)
    with np.errstate(over="ignore"):
        lane = _splitmix64(streams ^ seed64)[:, None]
        ticks = counters[:, None] + np.arange(k, dtype=np.uint64)[None, :]
        bits = _splitmix64(lane + _GOLDEN * ticks)
    return (bits >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)


def draw(
    seed64: np.uint64, streams: np.ndarray, counters: np.ndarray, k: int = 1
) -> np.ndarray:
    """Like :func:`uniforms` but advances ``counters`` in place by ``k``."""
    out = uniforms(seed64, streams, counters, k)
    counters += np.uint64(k)
    return out


def root_streams(row_indices: np.ndarray) -> np.ndarray:
    """Initial streams of root evidence rows (one per database row)."""
    return _splitmix64(np.asarray(row_indices, dtype=np.uint64))


def sample_categorical(probs: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Invert the per-row CDF of ``probs`` at the uniforms ``u``.

    The counter-based analogue of ``rng.random`` + CDF inversion; row order
    does not influence any other row's draw.
    """
    cdf = np.cumsum(probs, axis=-1)
    cdf[:, -1] = 1.0  # guard against round-off
    return (np.asarray(u).reshape(-1, 1) > cdf).sum(axis=-1).astype(np.int64)


def chunk_slices(num_rows: int, chunk_size: Optional[int]) -> Iterator[slice]:
    """Row slices covering ``range(num_rows)`` in chunks of ``chunk_size``.

    ``None`` (or any non-positive value) yields a single full slice.
    """
    if chunk_size is None or chunk_size <= 0 or chunk_size >= num_rows:
        yield slice(0, num_rows)
        return
    for start in range(0, num_rows, chunk_size):
        yield slice(start, min(start + chunk_size, num_rows))
