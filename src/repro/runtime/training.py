"""Fused forward+backward training kernels over flat parameter buffers.

``ReStore.fit()`` used to build a closure-based float64 autograd graph per
mini-batch; this module replaces that with hand-derived fused kernels for
the two architectures the engine trains — :class:`~repro.nn.made.ResidualMADE`
and the deep-sets :class:`~repro.nn.deepsets.EvidenceTreeEncoder` — running
on a single flat float32 parameter buffer with an array-based Adam
(:class:`repro.nn.optim.AdamArrays`).

Design:

* **One kernel set.**  The dense/embedding/softmax primitives live in
  :mod:`repro.runtime.kernels`, shared with compiled inference; the
  backward passes here differentiate exactly those forwards.
* **Flat buffers.**  :class:`ParameterBuffer` packs every named parameter
  of a module into one contiguous array (plus a matching gradient array)
  and hands out reshaped views keyed by the original autograd tensors.
  Optimizer steps, gradient clipping and best-epoch snapshots are single
  vectorized operations on the flat arrays.
* **The autograd engine stays the oracle.**  Buffers accept a ``dtype``
  so the gradcheck harness can run the same kernels in float64 and compare
  against the reference engine to machine precision; production training
  uses float32.
* **Write-back.**  After training, :meth:`ParameterBuffer.write_back`
  copies the buffer into the module's float64 tensors, so ``state_dict``
  names, serialized artifacts and compiled inference snapshots are
  unchanged — a fused-trained model is indistinguishable in shape and
  plumbing from an autograd-trained one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.deepsets import EvidenceTreeEncoder, TreeNodeBatch, _NodeEncoder
from ..nn.layers import Module
from ..nn.made import ResidualMADE
from ..nn.optim import AdamArrays, clip_grad_norm_arrays
from ..nn.train import TrainConfig, TrainStepper
from . import kernels


class ParameterBuffer:
    """Flat typed storage for a module's parameters and their gradients.

    Packs every ``named_parameters()`` tensor of ``module`` into one
    contiguous ``dtype`` array (float32 by default) and exposes reshaped
    views by parameter name or by the original tensor object.  The views
    alias the flat array, so an optimizer update on :attr:`flat` is
    immediately visible to every kernel holding a view.
    """

    def __init__(self, module: Module, dtype=kernels.DTYPE):
        self.module = module
        self.dtype = np.dtype(dtype)
        named = list(module.named_parameters())
        self.names: List[str] = [name for name, _ in named]
        self._tensors = [param for _, param in named]
        sizes = [param.data.size for param in self._tensors]
        offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        total = int(offsets[-1])
        self.flat = np.empty(total, dtype=self.dtype)
        self.grad = np.zeros(total, dtype=self.dtype)
        self._views: Dict[str, np.ndarray] = {}
        self._grad_views: Dict[str, np.ndarray] = {}
        self._name_by_id: Dict[int, str] = {}
        for name, param, start, stop in zip(
            self.names, self._tensors, offsets[:-1], offsets[1:]
        ):
            shape = param.data.shape
            self._views[name] = self.flat[start:stop].reshape(shape)
            self._grad_views[name] = self.grad[start:stop].reshape(shape)
            self._name_by_id[id(param)] = name
            self._views[name][...] = param.data

    @property
    def num_parameters(self) -> int:
        return self.flat.size

    def _name_of(self, key) -> str:
        if isinstance(key, str):
            return key
        name = self._name_by_id.get(id(key))
        if name is None:
            raise KeyError("tensor is not a parameter of the buffered module")
        return name

    def view(self, key) -> np.ndarray:
        """Parameter view (by name or by the module's tensor object)."""
        return self._views[self._name_of(key)]

    def grad_view(self, key) -> np.ndarray:
        """Gradient view aligned with :meth:`view`."""
        return self._grad_views[self._name_of(key)]

    def stacked_views(self, keys) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Row-stacked (param, grad) views over adjacent 2-D parameters.

        When the given parameters occupy consecutive ranges of the flat
        buffer and share their trailing dimension, their concatenation is
        itself a contiguous ``(sum(rows), dim)`` view — one gather/scatter
        can then serve all of them (the MADE embedding fast path).  Returns
        ``None`` when the layout does not line up.
        """
        views = [self._views[self._name_of(k)] for k in keys]
        if not views or any(v.ndim != 2 for v in views):
            return None
        dim = views[0].shape[1]
        if any(v.shape[1] != dim for v in views):
            return None
        offset = self._offset_of(views[0])
        lo = offset
        for view in views:
            if self._offset_of(view) != offset:
                return None
            offset += view.size
        return (
            self.flat[lo:offset].reshape(-1, dim),
            self.grad[lo:offset].reshape(-1, dim),
        )

    def _offset_of(self, view: np.ndarray) -> int:
        """Element offset of a parameter view within the flat buffer."""
        byte_offset = view.__array_interface__["data"][0] - \
            self.flat.__array_interface__["data"][0]
        return byte_offset // self.flat.itemsize

    def zero_grad(self) -> None:
        self.grad[...] = 0

    def snapshot(self) -> np.ndarray:
        """A copy of the current flat parameters (cheap best-epoch state)."""
        return self.flat.copy()

    def restore(self, state: np.ndarray) -> None:
        self.flat[...] = state

    def write_back(self) -> None:
        """Copy the buffer into the module's own (float64) parameters."""
        for name, param in zip(self.names, self._tensors):
            param.data[...] = self._views[name].astype(param.data.dtype)


class FusedResidualMADE:
    """Hand-derived forward+backward for :class:`ResidualMADE` training.

    Reproduces the autograd loss
    ``sum_i weighted_mean_CE(logits_i, x[:, i])`` exactly (up to the buffer
    dtype): embedding gather → masked input layer → ReLU residual blocks →
    masked output layer → per-variable weighted softmax-NLL, with the
    backward pass accumulating into the buffer's gradient views.  MADE
    masks are applied at forward time (weights stay raw in the buffer) and
    to the weight gradients, so masked-out entries never train — the same
    fixed point the autograd engine converges to.
    """

    def __init__(self, made: ResidualMADE, buffer: ParameterBuffer):
        self.buffer = buffer
        self.dtype = buffer.dtype
        self.num_variables = made.num_variables
        self.context_dim = made.context_dim
        self.logit_offsets = made._logit_offsets.astype(np.int64)
        self.embeddings = [buffer.view(e.weight) for e in made.embeddings]
        self.d_embeddings = [buffer.grad_view(e.weight) for e in made.embeddings]
        self.embed_dim = made.embed_dim
        self.embed_starts = np.empty(self.num_variables, dtype=np.int64)
        offset = self.context_dim
        for i, emb in enumerate(self.embeddings):
            self.embed_starts[i] = offset
            offset += emb.shape[1]
        self.feature_dim = offset
        # Concatenated embedding-vocabulary space for the one-GEMM scatter:
        # variable i's code c maps to row vocab_offsets[i] + c.
        vocabs = np.array([emb.shape[0] for emb in self.embeddings], dtype=np.int64)
        self.vocab_offsets = np.concatenate([[0], np.cumsum(vocabs)])
        self.total_vocab = int(self.vocab_offsets[-1])
        self._head_kernel = kernels.MultiheadNLLKernel(
            self.logit_offsets, dtype=self.dtype
        )
        # Fast path: the buffer lays the per-variable embedding tables out
        # back to back, so one gather/scatter over the concatenated
        # vocabulary serves every variable at once.
        self._stacked = buffer.stacked_views([e.weight for e in made.embeddings])

        def dense(layer):
            return (
                buffer.view(layer.weight),
                buffer.grad_view(layer.weight),
                None if layer.bias is None else buffer.view(layer.bias),
                None if layer.bias is None else buffer.grad_view(layer.bias),
                np.ascontiguousarray(layer.mask.data, dtype=self.dtype),
            )

        self.input_layer = dense(made.input_layer)
        self.residual_layers = [dense(layer) for layer in made.residual_layers]
        self.output_layer = dense(made.output_layer)

    # -- forward helpers -------------------------------------------------
    def _features(self, x: np.ndarray, context: Optional[np.ndarray]) -> np.ndarray:
        x = np.asarray(x)
        features = np.empty((len(x), self.feature_dim), dtype=self.dtype)
        if self.context_dim:
            if context is None:
                raise ValueError("model was built with context_dim > 0; pass context")
            features[:, : self.context_dim] = context
        if self._stacked is not None:
            stacked, _grad = self._stacked
            flat_codes = (x + self.vocab_offsets[None, :-1]).ravel()
            features[:, self.context_dim:] = stacked[flat_codes].reshape(
                len(x), -1
            )
            return features
        for i, emb in enumerate(self.embeddings):
            lo = int(self.embed_starts[i])
            features[:, lo:lo + emb.shape[1]] = emb[x[:, i]]
        return features

    def _masked_weights(self):
        """The effective (mask-applied) weights of every dense layer.

        Computed once per step and shared between the forward and backward
        passes — weights change every optimizer step, masks never do.
        """
        w_in, _, _, _, mask_in = self.input_layer
        wm_res = [w * mask for w, _, _, _, mask in self.residual_layers]
        w_out, _, _, _, mask_out = self.output_layer
        return w_in * mask_in, wm_res, w_out * mask_out

    def _hidden_states(self, features: np.ndarray, wm_in, wm_res):
        """Forward through the residual stack, caching what backward needs."""
        z = features @ wm_in
        b_in = self.input_layer[2]
        if b_in is not None:
            z += b_in
        relu0 = z > 0
        np.maximum(z, 0.0, out=z)
        hs = [z]            # hs[k] = input to residual layer k; hs[-1] = final
        relus = []          # ReLU masks of each residual pre-activation
        for (w, _dw, b, _db, mask), wm in zip(self.residual_layers, wm_res):
            zk = hs[-1] @ wm
            if b is not None:
                zk += b
            mk = zk > 0
            np.maximum(zk, 0.0, out=zk)
            relus.append(mk)
            hs.append(hs[-1] + zk)
        return hs, relu0, relus

    def forward_logits(
        self, x: np.ndarray, context: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """All per-variable logits ``(batch, sum(K_i))`` — forward only."""
        features = self._features(x, context)
        wm_in, wm_res, wm_out = self._masked_weights()
        hs, _relu0, _relus = self._hidden_states(features, wm_in, wm_res)
        logits = hs[-1] @ wm_out
        b_out = self.output_layer[2]
        if b_out is not None:
            logits += b_out
        return logits

    def _weight_matrix(
        self,
        batch_size: int,
        variable_weights: Optional[Dict[int, np.ndarray]],
    ) -> np.ndarray:
        """Pre-normalized ``(batch, num_variables)`` per-head loss weights."""
        wmat = np.empty((batch_size, self.num_variables))
        for i in range(self.num_variables):
            weights = None
            if variable_weights is not None and i in variable_weights:
                weights = variable_weights[i]
            if weights is None:
                wmat[:, i] = 1.0 / max(batch_size, 1)
            else:
                weights = np.asarray(weights, dtype=np.float64)
                total = float(weights.sum())
                if total <= 0:
                    raise ValueError(
                        f"variable {i} training weights must have positive sum"
                    )
                wmat[:, i] = weights / total
        return wmat

    # -- training step ----------------------------------------------------
    def loss_and_grad(
        self,
        x: np.ndarray,
        context: Optional[np.ndarray],
        variable_weights: Optional[Dict[int, np.ndarray]] = None,
        weight_matrix: Optional[np.ndarray] = None,
    ) -> Tuple[float, Optional[np.ndarray]]:
        """Fused forward+backward of the weighted NLL over one mini-batch.

        Accumulates parameter gradients into the buffer and returns
        ``(loss, d_context)`` — the context gradient feeds the tree-encoder
        backward for SSAR models (``None`` for context-free models).
        Loss weights come either from ``variable_weights`` (per-variable
        batch vectors, normalized here) or a pre-normalized
        ``weight_matrix`` (the stepper's fast path).
        """
        x = np.asarray(x)
        features = self._features(x, context)
        wm_in, wm_res, wm_out = self._masked_weights()
        hs, relu0, relus = self._hidden_states(features, wm_in, wm_res)
        logits = hs[-1] @ wm_out
        _w_out, dw_out, b_out, db_out, mask_out = self.output_layer
        if b_out is not None:
            logits += b_out

        if weight_matrix is None:
            weight_matrix = self._weight_matrix(len(x), variable_weights)
        loss, d_logits = self._head_kernel(logits, x, weight_matrix)

        # Backward through the output layer.
        dw_out += (hs[-1].T @ d_logits) * mask_out
        if db_out is not None:
            db_out += d_logits.sum(axis=0)
        dh = d_logits @ wm_out.T

        # Residual blocks, in reverse:  h_{k+1} = h_k + relu(h_k @ Wm_k + b_k)
        for k in range(len(self.residual_layers) - 1, -1, -1):
            _w, dw, _b, db, mask = self.residual_layers[k]
            dz = dh * relus[k]
            dw += (hs[k].T @ dz) * mask
            if db is not None:
                db += dz.sum(axis=0)
            dh = dh + dz @ wm_res[k].T

        # Input layer.
        _w_in, dw_in, _b_in, db_in, mask_in = self.input_layer
        dz0 = dh * relu0
        dw_in += (features.T @ dz0) * mask_in
        if db_in is not None:
            db_in += dz0.sum(axis=0)
        d_features = dz0 @ wm_in.T

        # Split the feature gradient: context block + one dense embedding
        # scatter over the concatenated vocabulary space (bincount columns
        # instead of one np.add.at per variable).
        d_context = d_features[:, : self.context_dim] if self.context_dim else None
        flat_codes = (x + self.vocab_offsets[None, :-1]).ravel()
        d_embedded = d_features[:, self.context_dim:].reshape(-1, self.embed_dim)
        d_stacked = kernels.dense_scatter(flat_codes, d_embedded, self.total_vocab)
        if self._stacked is not None:
            _params, stacked_grad = self._stacked
            stacked_grad += d_stacked
        else:
            for i, d_emb in enumerate(self.d_embeddings):
                lo = int(self.vocab_offsets[i])
                d_emb += d_stacked[lo:lo + d_emb.shape[0]]
        return loss, d_context

    # -- evaluation --------------------------------------------------------
    def per_example_nll(
        self,
        x: np.ndarray,
        context: Optional[np.ndarray] = None,
        variables: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Per-row NLL on the buffer's current parameters (no gradients)."""
        x = np.asarray(x)
        logits = self.forward_logits(x, context)
        selected = range(self.num_variables) if variables is None else variables
        total = np.zeros(len(x))
        for i in selected:
            start = int(self.logit_offsets[i])
            stop = int(self.logit_offsets[i + 1])
            total += kernels.nll_rows(logits[:, start:stop], x[:, i])
        return total


class _FusedNode:
    """Fused phi/rho deep-sets node mirroring :class:`_NodeEncoder`."""

    def __init__(self, encoder: _NodeEncoder, buffer: ParameterBuffer):
        self.name = encoder.spec.name
        self.dtype = buffer.dtype
        self.num_columns = len(encoder.spec.vocab_sizes)
        self.embeddings = [buffer.view(e.weight) for e in encoder.embeddings]
        self.d_embeddings = [buffer.grad_view(e.weight) for e in encoder.embeddings]
        self.children = [_FusedNode(c, buffer) for c in encoder.child_encoders]
        self.w_phi = buffer.view(encoder.phi.weight)
        self.dw_phi = buffer.grad_view(encoder.phi.weight)
        self.b_phi = None if encoder.phi.bias is None else buffer.view(encoder.phi.bias)
        self.db_phi = (
            None if encoder.phi.bias is None else buffer.grad_view(encoder.phi.bias)
        )
        self.w_rho = buffer.view(encoder.rho.weight)
        self.dw_rho = buffer.grad_view(encoder.rho.weight)
        self.b_rho = None if encoder.rho.bias is None else buffer.view(encoder.rho.bias)
        self.db_rho = (
            None if encoder.rho.bias is None else buffer.grad_view(encoder.rho.bias)
        )
        self.out_dim = encoder.rho.out_features
        self._cache = None

    def _empty_batch(self) -> TreeNodeBatch:
        return TreeNodeBatch(
            values=np.zeros((0, self.num_columns), dtype=np.int64),
            parent_ids=np.zeros(0, dtype=np.int64),
        )

    def forward(self, batch: Optional[TreeNodeBatch], num_parents: int) -> np.ndarray:
        if batch is None:
            batch = self._empty_batch()
        parts: List[np.ndarray] = [
            emb[batch.values[:, i]] for i, emb in enumerate(self.embeddings)
        ]
        for child in self.children:
            parts.append(child.forward(batch.children.get(child.name), batch.num_rows))
        if parts:
            features = np.concatenate(parts, axis=-1).astype(self.dtype, copy=False)
        else:
            features = np.zeros((batch.num_rows, 1), dtype=self.dtype)

        z_phi = features @ self.w_phi
        if self.b_phi is not None:
            z_phi += self.b_phi
        relu_phi = z_phi > 0
        np.maximum(z_phi, 0.0, out=z_phi)
        pooled = kernels.segment_sum_forward(z_phi, batch.parent_ids, num_parents)
        z_rho = pooled @ self.w_rho
        if self.b_rho is not None:
            z_rho += self.b_rho
        relu_rho = z_rho > 0
        np.maximum(z_rho, 0.0, out=z_rho)
        self._cache = (batch, features, relu_phi, pooled, relu_rho)
        return z_rho

    def backward(self, d_out: np.ndarray) -> None:
        batch, features, relu_phi, pooled, relu_rho = self._cache
        dz_rho = d_out * relu_rho
        self.dw_rho += pooled.T @ dz_rho
        if self.db_rho is not None:
            self.db_rho += dz_rho.sum(axis=0)
        d_pooled = dz_rho @ self.w_rho.T
        d_encoded = kernels.segment_sum_backward(d_pooled, batch.parent_ids)
        dz_phi = d_encoded * relu_phi
        self.dw_phi += features.T @ dz_phi
        if self.db_phi is not None:
            self.db_phi += dz_phi.sum(axis=0)
        d_features = dz_phi @ self.w_phi.T
        col = 0
        for i, emb in enumerate(self.embeddings):
            width = emb.shape[1]
            kernels.embedding_backward(
                self.d_embeddings[i], batch.values[:, i],
                d_features[:, col:col + width],
            )
            col += width
        for child in self.children:
            child.backward(d_features[:, col:col + child.out_dim])
            col += child.out_dim


class FusedTreeEncoder:
    """Fused forward+backward for :class:`EvidenceTreeEncoder` training."""

    def __init__(self, encoder: EvidenceTreeEncoder, buffer: ParameterBuffer):
        self.nodes = [_FusedNode(e, buffer) for e in encoder.encoders]
        self.context_dim = encoder.context_dim

    def forward(
        self, batches: Dict[str, TreeNodeBatch], batch_size: int
    ) -> np.ndarray:
        parts = [
            node.forward(batches.get(node.name), batch_size) for node in self.nodes
        ]
        return np.concatenate(parts, axis=-1)

    def backward(self, d_context: np.ndarray) -> None:
        col = 0
        for node in self.nodes:
            node.backward(d_context[:, col:col + node.out_dim])
            col += node.out_dim


class FusedTrainStepper(TrainStepper):
    """The ``"fused"`` training backend for completion models.

    Owns a :class:`ParameterBuffer` over the whole model (MADE plus, for
    SSAR, the tree encoder), the fused kernels, and an array-based Adam on
    the flat buffer.  The hop-level inference surface and the picklable
    :class:`~repro.core.models.CompletionSnapshot` are untouched — the
    stepper lives only for the duration of one ``fit`` and writes its final
    parameters back into the module's float64 tensors.
    """

    backend = "fused"

    def __init__(
        self,
        model,
        matrix: np.ndarray,
        variable_weights: Dict[int, np.ndarray],
        config: TrainConfig,
        dtype=kernels.DTYPE,
    ):
        self.model = model
        self.matrix = matrix
        self.variable_weights = variable_weights
        self.grad_clip = config.grad_clip
        self.buffer = ParameterBuffer(model, dtype=dtype)
        self.made = FusedResidualMADE(model.made, self.buffer)
        tree = getattr(model, "tree_encoder", None)
        self.tree = None if tree is None else FusedTreeEncoder(tree, self.buffer)
        self.optimizer = AdamArrays(
            [self.buffer.flat],
            lr=config.lr, weight_decay=config.weight_decay,
        )
        # Full (rows, num_variables) weight table; each step slices its
        # batch and normalizes per column in two vectorized ops instead of
        # a per-variable python loop.
        self._weight_table = np.ones(
            (len(matrix), self.made.num_variables), dtype=np.float64
        )
        for variable, weights in variable_weights.items():
            self._weight_table[:, variable] = weights

    def _context(self, indices: np.ndarray) -> Optional[np.ndarray]:
        if self.tree is None:
            return None
        batches, batch_size = self.model._context_batches(indices)
        return self.tree.forward(batches, batch_size)

    def step(self, indices: np.ndarray) -> float:
        self.buffer.zero_grad()
        context = self._context(indices)
        weight_matrix = self._weight_table[indices]
        weight_matrix /= weight_matrix.sum(axis=0)
        loss, d_context = self.made.loss_and_grad(
            self.matrix[indices], context, weight_matrix=weight_matrix
        )
        if self.tree is not None:
            self.tree.backward(d_context)
        clip_grad_norm_arrays([self.buffer.grad], self.grad_clip)
        self.optimizer.step([self.buffer.flat], [self.buffer.grad])
        return loss

    def evaluate(self, indices: np.ndarray) -> float:
        context = self._context(indices)
        return float(
            self.made.per_example_nll(self.matrix[indices], context).mean()
        )

    def snapshot(self) -> np.ndarray:
        return self.buffer.snapshot()

    def restore(self, state: np.ndarray) -> None:
        self.buffer.restore(state)

    def finalize(self) -> None:
        self.buffer.write_back()
