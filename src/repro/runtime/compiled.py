"""Graph-free compiled inference for the neural substrate.

Training runs on the float64 autograd engine in :mod:`repro.nn.tensor`; the
hot completion path (autoregressive sampling inside the incompleteness join)
needs none of that machinery.  Compiling a fitted module snapshots its
parameters into plain float32 numpy arrays — masked weights pre-multiplied,
per-variable output slices precomputed — and evaluates forwards without
recording backward closures or wrapping anything in :class:`Tensor`.

Two execution properties matter beyond speed:

* **No autograd graphs.**  Nothing in this module touches ``Tensor``; a
  compiled forward allocates only output arrays.
* **Batch-shape invariance.**  Every dense transform runs over fixed-size
  row tiles (:data:`TILE` rows, zero-padded), so a row's activations are
  bitwise identical no matter how the batch around it is chunked.  BLAS
  kernels pick different accumulation orders for different matrix shapes;
  fixed tiles pin the shape, which is what lets the chunked incompleteness
  join reproduce the unchunked run exactly.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..obs import profile as _profile

from ..nn.deepsets import EvidenceTreeEncoder, TreeNodeBatch, _NodeEncoder
from ..nn.layers import (
    MLP,
    Embedding,
    Linear,
    MaskedLinear,
    Module,
    ReLU,
    Sequential,
)
from ..nn.made import ResidualMADE
from . import rng as _rng
from .kernels import (
    DTYPE as _DTYPE,
    TILE,
    DenseKernel,
    softmax as _softmax,
    tile_apply as _tile_apply,
)

#: Back-compat alias: the inference-side dense kernel now lives in
#: :mod:`repro.runtime.kernels` where fused training shares it.
CompiledDense = DenseKernel


def _compile_linear(layer: Linear) -> CompiledDense:
    bias = None if layer.bias is None else layer.bias.data
    return CompiledDense(layer.weight.data, bias)


def _compile_masked(layer: MaskedLinear) -> CompiledDense:
    bias = None if layer.bias is None else layer.bias.data
    return CompiledDense(layer.weight.data * layer.mask.data, bias)


class CompiledMADE:
    """Inference-only snapshot of a fitted :class:`ResidualMADE`.

    Exposes the same inference surface (``forward`` / ``conditional_probs``
    / ``per_example_nll`` / ``sample``) on plain arrays.  Per-variable
    output-weight slices are cached so conditional queries touch only the
    columns of the requested variable instead of the full ``sum(K_i)``-wide
    output layer — the single biggest win for hop-by-hop sampling.
    """

    def __init__(self, made: ResidualMADE):
        self.vocab_sizes = list(made.vocab_sizes)
        self.num_variables = made.num_variables
        self.context_dim = made.context_dim
        self.logit_offsets = made._logit_offsets.astype(np.int64)
        self.embeddings = [e.weight.data.astype(_DTYPE) for e in made.embeddings]
        self.input_layer = _compile_masked(made.input_layer)
        self.residual_layers = [
            _compile_masked(layer) for layer in made.residual_layers
        ]
        self.output_layer = _compile_masked(made.output_layer)
        self._output_slices: Dict[int, CompiledDense] = {}

    # -- forward -------------------------------------------------------
    def _features(self, x: np.ndarray, context: Optional[np.ndarray]) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim != 2 or x.shape[1] != self.num_variables:
            raise ValueError(
                f"expected input of shape (batch, {self.num_variables}), got {x.shape}"
            )
        parts: List[np.ndarray] = []
        if self.context_dim:
            if context is None:
                raise ValueError("model was built with context_dim > 0; pass context")
            parts.append(np.asarray(context, dtype=_DTYPE))
        for i, emb in enumerate(self.embeddings):
            parts.append(emb[x[:, i]])
        return np.concatenate(parts, axis=-1)

    def _hidden_fn(self) -> Callable[[np.ndarray], np.ndarray]:
        def fn(tile: np.ndarray) -> np.ndarray:
            h = self.input_layer(tile)
            np.maximum(h, 0.0, out=h)
            for layer in self.residual_layers:
                r = layer(h)
                np.maximum(r, 0.0, out=r)
                h = h + r
            return h
        return fn

    def hidden(self, x: np.ndarray, context: Optional[np.ndarray] = None) -> np.ndarray:
        """Final residual-block activations ``(batch, H)``."""
        return _tile_apply(self._features(x, context), self._hidden_fn())

    def forward(self, x: np.ndarray, context: Optional[np.ndarray] = None) -> np.ndarray:
        """All per-variable logits ``(batch, sum(K_i))`` — no graph, float32."""
        hidden_fn = self._hidden_fn()

        def fn(tile: np.ndarray) -> np.ndarray:
            return self.output_layer(hidden_fn(tile))

        return _tile_apply(self._features(x, context), fn)

    def _output_slice(self, variable: int) -> CompiledDense:
        if variable not in self._output_slices:
            start = int(self.logit_offsets[variable])
            stop = int(self.logit_offsets[variable + 1])
            bias = self.output_layer.bias
            self._output_slices[variable] = CompiledDense(
                self.output_layer.weight[:, start:stop],
                None if bias is None else bias[start:stop],
            )
        return self._output_slices[variable]

    # -- inference API --------------------------------------------------
    def logits_for(
        self, x: np.ndarray, variable: int, context: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Logits of one variable only — skips the rest of the output layer."""
        hidden_fn = self._hidden_fn()
        head = self._output_slice(variable)

        def fn(tile: np.ndarray) -> np.ndarray:
            return head(hidden_fn(tile))

        return _tile_apply(self._features(x, context), fn)

    def conditional_probs(
        self, x: np.ndarray, variable: int, context: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """``P(x_variable | x_<variable>, context)`` as ``(batch, K)``."""
        return _softmax(self.logits_for(x, variable, context))

    def per_example_nll(
        self,
        x: np.ndarray,
        context: Optional[np.ndarray] = None,
        variables: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Per-row NLL matching ``ResidualMADE.per_example_nll``."""
        outputs = self.forward(x, context)
        selected = range(self.num_variables) if variables is None else variables
        total = np.zeros(len(x))
        rows = np.arange(len(x))
        for i in selected:
            start = int(self.logit_offsets[i])
            stop = int(self.logit_offsets[i + 1])
            logits = outputs[:, start:stop].astype(np.float64)
            shifted = logits - logits.max(axis=-1, keepdims=True)
            log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
            total += -log_probs[rows, np.asarray(x)[:, i]]
        return total

    def sample(
        self,
        evidence: np.ndarray,
        start_variable: int,
        rng: Optional[np.random.Generator] = None,
        context: Optional[np.ndarray] = None,
        temperature: float = 1.0,
        stop_variable: Optional[int] = None,
        draws: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Iterative conditional sampling, one variable per forward.

        Randomness comes either from ``rng`` (one categorical draw per row
        per variable) or from precomputed ``draws`` of shape
        ``(batch, stop - start)`` — the chunk-invariant path used by the
        incompleteness join.
        """
        profiler = _profile.ACTIVE
        started = time.perf_counter_ns() if profiler is not None else 0
        stop = self.num_variables if stop_variable is None else stop_variable
        if not 0 <= start_variable <= stop <= self.num_variables:
            raise ValueError("sampling range out of bounds")
        x = np.array(evidence, dtype=np.int64, copy=True)
        n = len(x)
        if n == 0 or start_variable == stop:
            return x
        if draws is None and rng is None:
            raise ValueError("sample needs either rng or draws")
        # The feature matrix is built and tile-padded once; each sampling
        # step refreshes only the embedding slice of the variable it drew.
        features = self._features(x, context)
        num_tiles = -(-n // TILE)
        padded = np.zeros((num_tiles * TILE, features.shape[1]), dtype=_DTYPE)
        padded[:n] = features
        hidden_fn = self._hidden_fn()
        embed_start = np.empty(self.num_variables, dtype=np.int64)
        offset = self.context_dim
        for i, emb in enumerate(self.embeddings):
            embed_start[i] = offset
            offset += emb.shape[1]
        for step, variable in enumerate(range(start_variable, stop)):
            head = self._output_slice(variable)
            logits = np.concatenate([
                head(hidden_fn(padded[t * TILE:(t + 1) * TILE]))
                for t in range(num_tiles)
            ])[:n]
            probs = _softmax(logits)
            if temperature != 1.0:
                log_probs = np.log(np.maximum(probs, 1e-300)) / temperature
                probs = _softmax(log_probs)
            if draws is not None:
                u = draws[:, step]
            else:
                u = rng.random(len(probs))
            x[:, variable] = _rng.sample_categorical(probs, u)
            lo = int(embed_start[variable])
            emb = self.embeddings[variable]
            padded[:n, lo:lo + emb.shape[1]] = emb[x[:, variable]]
        if profiler is not None:
            profiler.record(
                "made.sample", time.perf_counter_ns() - started, rows=n
            )
        return x


class _CompiledNode:
    """Float32 snapshot of one deep-sets tree node (phi / rho / children)."""

    def __init__(self, encoder: _NodeEncoder):
        self.name = encoder.spec.name
        self.vocab_sizes = list(encoder.spec.vocab_sizes)
        self.embeddings = [e.weight.data.astype(_DTYPE) for e in encoder.embeddings]
        self.children = [_CompiledNode(c) for c in encoder.child_encoders]
        self.phi = _compile_linear(encoder.phi)
        self.rho = _compile_linear(encoder.rho)
        self.out_dim = encoder.rho.out_features

    def encode(self, batch: Optional[TreeNodeBatch], num_parents: int) -> np.ndarray:
        if batch is None:
            batch = TreeNodeBatch(
                values=np.zeros((0, len(self.vocab_sizes)), dtype=np.int64),
                parent_ids=np.zeros(0, dtype=np.int64),
            )
        parts: List[np.ndarray] = [
            emb[batch.values[:, i]] for i, emb in enumerate(self.embeddings)
        ]
        for child in self.children:
            parts.append(child.encode(batch.children.get(child.name), batch.num_rows))
        if parts:
            features = np.concatenate(parts, axis=-1)
        else:
            features = np.zeros((batch.num_rows, 1), dtype=_DTYPE)

        def phi_fn(tile: np.ndarray) -> np.ndarray:
            out = self.phi(tile)
            np.maximum(out, 0.0, out=out)
            return out

        encoded = _tile_apply(features, phi_fn)
        pooled = np.zeros((num_parents, encoded.shape[1]), dtype=_DTYPE)
        np.add.at(pooled, batch.parent_ids, encoded)

        def rho_fn(tile: np.ndarray) -> np.ndarray:
            out = self.rho(tile)
            np.maximum(out, 0.0, out=out)
            return out

        return _tile_apply(pooled, rho_fn)


class CompiledTreeEncoder:
    """Inference-only snapshot of an :class:`EvidenceTreeEncoder`."""

    def __init__(self, encoder: EvidenceTreeEncoder):
        self.encoders = [_CompiledNode(e) for e in encoder.encoders]
        self.context_dim = encoder.context_dim

    def forward(
        self, batches: Dict[str, TreeNodeBatch], batch_size: int
    ) -> np.ndarray:
        """Contexts ``(batch_size, context_dim)`` as a plain float32 array."""
        profiler = _profile.ACTIVE
        started = time.perf_counter_ns() if profiler is not None else 0
        parts = [
            node.encode(batches.get(node.name), batch_size) for node in self.encoders
        ]
        out = np.concatenate(parts, axis=-1)
        if profiler is not None:
            profiler.record(
                "tree.encode", time.perf_counter_ns() - started,
                rows=batch_size,
            )
        return out


def compile_module(module: Module):
    """Compile a fitted module into its pure-numpy inference counterpart.

    Dispatches on type: MADE and tree encoders get their dedicated compiled
    classes; layer containers compile to a plain ``array -> array`` callable.
    """
    if isinstance(module, ResidualMADE):
        return CompiledMADE(module)
    if isinstance(module, EvidenceTreeEncoder):
        return CompiledTreeEncoder(module)
    if isinstance(module, MaskedLinear):
        return _compile_masked(module)
    if isinstance(module, Linear):
        return _compile_linear(module)
    if isinstance(module, Embedding):
        weight = module.weight.data.astype(_DTYPE)
        return lambda indices: weight[np.asarray(indices)]
    if isinstance(module, ReLU):
        return lambda x: np.maximum(np.asarray(x, dtype=_DTYPE), 0.0)
    if isinstance(module, MLP):
        return compile_module(module.net)
    if isinstance(module, Sequential):
        stages = [compile_module(m) for m in module.modules]

        def fn(x: np.ndarray) -> np.ndarray:
            out = np.asarray(x, dtype=_DTYPE)
            for stage in stages:
                out = stage(out)
            return out

        return fn
    raise TypeError(f"cannot compile {type(module).__name__} for inference")
