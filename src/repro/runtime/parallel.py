"""Execution backends for sharded completion work.

The incompleteness join streams over chunks of root evidence rows, and every
chunk is a pure function of the seed and the data (counter-based per-row
random streams, fixed-tile compiled forwards — see :mod:`repro.runtime.rng`
and :mod:`repro.runtime.compiled`).  That purity is exactly what makes the
chunks safe to fan out: this module provides the executor they fan out on.

Three backends share one contract:

* ``serial`` — run tasks inline, in order.  The default; zero overhead.
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.  Worker
  state is shared with the caller (no copies); numpy releases the GIL inside
  BLAS kernels, so the join's matmul-heavy sampling overlaps.
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.  Worker
  state is *rebuilt per worker* from a picklable payload (the join ships the
  compiled float32 model snapshot, never the autograd module), so tasks and
  the functions operating on them must be module-level picklables.

The contract of :meth:`Executor.map`:

* results come back **in task order**, regardless of completion order —
  callers can merge deterministically;
* the worker state passed to ``fn`` is ``init(payload)`` when ``init`` is
  given (computed once per worker, so a pool amortizes payload setup across
  its tasks), else ``payload`` itself;
* a task that raises surfaces the **original exception** to the caller
  (process workers pickle it back); remaining queued tasks are cancelled
  rather than left to hang.  The same holds for a raising ``init`` — never
  an opaque ``BrokenProcessPool`` — and a failed ``map`` does not poison
  the executor: the instance is reusable afterwards.
"""

from __future__ import annotations

import multiprocessing
import sys
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence

PARALLEL_BACKENDS = ("serial", "thread", "process")

TaskFn = Callable[[Any, Any], Any]
InitFn = Callable[[Any], Any]


class Executor:
    """Maps tasks over workers; see the module docstring for the contract."""

    backend = "serial"
    #: Whether worker state is the caller's live objects (serial/thread) or a
    #: per-worker reconstruction from a pickled payload (process).
    shares_caller_state = True

    def __init__(self, n_workers: int = 1):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)

    def map(
        self,
        fn: TaskFn,
        tasks: Iterable[Any],
        payload: Any = None,
        init: Optional[InitFn] = None,
    ) -> List[Any]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_workers={self.n_workers})"


def _make_state(payload: Any, init: Optional[InitFn]) -> Any:
    return payload if init is None else init(payload)


def _collect(futures: Sequence) -> List[Any]:
    """Results in submission order; on failure cancel what hasn't started."""
    try:
        return [f.result() for f in futures]
    except BaseException:
        for f in futures:
            f.cancel()
        raise


class SerialExecutor(Executor):
    """Run every task inline, in order, on the caller's thread."""

    backend = "serial"

    def map(self, fn, tasks, payload=None, init=None):
        state = _make_state(payload, init)
        return [fn(state, task) for task in tasks]


class ThreadExecutor(Executor):
    """Fan tasks out over a thread pool; state is shared, not copied.

    ``fn`` must therefore be thread-safe with respect to the state — the
    incompleteness join guarantees this by accumulating per-chunk results
    into chunk-local accumulators and pre-warming its shared caches.
    """

    backend = "thread"

    def map(self, fn, tasks, payload=None, init=None):
        tasks = list(tasks)
        state = _make_state(payload, init)
        if self.n_workers == 1 or len(tasks) <= 1:
            return [fn(state, task) for task in tasks]
        with ThreadPoolExecutor(
            max_workers=min(self.n_workers, len(tasks))
        ) as pool:
            return _collect([pool.submit(fn, state, task) for task in tasks])


def _record_payload_bytes(payload: Any) -> int:
    """Fan-out shipping telemetry: how many bytes the payload pickles to.

    Store-backed tables pickle as their spill-directory path, so a join
    over a mapped database ships O(kilobytes) per fan-out regardless of
    table size — this counter is what the scale benchmarks assert on.
    The extra pickle pass only runs on the multi-worker pool path, where
    the payload is serialized anyway.
    """
    import pickle

    try:
        nbytes = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0
    from ..obs.metrics import registry

    registry().counter("parallel.dispatches").add(1)
    registry().counter("parallel.payload_bytes").add(nbytes)
    registry().gauge("parallel.last_payload_bytes").set(float(nbytes))
    return nbytes


# Worker-side state of the process backend, set once by the pool initializer.
_WORKER_STATE: Any = None


class _InitFailure:
    """Sentinel worker state: the initializer raised.

    A raising :class:`~concurrent.futures.ProcessPoolExecutor` initializer
    kills the worker and surfaces an opaque ``BrokenProcessPool`` — so the
    initializer never raises; it parks the original exception here and the
    worker's first task re-raises it (pickled back to the caller intact).
    """

    def __init__(self, exc: BaseException):
        self.exc = exc


def _initialize_worker(init: Optional[InitFn], payload: Any) -> None:
    global _WORKER_STATE
    try:
        _WORKER_STATE = _make_state(payload, init)
    except BaseException as exc:
        _WORKER_STATE = _InitFailure(exc)


def _run_on_worker_state(fn: TaskFn, task: Any) -> Any:
    if isinstance(_WORKER_STATE, _InitFailure):
        raise _WORKER_STATE.exc
    return fn(_WORKER_STATE, task)


def _default_start_method() -> str:
    # fork shares the parent's pages copy-on-write (fast start, and the
    # payload initargs are still pickled per worker) but is only safe on
    # Linux: macOS frameworks (Accelerate/ObjC) may crash in forked
    # children, which is why CPython's own default there is spawn.
    if sys.platform.startswith("linux"):
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return "fork"
    return "spawn"


class ProcessExecutor(Executor):
    """Fan tasks out over worker processes.

    The payload is pickled once per worker (pool initializer), not once per
    task; ``fn``, ``init`` and the tasks must be picklable module-level
    objects.  With one worker (or one task) the pool is skipped and the
    worker state is built inline — the numbers are identical either way
    because ``init`` is the same pure construction.
    """

    backend = "process"
    shares_caller_state = False

    def __init__(self, n_workers: int = 1, start_method: Optional[str] = None):
        super().__init__(n_workers)
        self.start_method = start_method or _default_start_method()

    def map(self, fn, tasks, payload=None, init=None):
        tasks = list(tasks)
        if self.n_workers == 1 or len(tasks) <= 1:
            state = _make_state(payload, init)
            return [fn(state, task) for task in tasks]
        _record_payload_bytes(payload)
        ctx = multiprocessing.get_context(self.start_method)
        with ProcessPoolExecutor(
            max_workers=min(self.n_workers, len(tasks)),
            mp_context=ctx,
            initializer=_initialize_worker,
            initargs=(init, payload),
        ) as pool:
            return _collect(
                [pool.submit(_run_on_worker_state, fn, task) for task in tasks]
            )


_BACKEND_CLASSES = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def get_executor(backend: str, n_workers: int = 1) -> Executor:
    """Build the executor for a ``(backend, n_workers)`` configuration."""
    if backend not in _BACKEND_CLASSES:
        raise ValueError(
            f"unknown parallel backend {backend!r}; choose from {PARALLEL_BACKENDS}"
        )
    return _BACKEND_CLASSES[backend](n_workers)


def default_chunk_size(num_rows: int, n_workers: int,
                       tasks_per_worker: int = 4) -> Optional[int]:
    """Chunk size giving each worker a few tasks (load balancing headroom).

    ``None`` (single pass) when there is nothing to parallelize.  The choice
    never affects *which* rows a run produces — chunking is content-invariant
    — only how evenly the work spreads.
    """
    if n_workers <= 1 or num_rows <= 1:
        return None
    return max(1, -(-num_rows // (tasks_per_worker * n_workers)))
