"""Masked Autoencoder for Distribution Estimation (MADE) with residual blocks.

This is the deep autoregressive backbone of ReStore's completion models
(paper §3.1/§3.2, following Germain et al. [14] and the naru implementation
[40] the authors started from): each discrete variable is embedded, masked
dense layers enforce that the *i*-th output distribution depends only on
variables with smaller index, and conditional sampling proceeds by iterative
forward passes.

Two extensions beyond vanilla MADE are required by the paper:

* **Residual connections with ReLU** (§7.1) — all hidden layers share one
  degree assignment so identity skips preserve the autoregressive property.
* **Unmasked context input** — SSAR models feed a deep-sets embedding of the
  fan-out evidence tree; context units carry degree 0 and therefore connect
  to every hidden/output unit.

Variable ordering is *fixed* (natural order).  ReStore's model merging
(§3.4) relies on choosing a topological order of tables up front, so an
order-agnostic MADE is unnecessary.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from . import functional as F
from .layers import Embedding, MaskedLinear, Module
from .tensor import Tensor, concat


def _input_degrees(vocab_sizes: Sequence[int], embed_dim: int, context_dim: int) -> np.ndarray:
    """Degree of every input unit: 0 for context, i+1 for variable i."""
    degrees = [np.zeros(context_dim, dtype=int)]
    for i in range(len(vocab_sizes)):
        degrees.append(np.full(embed_dim, i + 1, dtype=int))
    return np.concatenate(degrees)


def _hidden_degrees(num_variables: int, width: int, with_context: bool) -> np.ndarray:
    """Evenly cycle hidden degrees through MADE's admissible range.

    Without context the standard range is ``1 .. n-1``.  With an unmasked
    context input we additionally allow degree-0 hidden units: they connect
    only to context inputs yet feed *every* output, so even the first
    variable's conditional ``p(x_1 | context)`` can depend on the context.
    """
    min_degree = 0 if with_context else 1
    max_degree = max(num_variables - 1, 1)
    span = max_degree - min_degree + 1
    return (np.arange(width) % span) + min_degree


def _mask(in_degrees: np.ndarray, out_degrees: np.ndarray, strict: bool) -> np.ndarray:
    """Binary connectivity mask; ``strict`` for the output layer (m_out > m_in)."""
    if strict:
        return (out_degrees[None, :] > in_degrees[:, None]).astype(float)
    return (out_degrees[None, :] >= in_degrees[:, None]).astype(float)


class ResidualMADE(Module):
    """MADE over discrete variables with embeddings and residual hidden blocks.

    Parameters
    ----------
    vocab_sizes:
        Cardinalities ``K_1 .. K_n`` of the discretized columns, in the fixed
        autoregressive order (evidence columns first — see
        :mod:`repro.core.merging`).
    embed_dim:
        Width of the learned per-variable value embeddings.
    hidden:
        Hidden widths; all layers past the first form residual blocks and
        therefore must share the first hidden width.
    context_dim:
        Width of the optional unmasked conditioning vector (0 disables it).
    rng:
        Source of initialization randomness.
    """

    def __init__(
        self,
        vocab_sizes: Sequence[int],
        embed_dim: int,
        hidden: Sequence[int],
        rng: np.random.Generator,
        context_dim: int = 0,
    ):
        if not vocab_sizes:
            raise ValueError("MADE needs at least one variable")
        if any(k < 1 for k in vocab_sizes):
            raise ValueError("vocabulary sizes must be >= 1")
        if len(set(hidden)) != 1:
            raise ValueError("residual MADE requires equal hidden widths")

        self.vocab_sizes = list(vocab_sizes)
        self.num_variables = len(vocab_sizes)
        self.embed_dim = embed_dim
        self.context_dim = context_dim

        self.embeddings = [Embedding(k, embed_dim, rng) for k in self.vocab_sizes]

        in_deg = _input_degrees(self.vocab_sizes, embed_dim, context_dim)
        hid_deg = _hidden_degrees(self.num_variables, hidden[0], with_context=context_dim > 0)

        self.input_layer = MaskedLinear(
            len(in_deg), hidden[0], _mask(in_deg, hid_deg, strict=False), rng
        )
        self.residual_layers = [
            MaskedLinear(hidden[0], hidden[0], _mask(hid_deg, hid_deg, strict=False), rng)
            for _ in hidden[1:]
        ]

        out_deg = np.concatenate(
            [np.full(k, i + 1, dtype=int) for i, k in enumerate(self.vocab_sizes)]
        )
        self.output_layer = MaskedLinear(
            hidden[0], int(out_deg.size), _mask(hid_deg, out_deg, strict=True), rng
        )
        self._logit_offsets = np.concatenate([[0], np.cumsum(self.vocab_sizes)])

    # ------------------------------------------------------------------
    # Forward / likelihood
    # ------------------------------------------------------------------
    def _encode_inputs(self, x: np.ndarray, context: Optional[Tensor]) -> Tensor:
        parts: List[Tensor] = []
        if self.context_dim:
            if context is None:
                raise ValueError("model was built with context_dim > 0; pass context")
            parts.append(context)
        for i, emb in enumerate(self.embeddings):
            parts.append(emb(x[:, i]))
        return concat(parts, axis=-1)

    def forward(self, x: np.ndarray, context: Optional[Tensor] = None) -> Tensor:
        """All per-variable logits, concatenated to ``(batch, sum(K_i))``.

        ``x`` is an integer matrix ``(batch, n)``.  Entries for variables that
        have not been sampled yet may hold any valid index — masking
        guarantees they cannot influence their own (or earlier) outputs.
        """
        x = np.asarray(x)
        if x.ndim != 2 or x.shape[1] != self.num_variables:
            raise ValueError(
                f"expected input of shape (batch, {self.num_variables}), got {x.shape}"
            )
        h = self.input_layer(self._encode_inputs(x, context)).relu()
        for layer in self.residual_layers:
            h = layer(h).relu() + h
        return self.output_layer(h)

    def logits_for(self, outputs: Tensor, variable: int) -> Tensor:
        """Slice the logits of one variable out of a forward result."""
        start = int(self._logit_offsets[variable])
        stop = int(self._logit_offsets[variable + 1])
        return outputs[:, start:stop]

    def nll(
        self,
        x: np.ndarray,
        context: Optional[Tensor] = None,
        weights: Optional[np.ndarray] = None,
        variables: Optional[Sequence[int]] = None,
        variable_weights: Optional[dict] = None,
    ) -> Tensor:
        """Mean negative log-likelihood ``-log p(x)`` (optionally re-weighted).

        ``variables`` restricts the sum to a subset of conditionals — used
        when evidence columns are always observed and their likelihood terms
        are irrelevant to the completion task.  ``variable_weights`` maps a
        variable index to its own per-example weight vector, overriding
        ``weights``; path models use this to undo the size bias that joins
        introduce (a parent appearing once per child would otherwise have
        its marginal and tuple-factor conditionals weighted by child count).
        """
        outputs = self.forward(x, context)
        selected = range(self.num_variables) if variables is None else variables
        total: Optional[Tensor] = None
        for i in selected:
            w = weights
            if variable_weights is not None and i in variable_weights:
                w = variable_weights[i]
            term = F.cross_entropy(self.logits_for(outputs, i), x[:, i], w)
            total = term if total is None else total + term
        if total is None:
            raise ValueError("nll over an empty variable set")
        return total

    def per_example_nll(self, x: np.ndarray, context: Optional[Tensor] = None,
                        variables: Optional[Sequence[int]] = None) -> np.ndarray:
        """Per-row NLL without building a gradient graph (evaluation only)."""
        outputs = self.forward(x, context).data
        selected = range(self.num_variables) if variables is None else variables
        total = np.zeros(len(x))
        for i in selected:
            start, stop = int(self._logit_offsets[i]), int(self._logit_offsets[i + 1])
            total += F.nll_from_logits(outputs[:, start:stop], x[:, i])
        return total

    # ------------------------------------------------------------------
    # Sampling / conditionals
    # ------------------------------------------------------------------
    def conditional_probs(
        self,
        x: np.ndarray,
        variable: int,
        context: Optional[Tensor] = None,
    ) -> np.ndarray:
        """``P(x_variable | x_<variable>, context)`` as a ``(batch, K)`` array."""
        outputs = self.forward(x, context).data
        start, stop = int(self._logit_offsets[variable]), int(self._logit_offsets[variable + 1])
        return F.softmax(outputs[:, start:stop], axis=-1)

    def sample(
        self,
        evidence: np.ndarray,
        start_variable: int,
        rng: np.random.Generator,
        context: Optional[Tensor] = None,
        temperature: float = 1.0,
        stop_variable: Optional[int] = None,
        draws: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Iterative forward sampling of variables ``start_variable .. stop-1``.

        ``evidence`` is ``(batch, n)``; columns before ``start_variable`` are
        treated as observed and copied through, columns in
        ``[start_variable, stop_variable)`` are overwritten with samples from
        the learned conditionals (paper §3.1).  ``stop_variable`` defaults to
        all remaining variables; ReStore's hop-by-hop incompleteness join
        samples one table slot at a time.  ``draws`` optionally supplies the
        ``(batch, stop - start)`` uniforms used for the categorical draws
        (the runtime's counter-based streams) instead of ``rng``.
        """
        stop = self.num_variables if stop_variable is None else stop_variable
        if not 0 <= start_variable <= stop <= self.num_variables:
            raise ValueError("sampling range out of bounds")
        x = np.array(evidence, dtype=np.int64, copy=True)
        for step, variable in enumerate(range(start_variable, stop)):
            probs = self.conditional_probs(x, variable, context)
            if temperature != 1.0:
                # Sharpen/flatten in log space to avoid underflow at low T.
                log_probs = np.log(np.maximum(probs, 1e-300)) / temperature
                probs = F.softmax(log_probs, axis=-1)
            u = None if draws is None else draws[:, step]
            x[:, variable] = _sample_rows(probs, rng, u)
        return x

    def compile_inference(self) -> "CompiledMADE":  # noqa: F821 - runtime type
        """Graph-free float32 snapshot (see :class:`repro.runtime.CompiledMADE`)."""
        from ..runtime.compiled import CompiledMADE

        return CompiledMADE(self)

    def trainable_summary(self) -> str:
        """Human-readable one-line description, handy for logging."""
        return (
            f"ResidualMADE(vars={self.num_variables}, params={self.num_parameters()}, "
            f"context_dim={self.context_dim})"
        )


def _sample_rows(
    probs: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    draws: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Vectorized categorical sampling: one draw per row of ``probs``.

    ``draws`` supplies precomputed per-row uniforms (counter-based streams);
    otherwise one uniform per row is taken from ``rng``.  The CDF inversion
    itself is shared with the compiled runtime so both backends stay in
    lockstep (imported lazily: the runtime package imports this module).
    """
    if draws is None:
        if rng is None:
            raise ValueError("_sample_rows needs either rng or draws")
        draws = rng.random(len(probs))
    from ..runtime.rng import sample_categorical

    return sample_categorical(probs, draws)
