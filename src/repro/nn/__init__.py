"""Numpy-based neural substrate: autograd, MADE, deep sets, optimizers.

This package replaces the paper's PyTorch dependency (see DESIGN.md §1) with
a self-contained reverse-mode autodiff engine plus the two architectures
ReStore requires: :class:`ResidualMADE` autoregressive density estimators and
:class:`EvidenceTreeEncoder` deep-sets encoders for fan-out evidence.
"""

from .tensor import Tensor, concat, ones, zeros
from . import functional
from .layers import (
    MLP,
    Embedding,
    Linear,
    MaskedLinear,
    Module,
    ReLU,
    Sequential,
)
from .made import ResidualMADE
from .deepsets import EvidenceTreeEncoder, TreeNodeBatch, TreeNodeSpec
from .optim import SGD, Adam, AdamArrays, Optimizer, clip_grad_norm, clip_grad_norm_arrays
from .train import (
    TRAIN_BACKENDS,
    AutogradStepper,
    TrainConfig,
    TrainResult,
    TrainStepper,
    batch_bounds,
    train,
)

__all__ = [
    "Tensor",
    "concat",
    "zeros",
    "ones",
    "functional",
    "Module",
    "Linear",
    "MaskedLinear",
    "Embedding",
    "ReLU",
    "Sequential",
    "MLP",
    "ResidualMADE",
    "EvidenceTreeEncoder",
    "TreeNodeSpec",
    "TreeNodeBatch",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamArrays",
    "clip_grad_norm",
    "clip_grad_norm_arrays",
    "TRAIN_BACKENDS",
    "TrainConfig",
    "TrainResult",
    "TrainStepper",
    "AutogradStepper",
    "batch_bounds",
    "train",
]
