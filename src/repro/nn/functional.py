"""Differentiable operations beyond ``Tensor`` methods.

These cover the needs of ReStore's completion models:

* :func:`embedding` — row gather from a learned embedding matrix,
* :func:`segment_sum` — sum-pooling of a variable number of child tuples per
  evidence tuple (the deep-sets aggregation of SSAR models),
* :func:`log_softmax` / :func:`cross_entropy` — the per-column categorical
  likelihood that MADE maximizes,
* :func:`softmax` — inference-time distribution extraction for sampling and
  confidence estimation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows ``weight[indices]``; gradients scatter-add back.

    Parameters
    ----------
    weight:
        ``(vocab, dim)`` embedding matrix (usually ``requires_grad=True``).
    indices:
        Integer array of arbitrary shape; output has shape
        ``indices.shape + (dim,)``.
    """
    idx = np.asarray(indices)
    if idx.dtype.kind not in "iu":
        raise TypeError(f"embedding indices must be integers, got {idx.dtype}")
    data = weight.data[idx]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(weight.data)
        np.add.at(full, idx.reshape(-1), grad.reshape(-1, weight.data.shape[1]))
        weight._accum(full)

    return Tensor._make(data, (weight,), backward)


def segment_sum(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``values`` into ``num_segments`` buckets.

    ``values`` is ``(n, dim)`` and ``segment_ids`` is ``(n,)`` with entries in
    ``[0, num_segments)``.  Row ``i`` of the output is the sum of all value
    rows whose segment id equals ``i``; empty segments are zero.  This is the
    permutation-invariant sum pooling used by the deep-sets tree encoder.
    """
    ids = np.asarray(segment_ids)
    if ids.ndim != 1 or len(ids) != len(values.data):
        raise ValueError("segment_ids must be 1-D and aligned with values rows")
    data = np.zeros((num_segments, values.data.shape[1]), dtype=values.data.dtype)
    np.add.at(data, ids, values.data)

    def backward(grad: np.ndarray) -> None:
        values._accum(grad[ids])

    return Tensor._make(data, (values,), backward)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(logits))`` along ``axis``."""
    shifted = logits.data - logits.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - log_norm
    probs = np.exp(data)

    def backward(grad: np.ndarray) -> None:
        # d/dx log_softmax = I - softmax broadcast over the grad sum.
        logits._accum(grad - probs * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(data, (logits,), backward)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Plain-numpy stable softmax for inference-time use (no gradient)."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Mean categorical cross-entropy of integer ``targets`` under ``logits``.

    Parameters
    ----------
    logits:
        ``(batch, classes)`` unnormalized scores.
    targets:
        ``(batch,)`` integer class labels.
    weights:
        Optional ``(batch,)`` non-negative per-example weights; the loss is a
        weighted mean.  Used when some training rows carry fractional
        multiplicity (e.g. reweighted fan-out evidence).
    """
    log_probs = log_softmax(logits, axis=-1)
    batch = np.arange(len(targets))
    picked = log_probs[batch, np.asarray(targets)]
    if weights is None:
        return -picked.mean()
    weight_arr = np.asarray(weights, dtype=float)
    total = float(weight_arr.sum())
    if total <= 0:
        raise ValueError("cross_entropy weights must have positive sum")
    return -(picked * Tensor(weight_arr)).sum() * (1.0 / total)


def nll_from_logits(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-example negative log-likelihood (numpy-only, for evaluation)."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    return -log_probs[np.arange(len(targets)), np.asarray(targets)]
