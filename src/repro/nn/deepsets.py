"""Deep-sets tree encoder for schema-structured (SSAR) completion models.

Paper §3.3: SSAR models incorporate *fan-out evidence* — for each evidence
tuple, a tree of related tuples gathered by an acyclic walk over the schema
graph (e.g. all schools of a neighborhood, or the already-available
apartments used as *self-evidence*).  The tree is encoded with sum-pooling
over child embeddings followed by a feed-forward network, which Zaheer et
al. [42] show is a universal approximator for permutation-invariant
functions.  Weights are shared between tuples of the same table.

The encoding is fully batched: every table in the tree contributes one
integer matrix of discretized rows plus a ``parent_ids`` vector aligning each
row with its parent, and pooling is a differentiable segment sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from . import functional as F
from .layers import Embedding, Linear, Module
from .tensor import Tensor, concat


@dataclass
class TreeNodeSpec:
    """Static description of one table appearing in an evidence tree.

    Attributes
    ----------
    name:
        Unique node label (normally the table name, possibly suffixed when a
        table appears several times in one walk).
    vocab_sizes:
        Cardinalities of the discretized columns fed into the encoder.
    children:
        Nested fan-out relations reached by continuing the acyclic walk.
    """

    name: str
    vocab_sizes: List[int]
    children: List["TreeNodeSpec"] = field(default_factory=list)

    def all_names(self) -> List[str]:
        names = [self.name]
        for child in self.children:
            names.extend(child.all_names())
        return names


@dataclass
class TreeNodeBatch:
    """Batched rows of one tree node plus their alignment to parent rows.

    ``values`` is an ``(n_rows, n_cols)`` integer matrix of discretized
    attribute values; ``parent_ids[i]`` is the row index of the parent this
    tuple hangs off (for the children of the evidence tuples themselves the
    parent index is the evidence-batch position).
    """

    values: np.ndarray
    parent_ids: np.ndarray
    children: Dict[str, "TreeNodeBatch"] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.int64)
        if self.values.ndim != 2:
            raise ValueError("TreeNodeBatch.values must be 2-D (rows x columns)")
        self.parent_ids = np.asarray(self.parent_ids, dtype=np.int64)
        if self.parent_ids.shape != (len(self.values),):
            raise ValueError("parent_ids must align with value rows")

    @property
    def num_rows(self) -> int:
        return len(self.values)


class _NodeEncoder(Module):
    """Per-table phi/rho pair with shared column embeddings."""

    def __init__(self, spec: TreeNodeSpec, embed_dim: int, out_dim: int,
                 rng: np.random.Generator):
        self.spec = spec
        self.embeddings = [Embedding(k, embed_dim, rng) for k in spec.vocab_sizes]
        self.child_encoders = [
            _NodeEncoder(child, embed_dim, out_dim, rng) for child in spec.children
        ]
        feature_dim = embed_dim * len(spec.vocab_sizes) + out_dim * len(spec.children)
        self.phi = Linear(max(feature_dim, 1), out_dim, rng)
        self.rho = Linear(out_dim, out_dim, rng)
        self._feature_dim = feature_dim

    def encode(self, batch: TreeNodeBatch, num_parents: int) -> Tensor:
        """Pool this node's rows into a per-parent context ``(num_parents, d)``."""
        parts: List[Tensor] = [
            emb(batch.values[:, i]) for i, emb in enumerate(self.embeddings)
        ]
        for child_encoder in self.child_encoders:
            child_batch = batch.children.get(child_encoder.spec.name)
            if child_batch is None:
                child_batch = TreeNodeBatch(
                    values=np.zeros((0, len(child_encoder.spec.vocab_sizes)), dtype=np.int64),
                    parent_ids=np.zeros(0, dtype=np.int64),
                )
            parts.append(child_encoder.encode(child_batch, batch.num_rows))
        if parts:
            features = concat(parts, axis=-1)
        else:  # a node with no columns and no children: constant feature
            features = Tensor(np.zeros((batch.num_rows, 1)))
        encoded = self.phi(features).relu()
        pooled = F.segment_sum(encoded, batch.parent_ids, num_parents)
        return self.rho(pooled).relu()


class EvidenceTreeEncoder(Module):
    """Encode a forest of fan-out evidence into one context vector per tuple.

    The SSAR model concatenates the contexts of all top-level fan-out
    relations and feeds the result into the MADE backbone as an unmasked
    (degree-0) conditioning input.

    Parameters
    ----------
    specs:
        One :class:`TreeNodeSpec` per top-level fan-out relation of the
        evidence tuple.
    embed_dim:
        Embedding width shared with the completion model's value embeddings.
    node_dim:
        Output width of each per-relation context.
    """

    def __init__(self, specs: Sequence[TreeNodeSpec], embed_dim: int, node_dim: int,
                 rng: np.random.Generator):
        if not specs:
            raise ValueError("EvidenceTreeEncoder needs at least one tree spec")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tree spec names: {names}")
        self.specs = list(specs)
        self.node_dim = node_dim
        self.encoders = [_NodeEncoder(spec, embed_dim, node_dim, rng) for spec in specs]

    @property
    def context_dim(self) -> int:
        return self.node_dim * len(self.specs)

    def forward(self, batches: Dict[str, TreeNodeBatch], batch_size: int) -> Tensor:
        """Contexts ``(batch_size, context_dim)`` for a batch of evidence tuples.

        ``batches`` maps top-level spec names to their row batches; missing
        relations are treated as empty (all-zero pooled contribution).
        """
        parts: List[Tensor] = []
        for encoder in self.encoders:
            batch = batches.get(encoder.spec.name)
            if batch is None:
                batch = TreeNodeBatch(
                    values=np.zeros((0, len(encoder.spec.vocab_sizes)), dtype=np.int64),
                    parent_ids=np.zeros(0, dtype=np.int64),
                )
            parts.append(encoder.encode(batch, batch_size))
        return concat(parts, axis=-1)

    def compile_inference(self) -> "CompiledTreeEncoder":  # noqa: F821
        """Graph-free float32 snapshot (see :class:`repro.runtime.CompiledTreeEncoder`)."""
        from ..runtime.compiled import CompiledTreeEncoder

        return CompiledTreeEncoder(self)
