"""Gradient-descent optimizers for the numpy autograd engine."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base class holding parameter references."""

    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters: List[Tensor] = [p for p in parameters if p.requires_grad]
        if not self.parameters:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-2,
                 momentum: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction — the paper's de-facto choice
    for training MADE-style models."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging training stability).
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total
