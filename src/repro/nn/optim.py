"""Gradient-descent optimizers for the numpy autograd engine.

The Adam update itself is factored into :class:`AdamArrays`, an
ndarray-state stepper shared by both training backends: the float64
autograd path wraps it behind the :class:`Adam` ``Optimizer`` interface,
and the fused float32 runtime (:mod:`repro.runtime.training`) drives it
directly on a flat parameter buffer.  One update rule, two substrates.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base class holding parameter references."""

    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters: List[Tensor] = [p for p in parameters if p.requires_grad]
        if not self.parameters:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-2,
                 momentum: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class AdamArrays:
    """Adam (Kingma & Ba) with bias correction, operating on plain ndarrays.

    Holds the first/second-moment state for a fixed list of parameter
    arrays (moment buffers match each parameter's dtype, so a float32
    parameter buffer gets float32 state).  ``step`` updates the parameter
    arrays in place; a ``None`` gradient skips that parameter but the step
    count still advances, matching the classic per-optimizer bias
    correction.
    """

    def __init__(self, parameters: Sequence[np.ndarray], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p) for p in parameters]
        self._v = [np.zeros_like(p) for p in parameters]
        self._scratch = [np.empty_like(p) for p in parameters]

    def step(
        self,
        parameters: Sequence[np.ndarray],
        gradients: Sequence[Optional[np.ndarray]],
    ) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, grad, m, v, scratch in zip(
            parameters, gradients, self._m, self._v, self._scratch
        ):
            if grad is None:
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * param
            # Classic Adam, phrased as in-place updates through one scratch
            # buffer — the flat-buffer training path calls this every
            # mini-batch, so intermediate allocations matter.
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=scratch)
            m += scratch
            v *= self.beta2
            np.multiply(grad, grad, out=scratch)
            scratch *= 1.0 - self.beta2
            v += scratch
            np.multiply(v, 1.0 / bias2, out=scratch)
            np.sqrt(scratch, out=scratch)
            scratch += self.eps
            np.divide(m, scratch, out=scratch)
            scratch *= self.lr / bias1
            param -= scratch


class Adam(Optimizer):
    """Adam over autograd :class:`Tensor` parameters — the paper's de-facto
    choice for training MADE-style models.  Delegates the update math to
    :class:`AdamArrays` so both training backends share one rule."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        self._arrays = AdamArrays(
            [p.data for p in self.parameters],
            lr=lr, betas=betas, eps=eps, weight_decay=weight_decay,
        )

    @property
    def lr(self) -> float:
        return self._arrays.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self._arrays.lr = value

    def step(self) -> None:
        self._arrays.step(
            [p.data for p in self.parameters],
            [p.grad for p in self.parameters],
        )


def clip_grad_norm_arrays(
    gradients: Sequence[Optional[np.ndarray]], max_norm: float
) -> float:
    """Scale gradient arrays so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  ``None`` entries are skipped; scaling
    happens in place.
    """
    grads = [g for g in gradients if g is not None]
    total = float(np.sqrt(sum(
        float(np.dot(g.reshape(-1), g.reshape(-1))) for g in grads
    )))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for grad in grads:
            grad *= np.asarray(scale, dtype=grad.dtype)
    return total


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging training stability).
    """
    return clip_grad_norm_arrays([p.grad for p in parameters], max_norm)
