"""Neural network layers built on the autograd :class:`~repro.nn.tensor.Tensor`.

The layer set intentionally mirrors what the ReStore paper needs and nothing
more: dense layers (plain and MADE-masked), embeddings, and small containers.
All parameters are ``float64`` tensors with ``requires_grad=True``.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from . import functional as F
from .tensor import Tensor


class Module:
    """Minimal module base class with recursive parameter discovery."""

    def parameters(self) -> Iterator[Tensor]:
        """Yield all trainable tensors owned by this module (recursively)."""
        for _name, param in self.named_parameters():
            yield param

    def named_parameters(self) -> Iterator[tuple]:
        """Yield ``(name, tensor)`` for every trainable parameter.

        Names are attribute paths ("made.embeddings.0.weight") built from
        the module's construction structure, so the same architecture always
        produces the same names — the stable identity that serialized
        artifacts (:mod:`repro.serving.artifacts`) key model weights on.
        Shared parameters appear once, under the first path reaching them.
        """
        seen: set[int] = set()
        for attr, value in self.__dict__.items():
            yield from _named_parameters_of(value, attr, seen)

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for param in self.parameters():
            param.grad = None

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict:
        """Name → array snapshot of all parameters (copy)."""
        return {
            name: np.array(p.data, copy=True)
            for name, p in self.named_parameters()
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore parameters saved by :meth:`state_dict`.

        Entries are matched by parameter name; missing, unexpected or
        shape-mismatched entries raise ``ValueError`` naming the offender.
        Legacy order-based dicts (``param_0`` … ``param_N``, the format
        before parameters were named) are still accepted.
        """
        named = list(self.named_parameters())
        if state and all(k.startswith("param_") for k in state):
            self._load_legacy_state_dict(state, [p for _n, p in named])
            return
        params = dict(named)
        missing = sorted(set(params) - set(state))
        unexpected = sorted(set(state) - set(params))
        if missing or unexpected:
            raise ValueError(
                f"state dict does not match model parameters "
                f"(missing {missing or 'none'}, unexpected {unexpected or 'none'})"
            )
        for name, param in named:
            value = state[name]
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for parameter {name!r}: "
                    f"state {value.shape} vs model {param.data.shape}"
                )
            param.data[...] = value

    def _load_legacy_state_dict(self, state: dict, params: List[Tensor]) -> None:
        if len(params) != len(state):
            raise ValueError(
                f"state dict has {len(state)} entries, model has {len(params)} parameters"
            )
        for i, param in enumerate(params):
            value = state[f"param_{i}"]
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for parameter {i}")
            param.data[...] = value

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def compile_inference(self):
        """Snapshot this module into a graph-free float32 inference callable.

        The result evaluates forwards on plain numpy arrays without
        recording autograd closures; see :mod:`repro.runtime.compiled`.
        Compiled snapshots do not track later parameter updates — recompile
        after further training.
        """
        from ..runtime.compiled import compile_module

        return compile_module(self)


def _named_parameters_of(value, prefix: str, seen: set[int]) -> Iterator[tuple]:
    if isinstance(value, Tensor):
        if value.requires_grad and id(value) not in seen:
            seen.add(id(value))
            yield prefix, value
    elif isinstance(value, Module):
        for name, param in value.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield f"{prefix}.{name}", param
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            yield from _named_parameters_of(item, f"{prefix}.{i}", seen)
    elif isinstance(value, dict):
        for key, item in value.items():
            yield from _named_parameters_of(item, f"{prefix}.{key}", seen)


def _kaiming_uniform(rng: np.random.Generator, fan_in: int, shape) -> np.ndarray:
    """He-style uniform initialization appropriate for ReLU networks."""
    bound = float(np.sqrt(6.0 / max(fan_in, 1)))
    return rng.uniform(-bound, bound, size=shape)


class Linear(Module):
    """Affine transform ``x @ W + b`` with He-uniform initialization."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True):
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            _kaiming_uniform(rng, in_features, (in_features, out_features)),
            requires_grad=True, name="linear.weight",
        )
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True, name="linear.bias")
            if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class MaskedLinear(Module):
    """A dense layer whose weight is elementwise-multiplied by a fixed mask.

    This is the MADE [Germain et al. 2015] building block: the binary mask
    encodes autoregressive connectivity so that output unit *j* only sees
    input units whose variable index precedes (or equals, for hidden layers)
    the degree assigned to *j*.
    """

    def __init__(self, in_features: int, out_features: int, mask: np.ndarray,
                 rng: np.random.Generator, bias: bool = True):
        if mask.shape != (in_features, out_features):
            raise ValueError(
                f"mask shape {mask.shape} != ({in_features}, {out_features})"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.mask = Tensor(mask.astype(float))  # constant, no grad
        self.weight = Tensor(
            _kaiming_uniform(rng, in_features, (in_features, out_features)),
            requires_grad=True, name="masked_linear.weight",
        )
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True, name="masked_linear.bias")
            if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ (self.weight * self.mask)
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Learned per-value embeddings, as used for attribute values in ReStore."""

    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator):
        self.vocab_size = vocab_size
        self.dim = dim
        scale = 1.0 / np.sqrt(dim)
        self.weight = Tensor(
            rng.normal(0.0, scale, size=(vocab_size, dim)),
            requires_grad=True, name="embedding.weight",
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(self.weight, indices)


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module):
        self.modules: List[Module] = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x


class MLP(Module):
    """Feed-forward ReLU network with configurable hidden widths."""

    def __init__(self, in_features: int, hidden: Sequence[int], out_features: int,
                 rng: np.random.Generator):
        widths = [in_features, *hidden]
        layers: List[Module] = []
        for fan_in, fan_out in zip(widths[:-1], widths[1:]):
            layers.append(Linear(fan_in, fan_out, rng))
            layers.append(ReLU())
        layers.append(Linear(widths[-1], out_features, rng))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
