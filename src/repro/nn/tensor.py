"""Reverse-mode automatic differentiation on top of numpy arrays.

This module is the foundation of the neural substrate used by ReStore's
completion models.  The paper implements its models in PyTorch; since the
reproduction environment is CPU/numpy-only, we provide a small but complete
autograd engine with the exact semantics needed by MADE-style autoregressive
models and deep-sets tree encoders:

* broadcasting-aware elementwise arithmetic,
* matrix multiplication,
* gather / scatter primitives (embeddings, segment sums — see ``functional``),
* a ``backward()`` pass over the dynamically recorded graph.

Each operation records a closure that accumulates gradients directly into its
parents' ``.grad`` buffers; ``backward()`` walks the graph in reverse
topological order.  All computation uses ``float64`` which keeps
finite-difference gradient checks tight.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

Arrayish = Union["Tensor", np.ndarray, float, int]

DEFAULT_DTYPE = np.float64


def _as_array(value: Arrayish, dtype=DEFAULT_DTYPE) -> np.ndarray:
    """Coerce a scalar/sequence/Tensor into a numpy array of the engine dtype."""
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape``, undoing numpy broadcasting.

    Broadcasting may both prepend dimensions and stretch size-1 axes; the
    adjoint of a broadcast is a sum over the broadcasted axes.
    """
    if grad.shape == shape:
        return grad
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the autograd graph wrapping a numpy array.

    Parameters
    ----------
    data:
        Numeric payload (scalar, sequence or ndarray).
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    name:
        Optional label used in debugging output.
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_backward_fn", "_parents")

    def __init__(self, data: Arrayish, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self.name = name
        self._backward_fn: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """A tensor sharing this data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False, name=self.name)

    # ------------------------------------------------------------------
    # Graph construction / backward
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Optional[Callable[[np.ndarray], None]],
    ) -> "Tensor":
        """Create an interior node; gradient tracking only if any parent needs it."""
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward_fn = backward_fn
        return out

    def _accum(self, grad: np.ndarray, shape: Optional[Tuple[int, ...]] = None) -> None:
        """Accumulate an upstream gradient (unbroadcasting to ``shape``)."""
        if not self.requires_grad:
            return
        if shape is not None:
            grad = _unbroadcast(grad, shape)
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to ones, which is the conventional seed for scalar
        losses.  Gradients accumulate into ``.grad`` of every tensor with
        ``requires_grad=True`` reachable from this node.
        """
        seed = np.ones_like(self.data) if grad is None else np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accum(seed)
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)
                # Interior gradients are not needed after propagation; free
                # them so that repeated backward calls start clean.
                node.grad = None

    # ------------------------------------------------------------------
    # Arithmetic (broadcasting aware)
    # ------------------------------------------------------------------
    def __add__(self, other: Arrayish) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accum(grad, self.shape)
            other_t._accum(grad, other_t.shape)

        return Tensor._make(data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: Arrayish) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other_t)

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return Tensor(other) + (-self)

    def __mul__(self, other: Arrayish) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accum(grad * other_t.data, self.shape)
            other_t._accum(grad * self.data, other_t.shape)

        return Tensor._make(data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return self * other_t.pow(-1.0)

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return Tensor(other) * self.pow(-1.0)

    def pow(self, exponent: float) -> "Tensor":
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accum(grad * exponent * self.data ** (exponent - 1.0), self.shape)

        return Tensor._make(data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        return self.pow(exponent)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accum(grad @ other_t.data.T)
            if other_t.requires_grad:
                other_t._accum(self.data.T @ grad)

        return Tensor._make(data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accum(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self) -> "Tensor":
        data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accum(grad.T)

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":  # noqa: N802 - numpy-style alias
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accum(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accum(np.broadcast_to(g, self.data.shape))

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accum(grad * mask)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accum(grad * (1.0 - data * data))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accum(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accum(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accum(grad / self.data)

        return Tensor._make(data, (self,), backward)


def zeros(shape: Sequence[int], requires_grad: bool = False) -> Tensor:
    """A zero-filled tensor of the engine dtype."""
    return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(shape: Sequence[int], requires_grad: bool = False) -> Tensor:
    """A one-filled tensor of the engine dtype."""
    return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing via slicing."""
    tensor_list = list(tensors)
    data = np.concatenate([t.data for t in tensor_list], axis=axis)
    norm_axis = axis if axis >= 0 else data.ndim + axis
    sizes = [t.data.shape[norm_axis] for t in tensor_list]
    offsets = np.concatenate([[0], np.cumsum(sizes)])

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensor_list, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[norm_axis] = slice(int(start), int(stop))
            tensor._accum(grad[tuple(index)])

    return Tensor._make(data, tensor_list, backward)
