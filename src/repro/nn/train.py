"""Mini-batch training loop with validation-based early stopping.

The trainer is deliberately functional: the epoch/early-stopping machinery
is generic over a :class:`TrainStepper` — the *training backend* that owns
one optimization step, held-out evaluation and parameter snapshots.  Two
backends exist:

* ``"autograd"`` — the reference oracle: closure-built float64 graphs from
  a differentiable ``loss_fn(indices)`` plus an ``eval_fn(indices)``
  (:class:`AutogradStepper`, constructed automatically when ``train`` is
  called with the two callables).
* ``"fused"`` — hand-derived fused forward+backward kernels over a flat
  float32 parameter buffer (:class:`repro.runtime.training.FusedTrainStepper`),
  the default for completion-model fitting.

The held-out validation loss doubles as the paper's *model-selection
criterion* (§5, Fig. 5b): models whose attributes are unpredictable from the
evidence show a high test loss and are pruned before completion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..obs import trace
from .layers import Module
from .optim import Adam, clip_grad_norm
from .tensor import Tensor

#: Recognized training backends; validated at config construction time so a
#: typo fails before hours of training, not after.
TRAIN_BACKENDS = ("fused", "autograd")


@dataclass
class TrainConfig:
    """Hyper-parameters of one training run.

    ``backend`` selects the training substrate: ``"fused"`` (hand-derived
    float32 forward+backward kernels, the default) or ``"autograd"`` (the
    float64 reference engine).  Both follow the same batch schedule and
    Adam rule; results agree up to float32 rounding.  The knob is honored
    by callers that can build a fused stepper (completion-model ``fit``);
    :func:`train` invoked with bare loss closures always runs autograd and
    stamps the result accordingly.
    """

    epochs: int = 20
    batch_size: int = 256
    lr: float = 5e-3
    weight_decay: float = 0.0
    val_fraction: float = 0.1
    patience: int = 5
    grad_clip: float = 5.0
    seed: int = 0
    min_epochs: int = 3
    verbose: bool = False
    backend: str = "fused"

    def __post_init__(self) -> None:
        if self.backend not in TRAIN_BACKENDS:
            raise ValueError(
                f"backend must be one of {TRAIN_BACKENDS}, got {self.backend!r}"
            )


@dataclass
class TrainResult:
    """Loss trajectory and timing of a training run."""

    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    best_val_loss: float = float("inf")
    epochs_run: int = 0
    wall_time_s: float = 0.0
    val_indices: Optional[np.ndarray] = None
    backend: str = "autograd"
    epoch_wall_times_s: List[float] = field(default_factory=list)
    #: True when training warm-started from already-fitted parameters
    #: (incremental fine-tuning) instead of a fresh initialization.
    warm_start: bool = False

    @property
    def final_train_loss(self) -> float:
        return self.train_losses[-1] if self.train_losses else float("nan")


class TrainStepper:
    """One training backend: step/evaluate/snapshot over a fixed model.

    ``step`` performs a full optimization step (forward, backward, clip,
    update) on a batch of example indices and returns the batch loss;
    ``evaluate`` returns the mean held-out per-example NLL; ``snapshot`` /
    ``restore`` capture and reinstate the current parameters (opaque to the
    loop — each backend chooses its own representation); ``finalize`` runs
    once after training, e.g. to write a float32 buffer back into the
    module's float64 tensors.
    """

    backend = "base"

    def step(self, indices: np.ndarray) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def evaluate(self, indices: np.ndarray) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def snapshot(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def restore(self, state) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def finalize(self) -> None:
        return None


class AutogradStepper(TrainStepper):
    """The float64 reference backend: graph-building loss closures."""

    backend = "autograd"

    def __init__(
        self,
        model: Module,
        loss_fn: Callable[[np.ndarray], Tensor],
        eval_fn: Callable[[np.ndarray], float],
        config: "TrainConfig",
    ):
        self.model = model
        self.loss_fn = loss_fn
        self.eval_fn = eval_fn
        self.grad_clip = config.grad_clip
        self.optimizer = Adam(
            model.parameters(), lr=config.lr, weight_decay=config.weight_decay
        )

    def step(self, indices: np.ndarray) -> float:
        self.optimizer.zero_grad()
        loss = self.loss_fn(indices)
        loss.backward()
        clip_grad_norm(self.optimizer.parameters, self.grad_clip)
        self.optimizer.step()
        return loss.item()

    def evaluate(self, indices: np.ndarray) -> float:
        return self.eval_fn(indices)

    def snapshot(self):
        return self.model.state_dict()

    def restore(self, state) -> None:
        self.model.load_state_dict(state)


def batch_bounds(num_rows: int, batch_size: int) -> List[Tuple[int, int]]:
    """Mini-batch ``[start, stop)`` bounds covering all ``num_rows`` rows.

    A trailing remainder of fewer than 2 rows is folded into the previous
    batch (when one exists) instead of being dropped, so every training row
    contributes each epoch — the old loop silently skipped a 1-row
    remainder, starving ``len(train) % batch_size == 1`` workloads of one
    example per epoch.
    """
    bounds = list(range(0, num_rows, batch_size)) + [num_rows]
    if len(bounds) >= 3 and bounds[-1] - bounds[-2] < 2:
        del bounds[-2]
    return list(zip(bounds[:-1], bounds[1:]))


def train(
    model: Module,
    num_examples: int,
    loss_fn: Optional[Callable[[np.ndarray], Tensor]] = None,
    eval_fn: Optional[Callable[[np.ndarray], float]] = None,
    config: Optional[TrainConfig] = None,
    stepper: Optional[TrainStepper] = None,
) -> TrainResult:
    """Fit ``model`` by Adam on mini-batches of example indices.

    Parameters
    ----------
    model:
        The module whose parameters are optimized.
    num_examples:
        Total number of training rows; indices ``0 .. num_examples-1`` are
        split into train/validation once, deterministically from the seed.
    loss_fn:
        Maps an index batch to a scalar loss :class:`Tensor`
        (graph-building).  Required unless a ``stepper`` is supplied.
    eval_fn:
        Maps an index batch to a float loss (no gradient bookkeeping).
        Required unless a ``stepper`` is supplied.
    config:
        Training hyper-parameters; defaults are tuned for the scaled-down
        reproduction datasets.
    stepper:
        Optional pre-built training backend.  When omitted, an
        :class:`AutogradStepper` is constructed from the two callables and
        the run executes on the autograd engine *regardless of*
        ``config.backend`` — generic closures cannot be fused, so backend
        dispatch is the caller's job (for completion models:
        :meth:`repro.core.models._CompletionModelBase.fit`).  The returned
        ``TrainResult.backend`` always records what actually ran.

    Returns
    -------
    TrainResult with the loss history (stamped with the backend name and
    per-epoch wall times); model parameters are restored to the
    best-validation epoch (early stopping with patience).
    """
    cfg = config or TrainConfig()
    if num_examples < 2:
        raise ValueError("need at least 2 examples to train")
    if stepper is None:
        if loss_fn is None or eval_fn is None:
            raise ValueError("train needs either a stepper or loss_fn + eval_fn")
        stepper = AutogradStepper(model, loss_fn, eval_fn, cfg)
    rng = np.random.default_rng(cfg.seed)
    order = rng.permutation(num_examples)
    num_val = max(1, int(num_examples * cfg.val_fraction)) if cfg.val_fraction > 0 else 0
    val_idx, train_idx = order[:num_val], order[num_val:]
    if len(train_idx) == 0:
        train_idx, val_idx = order, order

    result = TrainResult(backend=stepper.backend)
    best_state = None
    epochs_without_improvement = 0
    started = time.perf_counter()

    for epoch in range(cfg.epochs):
        epoch_started = time.perf_counter()
        with trace("train.epoch", epoch=epoch, backend=stepper.backend) as span:
            perm = rng.permutation(train_idx)
            epoch_loss = 0.0
            batches = 0
            for start, stop in batch_bounds(len(perm), cfg.batch_size):
                epoch_loss += stepper.step(perm[start:stop])
                batches += 1
            train_loss = epoch_loss / max(batches, 1)
            result.train_losses.append(train_loss)
            result.epochs_run = epoch + 1

            val_loss = stepper.evaluate(val_idx) if num_val else train_loss
            result.val_losses.append(val_loss)
            span.set("batches", batches)
            span.set("train_loss", round(train_loss, 6))
            span.set("val_loss", round(val_loss, 6))
        result.epoch_wall_times_s.append(time.perf_counter() - epoch_started)
        if cfg.verbose:
            print(f"epoch {epoch + 1:3d}  train {train_loss:.4f}  val {val_loss:.4f}")

        if val_loss < result.best_val_loss - 1e-6:
            result.best_val_loss = val_loss
            best_state = stepper.snapshot()
            epochs_without_improvement = 0
        else:
            epochs_without_improvement += 1
            if epoch + 1 >= cfg.min_epochs and epochs_without_improvement >= cfg.patience:
                break

    if best_state is not None:
        stepper.restore(best_state)
    stepper.finalize()
    result.wall_time_s = time.perf_counter() - started
    result.val_indices = val_idx
    return result
