"""Mini-batch training loop with validation-based early stopping.

The trainer is deliberately functional: it only needs the number of training
rows, a differentiable ``loss_fn(indices)`` and an evaluation
``eval_fn(indices)``.  AR and SSAR completion models wrap their own training
data (integer matrices, fan-out tree batches, per-row weights) and expose
these two callables — see :mod:`repro.core.ar` and :mod:`repro.core.ssar`.

The held-out validation loss doubles as the paper's *model-selection
criterion* (§5, Fig. 5b): models whose attributes are unpredictable from the
evidence show a high test loss and are pruned before completion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .layers import Module
from .optim import Adam, clip_grad_norm
from .tensor import Tensor


@dataclass
class TrainConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 20
    batch_size: int = 256
    lr: float = 5e-3
    weight_decay: float = 0.0
    val_fraction: float = 0.1
    patience: int = 5
    grad_clip: float = 5.0
    seed: int = 0
    min_epochs: int = 3
    verbose: bool = False


@dataclass
class TrainResult:
    """Loss trajectory and timing of a training run."""

    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    best_val_loss: float = float("inf")
    epochs_run: int = 0
    wall_time_s: float = 0.0
    val_indices: Optional[np.ndarray] = None

    @property
    def final_train_loss(self) -> float:
        return self.train_losses[-1] if self.train_losses else float("nan")


def train(
    model: Module,
    num_examples: int,
    loss_fn: Callable[[np.ndarray], Tensor],
    eval_fn: Callable[[np.ndarray], float],
    config: Optional[TrainConfig] = None,
) -> TrainResult:
    """Fit ``model`` by Adam on mini-batches of example indices.

    Parameters
    ----------
    model:
        The module whose parameters are optimized.
    num_examples:
        Total number of training rows; indices ``0 .. num_examples-1`` are
        split into train/validation once, deterministically from the seed.
    loss_fn:
        Maps an index batch to a scalar loss :class:`Tensor` (graph-building).
    eval_fn:
        Maps an index batch to a float loss (no gradient bookkeeping).
    config:
        Training hyper-parameters; defaults are tuned for the scaled-down
        reproduction datasets.

    Returns
    -------
    TrainResult with the loss history; model parameters are restored to the
    best-validation epoch (early stopping with patience).
    """
    cfg = config or TrainConfig()
    if num_examples < 2:
        raise ValueError("need at least 2 examples to train")
    rng = np.random.default_rng(cfg.seed)
    order = rng.permutation(num_examples)
    num_val = max(1, int(num_examples * cfg.val_fraction)) if cfg.val_fraction > 0 else 0
    val_idx, train_idx = order[:num_val], order[num_val:]
    if len(train_idx) == 0:
        train_idx, val_idx = order, order

    optimizer = Adam(model.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay)
    result = TrainResult()
    best_state: Optional[dict] = None
    epochs_without_improvement = 0
    started = time.perf_counter()

    for epoch in range(cfg.epochs):
        perm = rng.permutation(train_idx)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, len(perm), cfg.batch_size):
            batch = perm[start:start + cfg.batch_size]
            if len(batch) < 2:
                continue
            optimizer.zero_grad()
            loss = loss_fn(batch)
            loss.backward()
            clip_grad_norm(optimizer.parameters, cfg.grad_clip)
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        train_loss = epoch_loss / max(batches, 1)
        result.train_losses.append(train_loss)
        result.epochs_run = epoch + 1

        val_loss = eval_fn(val_idx) if num_val else train_loss
        result.val_losses.append(val_loss)
        if cfg.verbose:
            print(f"epoch {epoch + 1:3d}  train {train_loss:.4f}  val {val_loss:.4f}")

        if val_loss < result.best_val_loss - 1e-6:
            result.best_val_loss = val_loss
            best_state = model.state_dict()
            epochs_without_improvement = 0
        else:
            epochs_without_improvement += 1
            if epoch + 1 >= cfg.min_epochs and epochs_without_improvement >= cfg.patience:
                break

    if best_state is not None:
        model.load_state_dict(best_state)
    result.wall_time_s = time.perf_counter() - started
    result.val_indices = val_idx
    return result
