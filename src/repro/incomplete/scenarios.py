"""Derived incompleteness scenarios for advanced model/path selection.

Paper §5 ("Advanced Selection"): to rank candidate completion models without
access to the true complete database, ReStore *re-removes* tuples from the
already-incomplete dataset using the same removal characteristics, treating
the incomplete dataset as ground truth.  Models that reconstruct the
first-level incomplete data well are assumed to also reconstruct the actual
missing data well.
"""

from __future__ import annotations



from .removal import IncompleteDataset, RemovalSpec, make_incomplete


def derive_selection_scenario(
    dataset: IncompleteDataset,
    tf_keep_rate: float = 1.0,
    seed: int = 0,
) -> IncompleteDataset:
    """Second-level removal: the incomplete database becomes "ground truth".

    Every removal spec of the original dataset is re-applied (same biased
    attribute, keep rate and correlation) to the incomplete data.  The
    returned :class:`IncompleteDataset` has ``complete`` set to the original
    *incomplete* database, so all quality metrics evaluate reconstruction of
    data we actually possess.
    """
    respecs = []
    for spec in dataset.specs:
        respecs.append(
            RemovalSpec(
                table=spec.table,
                biased_attribute=spec.biased_attribute,
                keep_rate=spec.keep_rate,
                removal_correlation=spec.removal_correlation,
                biased_value=spec.biased_value,
            )
        )
    return make_incomplete(
        dataset.incomplete,
        respecs,
        tf_keep_rate=tf_keep_rate,
        drop_dangling_links=True,
        seed=seed + 104729,  # decorrelate from the first-level removal
    )
