"""Scenario composition and derived incompleteness scenarios.

A :class:`ScenarioSpec` bundles everything that turns a complete database
into an incomplete one: one or more :class:`RemovalSpec`s (each carrying a
missingness mechanism), the tuple-factor keep rate, and the dangling-link
cascade policy.  Scenarios are immutable values — experiments re-parameterize
them with :meth:`ScenarioSpec.with_rates` to sweep keep rate × correlation —
and validate themselves against a database before any row is touched.

The second half reproduces paper §5 ("Advanced Selection"): to rank
candidate completion models without access to the true complete database,
ReStore *re-removes* tuples from the already-incomplete dataset using the
same removal characteristics, treating the incomplete dataset as ground
truth.  Models that reconstruct the first-level incomplete data well are
assumed to also reconstruct the actual missing data well.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..relational import Database
from .mechanisms import CASCADING_TYPES
from .removal import IncompleteDataset, RemovalSpec, make_incomplete


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, composable multi-table missingness scenario.

    Attributes
    ----------
    name:
        Scenario identifier (registry key, benchmark label).
    dataset:
        The dataset family the scenario applies to ("synthetic", "housing",
        "movies", ... — informational; instantiation takes any database the
        specs validate against).
    removals:
        One :class:`RemovalSpec` per table made incomplete.  Order matters:
        later specs see the effects of earlier ones (their mechanisms score
        against the partially-removed working database).
    tf_keep_rate:
        Fraction of parents keeping their true tuple factors (paper:
        0.2–0.3).
    drop_dangling_links / dangling_parents:
        The hardened-protocol cascade; see :func:`make_incomplete`.
    description:
        One line of semantics for docs and ``--collect-only`` output.
    """

    name: str
    dataset: str
    removals: Tuple[RemovalSpec, ...]
    tf_keep_rate: float = 1.0
    drop_dangling_links: bool = True
    dangling_parents: Optional[Tuple[str, ...]] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.removals:
            raise ValueError(f"scenario {self.name!r} has no removal specs")
        if not 0.0 <= self.tf_keep_rate <= 1.0:
            raise ValueError("tf_keep_rate must be in [0, 1]")
        tables = [spec.table for spec in self.removals]
        if len(set(tables)) != len(tables):
            raise ValueError(
                f"scenario {self.name!r} has multiple removal specs for one "
                f"table ({tables})"
            )
        self._check_cascade_acyclic()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _cascade_edges(self) -> Tuple[Tuple[str, str], ...]:
        """(child, parent) edges contributed by cluster-removal mechanisms."""
        return tuple(
            (spec.table, spec.mechanism.parent_table)
            for spec in self.removals
            if isinstance(spec.mechanism, CASCADING_TYPES)
        )

    def _check_cascade_acyclic(self) -> None:
        """Reject cascade compositions that chase their own tail.

        FK-cascade specs remove child clusters keyed by a parent table; when
        those parents are themselves removed by a cascade keyed (transitively)
        on the first table, the composition has no well-defined order.
        """
        edges = dict(self._cascade_edges())
        for start in edges:
            chain = [start]
            current = edges.get(start)
            while current is not None:
                if current in chain:
                    raise ValueError(
                        f"scenario {self.name!r} has a cyclic cascade: "
                        f"{' -> '.join([*chain, current])}"
                    )
                chain.append(current)
                current = edges.get(current)

    def validate(self, db: Database) -> None:
        """Raise ``ValueError`` when this scenario cannot apply to ``db``."""
        for spec in self.removals:
            spec.validate_against(db)
        if self.dangling_parents is not None:
            unknown = set(self.dangling_parents) - set(db.table_names())
            if unknown:
                raise ValueError(
                    f"scenario {self.name!r} cascades on unknown tables "
                    f"{sorted(unknown)}"
                )

    # ------------------------------------------------------------------
    # Parameterization
    # ------------------------------------------------------------------
    def with_rates(
        self,
        keep_rate: Optional[float] = None,
        removal_correlation: Optional[float] = None,
    ) -> "ScenarioSpec":
        """The scenario with the *primary* removal re-parameterized.

        The first removal spec is the scenario's swept axis (matching the
        paper's keep rate × correlation grids); secondary removals (e.g. the
        M4/M5 extra movie removal) keep their fixed rates.  For
        mechanism-backed specs the correlation knob maps onto the
        mechanism's own strength parameter
        (:meth:`MissingnessMechanism.with_strength`), so sweeping works
        uniformly across the whole matrix.
        """
        primary, rest = self.removals[0], self.removals[1:]
        updates = {}
        if keep_rate is not None:
            updates["keep_rate"] = keep_rate
        if removal_correlation is not None:
            if primary.mechanism is not None:
                updates["mechanism"] = primary.mechanism.with_strength(
                    removal_correlation
                )
            else:
                updates["removal_correlation"] = removal_correlation
        return replace(self, removals=(replace(primary, **updates), *rest))

    @property
    def primary_table(self) -> str:
        """The table of the swept (first) removal spec."""
        return self.removals[0].table

    def mechanism_names(self) -> Tuple[str, ...]:
        return tuple(spec.mechanism_name for spec in self.removals)

    # ------------------------------------------------------------------
    # Instantiation
    # ------------------------------------------------------------------
    def instantiate(self, db: Database, seed: int = 0) -> IncompleteDataset:
        """Apply the scenario to a complete database."""
        self.validate(db)
        return make_incomplete(
            db,
            list(self.removals),
            tf_keep_rate=self.tf_keep_rate,
            drop_dangling_links=self.drop_dangling_links,
            dangling_parents=self.dangling_parents,
            seed=seed,
        )


def derive_selection_scenario(
    dataset: IncompleteDataset,
    tf_keep_rate: float = 1.0,
    seed: int = 0,
) -> IncompleteDataset:
    """Second-level removal: the incomplete database becomes "ground truth".

    Every removal spec of the original dataset is re-applied — same
    mechanism, biased attribute, keep rate and correlation — to the
    incomplete data (:meth:`RemovalSpec.translated_for` revalidates each
    spec against the incomplete database and raises a clear error when e.g.
    the biased attribute no longer exists there).  The returned
    :class:`IncompleteDataset` has ``complete`` set to the original
    *incomplete* database, so all quality metrics evaluate reconstruction of
    data we actually possess.  Because specs translate rather than mutate,
    re-application composes: deriving from a derived scenario applies the
    identical characteristics once more (the §5 metamorphic property the
    invariant harness checks).
    """
    respecs = [spec.translated_for(dataset.incomplete) for spec in dataset.specs]
    return make_incomplete(
        dataset.incomplete,
        respecs,
        tf_keep_rate=tf_keep_rate,
        drop_dangling_links=dataset.drop_dangling_links,
        dangling_parents=dataset.dangling_parents,
        seed=seed + 104729,  # decorrelate from the first-level removal
    )
