"""Composable missingness mechanisms for biased tuple removal.

The paper's evaluation (§7.2/§7.3) uses a single removal protocol: bias the
removal of one table's tuples on one of its own attributes with a keep-rate
and a correlation knob.  Real incompleteness comes in many more shapes, and
the statistical literature names the important ones (Rubin's taxonomy):

* **MCAR** — missing completely at random; removal independent of the data.
* **MAR** — missing at random *given observed values*: removal probability
  depends on another observed attribute (same table or an FK parent).
* **MNAR** — missing not at random / self-masking: removal depends on the
  value that disappears with the tuple.

This module turns each of these — plus structural variants such as
value-threshold censoring, FK-clustered (cascading) removal and temporal
"recent rows missing" bias — into a :class:`MissingnessMechanism` object
that a :class:`~repro.incomplete.removal.RemovalSpec` carries.  All
mechanisms share one contract:

``removal_scores(db, table, rng)`` returns one float per row of ``table``;
the removal machinery deletes the ``(1 - keep_rate) * n`` highest-scoring
rows.  Scores therefore encode *who goes first*, while the keep rate decides
*how many* go — keeping every mechanism compatible with the paper's exact
keep-rate protocol and with re-removal (the derived selection scenarios of
§5).

Mechanisms validate themselves against a database before use
(:meth:`MissingnessMechanism.validate`), so scenario composition fails fast
with a clear error instead of deep inside numpy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import ClassVar, Dict, Optional, Tuple, Type

import numpy as np

from ..relational import ColumnKind, Database, Table


def _require_column(db: Database, table: str, attribute: str, *, mechanism: str) -> Table:
    """The table, after checking ``attribute`` exists on it (clear errors)."""
    if table not in db.table_names():
        raise ValueError(
            f"{mechanism}: unknown table {table!r}; have {sorted(db.table_names())}"
        )
    tbl = db.table(table)
    if attribute not in tbl:
        raise ValueError(
            f"{mechanism}: table {table!r} has no attribute {attribute!r}; "
            f"have {tbl.column_names}"
        )
    return tbl


def _biased_scores(
    values: np.ndarray,
    kind: ColumnKind,
    correlation: float,
    biased_value: Optional[object],
    rng: np.random.Generator,
) -> np.ndarray:
    """The paper's biased-removal scores (shared by several mechanisms).

    Categorical: with probability ``correlation`` a removal targets rows
    carrying the biased value (default: the mode).  Continuous: mix of
    attribute rank and noise so the removal indicator approximates a target
    Pearson correlation with the attribute.
    """
    if kind is ColumnKind.CATEGORICAL:
        if biased_value is None:
            uniques, counts = np.unique(values, return_counts=True)
            biased_value = uniques[counts.argmax()]
        is_biased = values == biased_value
        jitter = rng.random(len(values))
        targeted = rng.random(len(values)) < correlation
        return np.where(targeted & is_biased, 2.0 + jitter,
                        np.where(~targeted, 1.0 + jitter, jitter))
    arr = np.asarray(values, dtype=float)
    ranks = np.argsort(np.argsort(arr)) / max(len(arr) - 1, 1)
    noise = rng.random(len(arr))
    return correlation * ranks + (1.0 - correlation) * noise


class MissingnessMechanism(ABC):
    """Strategy object deciding *which* rows of a table are removed first.

    Subclasses are immutable dataclasses: specs carrying them stay hashable
    and picklable (the invariant harness round-trips scenarios through
    process pools).
    """

    #: Registry key; also the scenario-matrix vocabulary.
    name: ClassVar[str] = ""

    @abstractmethod
    def removal_scores(
        self, db: Database, table: str, rng: np.random.Generator
    ) -> np.ndarray:
        """One score per row of ``table``; highest scores are removed first."""

    def validate(self, db: Database, table: str) -> None:
        """Raise ``ValueError`` when the mechanism cannot apply to ``table``."""
        if table not in db.table_names():
            raise ValueError(
                f"{self.describe()}: unknown table {table!r}; "
                f"have {sorted(db.table_names())}"
            )

    def with_strength(self, strength: float) -> "MissingnessMechanism":
        """This mechanism with its bias-strength knob set to ``strength``.

        The knob is the mechanism's analogue of the paper's removal
        correlation (``correlation``, ``sharpness``, recency weight, ...),
        so scenario sweeps re-parameterize any mechanism uniformly.
        Mechanisms without a strength knob (MCAR, FK clusters, thresholds)
        return themselves unchanged.
        """
        del strength
        return self

    def describe(self) -> str:
        return self.name or type(self).__name__


@dataclass(frozen=True)
class MCAR(MissingnessMechanism):
    """Missing completely at random — removal independent of every value."""

    name: ClassVar[str] = "mcar"

    def removal_scores(self, db, table, rng):
        return rng.random(len(db.table(table)))


@dataclass(frozen=True)
class MAR(MissingnessMechanism):
    """Missing at random: removal conditioned on another *observed* attribute
    of the same table (the attribute itself survives on the kept rows)."""

    name: ClassVar[str] = "mar"

    attribute: str = ""
    correlation: float = 0.5
    biased_value: Optional[object] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.correlation <= 1.0:
            raise ValueError("correlation must be in [0, 1]")

    def validate(self, db, table):
        _require_column(db, table, self.attribute, mechanism=self.describe())

    def removal_scores(self, db, table, rng):
        tbl = _require_column(db, table, self.attribute, mechanism=self.describe())
        return _biased_scores(
            tbl[self.attribute], tbl.meta(self.attribute).kind,
            self.correlation, self.biased_value, rng,
        )

    def with_strength(self, strength):
        return replace(self, correlation=float(strength))

    def describe(self) -> str:
        return f"{self.name}({self.attribute})"


@dataclass(frozen=True)
class MARParent(MissingnessMechanism):
    """MAR conditioned through a foreign key: removal of child rows depends
    on an attribute of their FK *parent* (e.g. apartments in dense
    neighborhoods go unreported)."""

    name: ClassVar[str] = "mar_parent"

    parent_table: str = ""
    attribute: str = ""
    correlation: float = 0.5
    biased_value: Optional[object] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.correlation <= 1.0:
            raise ValueError("correlation must be in [0, 1]")

    def validate(self, db, table):
        super().validate(db, table)
        parent = _require_column(
            db, self.parent_table, self.attribute, mechanism=self.describe()
        )
        fk = self._fk(db, table)
        if parent.primary_key != fk.parent_column:
            # The resolution below indexes parents by the FK parent column.
            raise ValueError(
                f"{self.describe()}: FK {fk} does not target the parent's "
                f"primary key"
            )

    def _fk(self, db: Database, table: str):
        fks = [
            fk for fk in db.foreign_keys
            if fk.child_table == table and fk.parent_table == self.parent_table
        ]
        if not fks:
            raise ValueError(
                f"{self.describe()}: no foreign key from {table!r} to "
                f"{self.parent_table!r}"
            )
        return fks[0]

    def removal_scores(self, db, table, rng):
        self.validate(db, table)
        fk = self._fk(db, table)
        parent = db.table(self.parent_table)
        child_refs = db.table(table)[fk.child_column]
        index = {int(k): i for i, k in enumerate(parent[fk.parent_column])}
        rows = np.fromiter(
            (index.get(int(v), -1) for v in child_refs),
            dtype=np.int64, count=len(child_refs),
        )
        parent_values = parent[self.attribute]
        kind = parent.meta(self.attribute).kind
        # Dangling children (possible on re-removal of incomplete data) get a
        # neutral draw instead of crashing the resolution.
        resolved = parent_values[np.clip(rows, 0, None)]
        scores = _biased_scores(resolved, kind, self.correlation,
                                self.biased_value, rng)
        return np.where(rows >= 0, scores, rng.random(len(rows)))

    def with_strength(self, strength):
        return replace(self, correlation=float(strength))

    def describe(self) -> str:
        return f"{self.name}({self.parent_table}.{self.attribute})"


@dataclass(frozen=True)
class MNARSelfMasking(MissingnessMechanism):
    """Self-masking MNAR: the tuple disappears *because of* its own value —
    the strongest bias, with only ``1 - sharpness`` of removals random."""

    name: ClassVar[str] = "mnar_self"

    attribute: str = ""
    sharpness: float = 0.9
    biased_value: Optional[object] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.sharpness <= 1.0:
            raise ValueError("sharpness must be in [0, 1]")

    def validate(self, db, table):
        _require_column(db, table, self.attribute, mechanism=self.describe())

    def removal_scores(self, db, table, rng):
        tbl = _require_column(db, table, self.attribute, mechanism=self.describe())
        return _biased_scores(
            tbl[self.attribute], tbl.meta(self.attribute).kind,
            self.sharpness, self.biased_value, rng,
        )

    def with_strength(self, strength):
        return replace(self, sharpness=float(strength))

    def describe(self) -> str:
        return f"{self.name}({self.attribute})"


@dataclass(frozen=True)
class ValueThreshold(MissingnessMechanism):
    """Censoring: only rows beyond a quantile threshold of a continuous
    attribute are candidates for removal (e.g. prices above the 70th
    percentile go unreported).  If the keep rate demands more removals than
    the censored region holds, the excess is drawn uniformly."""

    name: ClassVar[str] = "threshold"

    attribute: str = ""
    quantile: float = 0.7
    upper: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")

    def validate(self, db, table):
        tbl = _require_column(db, table, self.attribute, mechanism=self.describe())
        if tbl.meta(self.attribute).kind is not ColumnKind.CONTINUOUS:
            raise ValueError(
                f"{self.describe()}: attribute {self.attribute!r} of "
                f"{table!r} must be continuous for threshold censoring"
            )

    def removal_scores(self, db, table, rng):
        self.validate(db, table)
        arr = np.asarray(db.table(table)[self.attribute], dtype=float)
        cut = np.quantile(arr, self.quantile)
        in_region = arr >= cut if self.upper else arr <= cut
        return np.where(in_region, 1.0, 0.0) + rng.random(len(arr))

    def describe(self) -> str:
        side = ">=" if self.upper else "<="
        return f"{self.name}({self.attribute} {side} q{self.quantile:g})"


@dataclass(frozen=True)
class FKCascade(MissingnessMechanism):
    """FK-clustered removal: whole sibling groups vanish together.

    Every FK parent draws one score and all its children inherit it, so the
    removal deletes complete clusters (all apartments of a neighborhood, all
    link rows of a movie) until the keep rate is met.  Combined with the
    dangling-link cascade of ``make_incomplete`` this yields multi-table
    cascading removal.
    """

    name: ClassVar[str] = "fk_cascade"

    parent_table: str = ""

    def validate(self, db, table):
        super().validate(db, table)
        self._fk(db, table)

    def _fk(self, db: Database, table: str):
        fks = [
            fk for fk in db.foreign_keys
            if fk.child_table == table and fk.parent_table == self.parent_table
        ]
        if not fks:
            raise ValueError(
                f"{self.describe()}: no foreign key from {table!r} to "
                f"{self.parent_table!r}"
            )
        return fks[0]

    def removal_scores(self, db, table, rng):
        self.validate(db, table)
        fk = self._fk(db, table)
        refs = np.asarray(db.table(table)[fk.child_column], dtype=np.int64)
        uniques, inverse = np.unique(refs, return_inverse=True)
        group_scores = rng.random(len(uniques))
        # Tiny jitter only breaks ties *within* a group, never across groups.
        return group_scores[inverse] + 1e-9 * rng.random(len(refs))

    def describe(self) -> str:
        return f"{self.name}(via {self.parent_table})"


@dataclass(frozen=True)
class TemporalRecent(MissingnessMechanism):
    """Recency bias: the newest rows (highest time attribute) are missing
    first — the canonical shape of late-arriving data.  ``softness`` blends
    in uniform removals (0 = strictly newest-first)."""

    name: ClassVar[str] = "temporal_recent"

    time_attribute: str = ""
    softness: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.softness <= 1.0:
            raise ValueError("softness must be in [0, 1]")

    def validate(self, db, table):
        tbl = _require_column(db, table, self.time_attribute,
                              mechanism=self.describe())
        if tbl.meta(self.time_attribute).kind is ColumnKind.CATEGORICAL:
            raise ValueError(
                f"{self.describe()}: time attribute {self.time_attribute!r} "
                f"of {table!r} must be numeric"
            )

    def removal_scores(self, db, table, rng):
        self.validate(db, table)
        arr = np.asarray(db.table(table)[self.time_attribute], dtype=float)
        ranks = np.argsort(np.argsort(arr)) / max(len(arr) - 1, 1)
        return (1.0 - self.softness) * ranks + self.softness * rng.random(len(arr))

    def with_strength(self, strength):
        # Strength is recency dominance; softness is its complement.
        return replace(self, softness=1.0 - float(strength))

    def describe(self) -> str:
        return f"{self.name}({self.time_attribute})"


@dataclass(frozen=True)
class RareValue(MissingnessMechanism):
    """Long-tail removal: rows carrying *infrequent* categorical values are
    removed preferentially — the mirror image of the paper's mode-targeting
    bias, and the regime where completion models see the least evidence."""

    name: ClassVar[str] = "rare_value"

    attribute: str = ""
    correlation: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 <= self.correlation <= 1.0:
            raise ValueError("correlation must be in [0, 1]")

    def validate(self, db, table):
        tbl = _require_column(db, table, self.attribute, mechanism=self.describe())
        if tbl.meta(self.attribute).kind is not ColumnKind.CATEGORICAL:
            raise ValueError(
                f"{self.describe()}: attribute {self.attribute!r} of "
                f"{table!r} must be categorical"
            )

    def removal_scores(self, db, table, rng):
        self.validate(db, table)
        values = db.table(table)[self.attribute]
        uniques, inverse, counts = np.unique(
            values, return_inverse=True, return_counts=True
        )
        rarity = 1.0 - counts[inverse] / len(values)   # rare value -> high
        c = self.correlation
        return c * rarity + (1.0 - c) * rng.random(len(values))

    def with_strength(self, strength):
        return replace(self, correlation=float(strength))

    def describe(self) -> str:
        return f"{self.name}({self.attribute})"


#: All mechanism classes by name.  The paper's original protocol keeps its
#: legacy spelling on :class:`~repro.incomplete.removal.RemovalSpec` itself
#: (biased attribute + correlation + optional biased value) and appears in
#: the scenario registry under the mechanism name ``"biased"``.
MECHANISM_TYPES: Dict[str, Type[MissingnessMechanism]] = {
    cls.name: cls
    for cls in (
        MCAR, MAR, MARParent, MNARSelfMasking, ValueThreshold,
        FKCascade, TemporalRecent, RareValue,
    )
}

#: Mechanisms that remove rows in FK-parent clusters; scenario validation
#: walks these edges to reject cyclic cascade compositions.
CASCADING_TYPES: Tuple[Type[MissingnessMechanism], ...] = (FKCascade,)
