"""Biased tuple removal: derive incomplete databases from complete ones.

This reproduces the paper's removal protocol (§7.2/§7.3):

* **keep rate** — the fraction of tuples of the target table that survive.
* **removal correlation** — the strength of the bias.  For categorical
  attributes the removal probability correlates with one attribute *value*
  (the biased value); for continuous attributes it correlates with the
  normalized attribute value (approximating a target Pearson coefficient).
* **tuple-factor keep rate** — only a subset of parents keep their known
  tuple factors (20% movies / 30% housing in the paper).
* **dangling-link removal** — m:n link rows whose movie/parent was removed
  disappear too (the hardened movie-dataset protocol).

The result bundles the incomplete database, the matching schema annotation
(incl. TF masks) and the removal ground truth needed by the metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..relational import Database, SchemaAnnotation, Table
from ..relational.tuple_factors import TF_UNKNOWN, observed_tuple_factors
from .mechanisms import MissingnessMechanism, _biased_scores


@dataclass(frozen=True)
class RemovalSpec:
    """How to remove tuples from one table.

    Attributes
    ----------
    table:
        The table to make incomplete.
    biased_attribute:
        The attribute whose values correlate with removal (the paper's
        protocol).  ``None`` when a ``mechanism`` decides instead.
    keep_rate:
        Fraction of rows kept.
    removal_correlation:
        Bias strength in ``[0, 1]``; 0 removes uniformly at random.
    biased_value:
        For categorical attributes: the value whose rows are preferentially
        removed.  Defaults to the most frequent value.
    mechanism:
        Optional :class:`~repro.incomplete.mechanisms.MissingnessMechanism`
        replacing the paper protocol's scoring (MCAR/MAR/MNAR/threshold/
        FK-cascade/temporal...).  The keep rate always stays with the spec.
    """

    table: str
    biased_attribute: Optional[str] = None
    keep_rate: float = 1.0
    removal_correlation: float = 0.0
    biased_value: Optional[object] = None
    mechanism: Optional[MissingnessMechanism] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.keep_rate <= 1.0:
            raise ValueError("keep_rate must be in (0, 1]")
        if not 0.0 <= self.removal_correlation <= 1.0:
            raise ValueError("removal_correlation must be in [0, 1]")
        if self.biased_attribute is None and self.mechanism is None:
            raise ValueError(
                f"RemovalSpec({self.table!r}): either a biased_attribute "
                f"(paper protocol) or a mechanism is required"
            )

    @property
    def mechanism_name(self) -> str:
        """The scenario-matrix vocabulary name of this spec's mechanism."""
        return self.mechanism.name if self.mechanism is not None else "biased"

    def validate_against(self, db: Database) -> None:
        """Raise ``ValueError`` when this spec cannot apply to ``db``."""
        if self.table not in db.table_names():
            raise ValueError(
                f"removal spec targets unknown table {self.table!r}; "
                f"have {sorted(db.table_names())}"
            )
        if self.mechanism is not None:
            self.mechanism.validate(db, self.table)
        if self.biased_attribute is not None:
            table = db.table(self.table)
            if self.biased_attribute not in table:
                raise ValueError(
                    f"removal spec for {self.table!r} biases on unknown "
                    f"attribute {self.biased_attribute!r}; "
                    f"have {table.column_names}"
                )

    def translated_for(self, db: Database) -> "RemovalSpec":
        """This spec, revalidated for re-application on another database.

        Used by the §5 derived selection scenarios: the incomplete database
        becomes ground truth and the same removal characteristics are
        re-applied.  Specs are immutable, so translation is validation —
        with a clear error when e.g. the biased attribute no longer exists
        on the (incomplete) table.
        """
        try:
            self.validate_against(db)
        except ValueError as exc:
            raise ValueError(
                f"cannot re-apply removal spec to the incomplete database: {exc}"
            ) from exc
        return self


@dataclass
class IncompleteDataset:
    """An incomplete database plus everything needed to evaluate completion.

    ``drop_dangling_links`` / ``dangling_parents`` record the cascade policy
    the dataset was produced under, so §5 re-removal
    (:func:`~repro.incomplete.scenarios.derive_selection_scenario`) applies
    the *same* characteristics instead of silently reverting to the default.
    """

    complete: Database
    incomplete: Database
    annotation: SchemaAnnotation
    keep_masks: Dict[str, np.ndarray]
    specs: Tuple[RemovalSpec, ...]
    drop_dangling_links: bool = True
    dangling_parents: Optional[Tuple[str, ...]] = None

    def kept_fraction(self, table: str) -> float:
        mask = self.keep_masks.get(table)
        if mask is None:
            return 1.0
        return float(mask.mean())


def removal_mask(
    table: Table,
    spec: RemovalSpec,
    rng: np.random.Generator,
    db: Optional[Database] = None,
) -> np.ndarray:
    """Boolean keep-mask implementing the removal for one table.

    The spec's mechanism (or the paper's biased protocol when none is set)
    scores every row — highest score removed first — and the keep rate
    decides how many go.  Mechanisms that look beyond the target table
    (MAR through a foreign key, FK-clustered removal) need ``db``; the
    single-table mechanisms and the legacy protocol do not.
    """
    n = len(table)
    num_remove = int(round((1.0 - spec.keep_rate) * n))
    if num_remove == 0:
        return np.ones(n, dtype=bool)
    if num_remove >= n:
        raise ValueError("removal would leave no tuples")

    if spec.mechanism is not None:
        if db is None:
            db = Database([table], [])
        scores = spec.mechanism.removal_scores(db, table.name, rng)
        scores = np.asarray(scores, dtype=float)
        if scores.shape != (n,):
            raise ValueError(
                f"{spec.mechanism.describe()} returned {scores.shape} scores "
                f"for {n} rows of {table.name!r}"
            )
    else:
        # The paper's protocol (mathematically MNAR self-masking): bias on
        # one of the removed table's own attributes.
        values = table[spec.biased_attribute]
        scores = _biased_scores(
            values, table.meta(spec.biased_attribute).kind,
            spec.removal_correlation, spec.biased_value, rng,
        )

    # Remove the rows with the highest scores; ties broken by the random
    # jitter already contained in the scores.
    remove_idx = np.argpartition(scores, -num_remove)[-num_remove:]
    keep = np.ones(n, dtype=bool)
    keep[remove_idx] = False
    return keep


def make_incomplete(
    db: Database,
    specs: Sequence[RemovalSpec],
    tf_keep_rate: float = 1.0,
    drop_dangling_links: bool = True,
    dangling_parents: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> IncompleteDataset:
    """Apply biased removals and build the matching annotation.

    Parameters
    ----------
    db:
        The complete ground-truth database.
    specs:
        One removal per table to make incomplete.
    tf_keep_rate:
        Fraction of parent tuples that keep their known tuple factors for
        relationships into removed tables (paper: 0.2–0.3).
    drop_dangling_links:
        Also remove child rows (e.g. m:n link rows) that reference removed
        tuples, and mark those child tables incomplete.
    dangling_parents:
        Restrict the dangling cascade to links referencing these removed
        parent tables.  The paper's hardened movie protocol drops link rows
        whose *movie* was removed; links referencing removed directors /
        companies survive — their dangling foreign keys are exactly the
        evidence that a tuple is missing.  ``None`` cascades for every
        removed parent.
    seed:
        Randomness for removal, TF masks and dangling cleanup.
    """
    rng = np.random.default_rng(seed)
    keep_masks: Dict[str, np.ndarray] = {}
    incomplete_tables = {spec.table for spec in specs}
    if len(incomplete_tables) != len(specs):
        raise ValueError("at most one removal spec per table")
    for spec in specs:
        spec.validate_against(db)

    working = db.copy()
    for spec in specs:
        table = working.table(spec.table)
        keep = removal_mask(table, spec, rng, db=working)
        keep_masks[spec.table] = keep
        working = working.replace_table(table.select(keep))

    # Cascade: drop link rows referencing removed tuples.  A link table may
    # dangle against several removed parents (e.g. movie_company when both
    # movie and company tuples were removed) — cascades compose, and the
    # per-table keep mask always refers to the *original* rows.
    if drop_dangling_links:
        cascade_parents = (
            set(dangling_parents) if dangling_parents is not None
            else set(incomplete_tables)
        )
        for fk in working.foreign_keys:
            if fk.parent_table not in (incomplete_tables & cascade_parents):
                continue
            child = working.table(fk.child_table)
            parent_keys = set(working.table(fk.parent_table)[fk.parent_column].tolist())
            refs = child[fk.child_column]
            keep = np.fromiter(
                (v in parent_keys for v in refs.tolist()), dtype=bool, count=len(refs)
            )
            if keep.all():
                continue
            prior = keep_masks.get(fk.child_table)
            if prior is None:
                keep_masks[fk.child_table] = keep
            else:
                combined = prior.copy()
                combined[np.flatnonzero(prior)] &= keep
                keep_masks[fk.child_table] = combined
            incomplete_tables.add(fk.child_table)
            working = working.replace_table(child.select(keep))

    annotation = SchemaAnnotation(
        complete_tables=set(working.table_names()) - incomplete_tables,
        incomplete_tables=incomplete_tables,
    )

    # Tuple-factor knowledge: for every FK whose child became incomplete,
    # ``tf_keep_rate`` of the surviving parents keep their *true* child
    # count (taken from the complete database); the rest are TF_UNKNOWN and
    # must be predicted by the completion models.
    for fk in working.foreign_keys:
        if fk.child_table not in incomplete_tables:
            continue
        true_tfs = observed_tuple_factors(db, fk)
        parent_keep = keep_masks.get(fk.parent_table)
        if parent_keep is not None:
            true_tfs = true_tfs[parent_keep]
        parent = working.table(fk.parent_table)
        known = rng.random(len(parent)) < tf_keep_rate
        annotated = np.where(known, true_tfs, TF_UNKNOWN).astype(np.int64)
        annotation.known_tuple_factors[str(fk)] = annotated

    return IncompleteDataset(
        complete=db,
        incomplete=working,
        annotation=annotation,
        keep_masks=keep_masks,
        specs=tuple(specs),
        drop_dangling_links=drop_dangling_links,
        dangling_parents=(
            tuple(dangling_parents) if dangling_parents is not None else None
        ),
    )
