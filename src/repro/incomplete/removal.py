"""Biased tuple removal: derive incomplete databases from complete ones.

This reproduces the paper's removal protocol (§7.2/§7.3):

* **keep rate** — the fraction of tuples of the target table that survive.
* **removal correlation** — the strength of the bias.  For categorical
  attributes the removal probability correlates with one attribute *value*
  (the biased value); for continuous attributes it correlates with the
  normalized attribute value (approximating a target Pearson coefficient).
* **tuple-factor keep rate** — only a subset of parents keep their known
  tuple factors (20% movies / 30% housing in the paper).
* **dangling-link removal** — m:n link rows whose movie/parent was removed
  disappear too (the hardened movie-dataset protocol).

The result bundles the incomplete database, the matching schema annotation
(incl. TF masks) and the removal ground truth needed by the metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..relational import ColumnKind, Database, SchemaAnnotation, Table
from ..relational.tuple_factors import TF_UNKNOWN, observed_tuple_factors


@dataclass(frozen=True)
class RemovalSpec:
    """How to remove tuples from one table.

    Attributes
    ----------
    table:
        The table to make incomplete.
    biased_attribute:
        The attribute whose values correlate with removal.
    keep_rate:
        Fraction of rows kept.
    removal_correlation:
        Bias strength in ``[0, 1]``; 0 removes uniformly at random.
    biased_value:
        For categorical attributes: the value whose rows are preferentially
        removed.  Defaults to the most frequent value.
    """

    table: str
    biased_attribute: str
    keep_rate: float
    removal_correlation: float
    biased_value: Optional[object] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.keep_rate <= 1.0:
            raise ValueError("keep_rate must be in (0, 1]")
        if not 0.0 <= self.removal_correlation <= 1.0:
            raise ValueError("removal_correlation must be in [0, 1]")


@dataclass
class IncompleteDataset:
    """An incomplete database plus everything needed to evaluate completion."""

    complete: Database
    incomplete: Database
    annotation: SchemaAnnotation
    keep_masks: Dict[str, np.ndarray]
    specs: Tuple[RemovalSpec, ...]

    def kept_fraction(self, table: str) -> float:
        mask = self.keep_masks.get(table)
        if mask is None:
            return 1.0
        return float(mask.mean())


def removal_mask(
    table: Table,
    spec: RemovalSpec,
    rng: np.random.Generator,
) -> np.ndarray:
    """Boolean keep-mask implementing the biased removal for one table."""
    n = len(table)
    num_remove = int(round((1.0 - spec.keep_rate) * n))
    if num_remove == 0:
        return np.ones(n, dtype=bool)
    if num_remove >= n:
        raise ValueError("removal would leave no tuples")

    kind = table.meta(spec.biased_attribute).kind
    values = table[spec.biased_attribute]

    if kind is ColumnKind.CATEGORICAL:
        scores = _categorical_removal_scores(values, spec, rng)
    else:
        scores = _continuous_removal_scores(values, spec, rng)

    # Remove the rows with the highest scores; ties broken by the random
    # jitter already contained in the scores.
    remove_idx = np.argpartition(scores, -num_remove)[-num_remove:]
    keep = np.ones(n, dtype=bool)
    keep[remove_idx] = False
    return keep


def _categorical_removal_scores(
    values: np.ndarray, spec: RemovalSpec, rng: np.random.Generator
) -> np.ndarray:
    """Higher score = removed first.  With correlation ``c`` a fraction ``c``
    of the removals targets rows with the biased value; the rest is uniform."""
    biased_value = spec.biased_value
    if biased_value is None:
        uniques, counts = np.unique(values, return_counts=True)
        biased_value = uniques[counts.argmax()]
    is_biased = values == biased_value
    jitter = rng.random(len(values))
    targeted = rng.random(len(values)) < spec.removal_correlation
    # Targeted removals only strike biased rows; untargeted strike anyone.
    return np.where(targeted & is_biased, 2.0 + jitter,
                    np.where(~targeted, 1.0 + jitter, jitter))


def _continuous_removal_scores(
    values: np.ndarray, spec: RemovalSpec, rng: np.random.Generator
) -> np.ndarray:
    """Mix of attribute rank and noise: correlation ``c`` weights the rank.

    The resulting Bernoulli removal indicator has a Pearson correlation with
    the attribute that grows monotonically with ``c`` (see tests), matching
    the paper's "specific Pearson correlation coefficient" protocol.
    """
    arr = np.asarray(values, dtype=float)
    ranks = np.argsort(np.argsort(arr)) / max(len(arr) - 1, 1)
    noise = rng.random(len(arr))
    c = spec.removal_correlation
    return c * ranks + (1.0 - c) * noise


def make_incomplete(
    db: Database,
    specs: Sequence[RemovalSpec],
    tf_keep_rate: float = 1.0,
    drop_dangling_links: bool = True,
    dangling_parents: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> IncompleteDataset:
    """Apply biased removals and build the matching annotation.

    Parameters
    ----------
    db:
        The complete ground-truth database.
    specs:
        One removal per table to make incomplete.
    tf_keep_rate:
        Fraction of parent tuples that keep their known tuple factors for
        relationships into removed tables (paper: 0.2–0.3).
    drop_dangling_links:
        Also remove child rows (e.g. m:n link rows) that reference removed
        tuples, and mark those child tables incomplete.
    dangling_parents:
        Restrict the dangling cascade to links referencing these removed
        parent tables.  The paper's hardened movie protocol drops link rows
        whose *movie* was removed; links referencing removed directors /
        companies survive — their dangling foreign keys are exactly the
        evidence that a tuple is missing.  ``None`` cascades for every
        removed parent.
    seed:
        Randomness for removal, TF masks and dangling cleanup.
    """
    rng = np.random.default_rng(seed)
    keep_masks: Dict[str, np.ndarray] = {}
    incomplete_tables = {spec.table for spec in specs}
    if len(incomplete_tables) != len(specs):
        raise ValueError("at most one removal spec per table")

    working = db.copy()
    for spec in specs:
        table = working.table(spec.table)
        keep = removal_mask(table, spec, rng)
        keep_masks[spec.table] = keep
        working = working.replace_table(table.select(keep))

    # Cascade: drop link rows referencing removed tuples.  A link table may
    # dangle against several removed parents (e.g. movie_company when both
    # movie and company tuples were removed) — cascades compose, and the
    # per-table keep mask always refers to the *original* rows.
    if drop_dangling_links:
        cascade_parents = (
            set(dangling_parents) if dangling_parents is not None
            else set(incomplete_tables)
        )
        for fk in working.foreign_keys:
            if fk.parent_table not in (incomplete_tables & cascade_parents):
                continue
            child = working.table(fk.child_table)
            parent_keys = set(working.table(fk.parent_table)[fk.parent_column].tolist())
            refs = child[fk.child_column]
            keep = np.fromiter(
                (v in parent_keys for v in refs.tolist()), dtype=bool, count=len(refs)
            )
            if keep.all():
                continue
            prior = keep_masks.get(fk.child_table)
            if prior is None:
                keep_masks[fk.child_table] = keep
            else:
                combined = prior.copy()
                combined[np.flatnonzero(prior)] &= keep
                keep_masks[fk.child_table] = combined
            incomplete_tables.add(fk.child_table)
            working = working.replace_table(child.select(keep))

    annotation = SchemaAnnotation(
        complete_tables=set(working.table_names()) - incomplete_tables,
        incomplete_tables=incomplete_tables,
    )

    # Tuple-factor knowledge: for every FK whose child became incomplete,
    # ``tf_keep_rate`` of the surviving parents keep their *true* child
    # count (taken from the complete database); the rest are TF_UNKNOWN and
    # must be predicted by the completion models.
    for fk in working.foreign_keys:
        if fk.child_table not in incomplete_tables:
            continue
        true_tfs = observed_tuple_factors(db, fk)
        parent_keep = keep_masks.get(fk.parent_table)
        if parent_keep is not None:
            true_tfs = true_tfs[parent_keep]
        parent = working.table(fk.parent_table)
        known = rng.random(len(parent)) < tf_keep_rate
        annotated = np.where(known, true_tfs, TF_UNKNOWN).astype(np.int64)
        annotation.known_tuple_factors[str(fk)] = annotated

    return IncompleteDataset(
        complete=db,
        incomplete=working,
        annotation=annotation,
        keep_masks=keep_masks,
        specs=tuple(specs),
    )
