"""Incompleteness injection: biased removal, TF masking, derived scenarios."""

from .removal import IncompleteDataset, RemovalSpec, make_incomplete, removal_mask
from .scenarios import derive_selection_scenario

__all__ = [
    "RemovalSpec",
    "IncompleteDataset",
    "make_incomplete",
    "removal_mask",
    "derive_selection_scenario",
]
