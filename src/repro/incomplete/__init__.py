"""Incompleteness injection: mechanisms, composable scenarios, registry."""

from . import registry
from .mechanisms import (
    MCAR,
    MAR,
    CASCADING_TYPES,
    FKCascade,
    MARParent,
    MECHANISM_TYPES,
    MissingnessMechanism,
    MNARSelfMasking,
    RareValue,
    TemporalRecent,
    ValueThreshold,
)
from .removal import IncompleteDataset, RemovalSpec, make_incomplete, removal_mask
from .scenarios import ScenarioSpec, derive_selection_scenario

__all__ = [
    "registry",
    "MissingnessMechanism",
    "MCAR",
    "MAR",
    "MARParent",
    "MNARSelfMasking",
    "ValueThreshold",
    "FKCascade",
    "TemporalRecent",
    "RareValue",
    "MECHANISM_TYPES",
    "CASCADING_TYPES",
    "RemovalSpec",
    "IncompleteDataset",
    "make_incomplete",
    "removal_mask",
    "ScenarioSpec",
    "derive_selection_scenario",
]
