"""Named scenario matrix: every missingness scenario experiments iterate.

The registry maps stable names (``"<dataset>/<scenario>"``) to factories
producing :class:`~repro.incomplete.scenarios.ScenarioSpec` instances, so
experiments, workloads, benchmarks and the invariant harness all enumerate
scenarios by name instead of re-wiring :func:`make_incomplete` by hand:

* the ten paper setups (``housing/H1`` … ``movies/M5``, Fig. 4c) — the
  biased protocol the reproduction has always used;
* a mechanism matrix spanning Rubin's taxonomy and structural variants
  (``mcar``, ``mar``, ``mar_parent``, ``mnar_self``, ``threshold``,
  ``fk_cascade``, ``temporal_recent``, ``rare_value``) instantiated on the
  synthetic, housing and movie schemas.

Factories take the swept axes ``(keep_rate, removal_correlation)`` and bake
everything else in (tuple-factor keep rates, extra removals, the hardened
dangling-link protocol).  ``tests/invariants`` asserts pipeline-wide
invariants for **every** entry here, so a new scenario is covered the
moment it is registered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .mechanisms import (
    MCAR,
    MAR,
    FKCascade,
    MARParent,
    MECHANISM_TYPES,
    MNARSelfMasking,
    RareValue,
    TemporalRecent,
    ValueThreshold,
)
from .removal import IncompleteDataset, RemovalSpec
from .scenarios import ScenarioSpec

ScenarioFactory = Callable[[float, float], ScenarioSpec]


@dataclass(frozen=True)
class RegisteredScenario:
    """One row of the scenario matrix."""

    name: str
    dataset: str
    mechanisms: Tuple[str, ...]
    description: str
    factory: ScenarioFactory
    default_keep_rate: float = 0.5
    default_correlation: float = 0.5

    def build(
        self,
        keep_rate: Optional[float] = None,
        removal_correlation: Optional[float] = None,
    ) -> ScenarioSpec:
        """A concrete :class:`ScenarioSpec` for one sweep cell."""
        keep = self.default_keep_rate if keep_rate is None else keep_rate
        corr = (self.default_correlation if removal_correlation is None
                else removal_correlation)
        return self.factory(keep, corr)


_REGISTRY: Dict[str, RegisteredScenario] = {}


def register(
    name: str,
    dataset: str,
    mechanisms: Tuple[str, ...],
    description: str,
    factory: ScenarioFactory,
    default_keep_rate: float = 0.5,
    default_correlation: float = 0.5,
) -> RegisteredScenario:
    """Add a scenario to the matrix (name collisions are an error)."""
    if name in _REGISTRY:
        raise ValueError(f"scenario {name!r} is already registered")
    unknown = set(mechanisms) - (set(MECHANISM_TYPES) | {"biased"})
    if unknown:
        raise ValueError(
            f"scenario {name!r} names unknown mechanisms {sorted(unknown)}"
        )
    entry = RegisteredScenario(
        name=name, dataset=dataset, mechanisms=tuple(mechanisms),
        description=description, factory=factory,
        default_keep_rate=default_keep_rate,
        default_correlation=default_correlation,
    )
    _REGISTRY[name] = entry
    return entry


def get(name: str) -> RegisteredScenario:
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown scenario {name!r}; have {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def names(dataset: Optional[str] = None) -> List[str]:
    """Registered scenario names, optionally for one dataset family."""
    return [
        name for name, entry in _REGISTRY.items()
        if dataset is None or entry.dataset == dataset
    ]


def datasets() -> List[str]:
    """Dataset families the matrix spans (registration order)."""
    seen: List[str] = []
    for entry in _REGISTRY.values():
        if entry.dataset not in seen:
            seen.append(entry.dataset)
    return seen


def mechanism_names() -> List[str]:
    """Every mechanism name appearing somewhere in the matrix."""
    seen: List[str] = []
    for entry in _REGISTRY.values():
        for mech in entry.mechanisms:
            if mech not in seen:
                seen.append(mech)
    return seen


def build_scenario(
    name: str,
    keep_rate: Optional[float] = None,
    removal_correlation: Optional[float] = None,
) -> ScenarioSpec:
    """Shorthand: ``get(name).build(...)``."""
    return get(name).build(keep_rate, removal_correlation)


def scenario_database(name: str, seed: int = 0, scale: float = 1.0):
    """The complete ground-truth database a scenario applies to."""
    # Lazy import: workloads composes on top of repro.incomplete.
    from ..workloads import base_database

    return base_database(get(name).dataset, seed=seed, scale=scale)


def make_scenario_dataset(
    name: str,
    db=None,
    keep_rate: Optional[float] = None,
    removal_correlation: Optional[float] = None,
    seed: int = 0,
    scale: float = 1.0,
) -> IncompleteDataset:
    """One-call instantiation: registry name → :class:`IncompleteDataset`."""
    if db is None:
        db = scenario_database(name, seed=seed, scale=scale)
    scenario = build_scenario(name, keep_rate, removal_correlation)
    return scenario.instantiate(db, seed=seed)


# ======================================================================
# The matrix
# ======================================================================

def _paper_setup(
    name: str,
    dataset: str,
    table: str,
    attribute: str,
    tf_keep_rate: float,
    extra: Tuple[RemovalSpec, ...] = (),
    dangling_parents: Optional[Tuple[str, ...]] = None,
    description: str = "",
) -> None:
    """Register one Fig. 4c completion setup (biased paper protocol)."""

    def factory(keep: float, corr: float) -> ScenarioSpec:
        return ScenarioSpec(
            name=name,
            dataset=dataset,
            removals=(RemovalSpec(table, attribute, keep, corr), *extra),
            tf_keep_rate=tf_keep_rate,
            drop_dangling_links=True,
            dangling_parents=dangling_parents,
            description=description,
        )

    register(name, dataset, ("biased",), description, factory)


def _scenario(
    name: str,
    dataset: str,
    mechanisms: Tuple[str, ...],
    description: str,
    specs: Callable[[float, float], Tuple[RemovalSpec, ...]],
    tf_keep_rate: float = 0.5,
    dangling_parents: Optional[Tuple[str, ...]] = None,
) -> None:
    """Register one mechanism-matrix scenario."""

    def factory(keep: float, corr: float) -> ScenarioSpec:
        return ScenarioSpec(
            name=name,
            dataset=dataset,
            removals=specs(keep, corr),
            tf_keep_rate=tf_keep_rate,
            drop_dangling_links=True,
            dangling_parents=dangling_parents,
            description=description,
        )

    register(name, dataset, mechanisms, description, factory)


# ----------------------------------------------------------------------
# Paper setups (Fig. 4c): housing H1–H5 (TF keep 30%), movies M1–M5
# (TF keep 20%, hardened protocol: only links of removed *movies* drop;
# M4/M5 additionally remove 20% of the movies with a mild year bias).
# ----------------------------------------------------------------------
_M45_EXTRA = (RemovalSpec("movie", "production_year", 0.8, 0.2),)

_paper_setup("housing/H1", "housing", "apartment", "price", 0.3,
             description="biased removal of expensive apartments")
_paper_setup("housing/H2", "housing", "apartment", "room_type", 0.3,
             description="biased removal of the modal room type")
_paper_setup("housing/H3", "housing", "apartment", "property_type", 0.3,
             description="biased removal of the modal property type")
_paper_setup("housing/H4", "housing", "landlord", "landlord_since", 0.3,
             description="biased removal of long-tenured landlords")
_paper_setup("housing/H5", "housing", "landlord", "landlord_response_rate", 0.3,
             description="biased removal of responsive landlords")

_paper_setup("movies/M1", "movies", "movie", "production_year", 0.2,
             dangling_parents=("movie",),
             description="biased removal of recent movies (hardened links)")
_paper_setup("movies/M2", "movies", "movie", "genre", 0.2,
             dangling_parents=("movie",),
             description="biased removal of the modal genre")
_paper_setup("movies/M3", "movies", "movie", "country", 0.2,
             dangling_parents=("movie",),
             description="biased removal of the modal production country")
_paper_setup("movies/M4", "movies", "director", "birth_year", 0.2,
             extra=_M45_EXTRA, dangling_parents=("movie",),
             description="biased director removal + 20% movie removal")
_paper_setup("movies/M5", "movies", "company", "country_code", 0.2,
             extra=_M45_EXTRA, dangling_parents=("movie",),
             description="biased company removal + 20% movie removal")


# ----------------------------------------------------------------------
# Synthetic mechanism matrix (two tables: ta(a) 1:n tb(b); TF keep 50%
# matching Exp. 1).
# ----------------------------------------------------------------------
_scenario(
    "synthetic/biased", "synthetic", ("biased",),
    "paper protocol: tb removal biased on its own attribute b",
    lambda keep, corr: (RemovalSpec("tb", "b", keep, corr),),
)
_scenario(
    "synthetic/mcar", "synthetic", ("mcar",),
    "tb rows vanish completely at random",
    lambda keep, corr: (RemovalSpec("tb", keep_rate=keep, mechanism=MCAR()),),
)
_scenario(
    "synthetic/mar_parent", "synthetic", ("mar_parent",),
    "tb removal conditioned on the parent attribute ta.a (MAR via FK)",
    lambda keep, corr: (RemovalSpec(
        "tb", keep_rate=keep,
        mechanism=MARParent(parent_table="ta", attribute="a", correlation=corr),
    ),),
)
_scenario(
    "synthetic/mnar_self", "synthetic", ("mnar_self",),
    "self-masking: tb.b's modal value removes its own rows",
    lambda keep, corr: (RemovalSpec(
        "tb", keep_rate=keep,
        mechanism=MNARSelfMasking(attribute="b", sharpness=corr),
    ),),
)
_scenario(
    "synthetic/fk_cascade", "synthetic", ("fk_cascade",),
    "whole sibling groups of tb vanish per ta parent (cluster removal)",
    lambda keep, corr: (RemovalSpec(
        "tb", keep_rate=keep, mechanism=FKCascade(parent_table="ta"),
    ),),
)


# ----------------------------------------------------------------------
# Housing mechanism matrix (TF keep 30% like the paper's housing rows).
# ----------------------------------------------------------------------
_scenario(
    "housing/mcar", "housing", ("mcar",),
    "apartments vanish completely at random",
    lambda keep, corr: (RemovalSpec(
        "apartment", keep_rate=keep, mechanism=MCAR(),
    ),),
    tf_keep_rate=0.3,
)
_scenario(
    "housing/mar", "housing", ("mar",),
    "apartment removal conditioned on the observed room_type (MAR)",
    lambda keep, corr: (RemovalSpec(
        "apartment", keep_rate=keep,
        mechanism=MAR(attribute="room_type", correlation=corr),
    ),),
    tf_keep_rate=0.3,
)
_scenario(
    "housing/mar_parent", "housing", ("mar_parent",),
    "apartments in dense neighborhoods go unreported (MAR via FK)",
    lambda keep, corr: (RemovalSpec(
        "apartment", keep_rate=keep,
        mechanism=MARParent(parent_table="neighborhood",
                            attribute="pop_density", correlation=corr),
    ),),
    tf_keep_rate=0.3,
)
_scenario(
    "housing/mnar_self", "housing", ("mnar_self",),
    "expensive apartments hide their own listings (self-masking MNAR)",
    lambda keep, corr: (RemovalSpec(
        "apartment", keep_rate=keep,
        mechanism=MNARSelfMasking(attribute="price", sharpness=corr),
    ),),
    tf_keep_rate=0.3,
)
_scenario(
    "housing/threshold", "housing", ("threshold",),
    "prices above the 70th percentile are censored (value threshold)",
    lambda keep, corr: (RemovalSpec(
        "apartment", keep_rate=keep,
        mechanism=ValueThreshold(attribute="price", quantile=0.7),
    ),),
    tf_keep_rate=0.3,
)
_scenario(
    "housing/temporal_recent", "housing", ("temporal_recent",),
    "recently registered landlords are missing (recency bias)",
    lambda keep, corr: (RemovalSpec(
        "landlord", keep_rate=keep,
        mechanism=TemporalRecent(time_attribute="landlord_since", softness=0.2),
    ),),
    tf_keep_rate=0.3,
)
_scenario(
    "housing/fk_cascade", "housing", ("fk_cascade",),
    "whole neighborhoods of apartments vanish together (cluster removal)",
    lambda keep, corr: (RemovalSpec(
        "apartment", keep_rate=keep,
        mechanism=FKCascade(parent_table="neighborhood"),
    ),),
    tf_keep_rate=0.3,
)
_scenario(
    "housing/rare_value", "housing", ("rare_value",),
    "apartments with rare property types are removed first (long tail)",
    lambda keep, corr: (RemovalSpec(
        "apartment", keep_rate=keep,
        mechanism=RareValue(attribute="property_type", correlation=corr),
    ),),
    tf_keep_rate=0.3,
)
_scenario(
    "housing/multi_table", "housing", ("biased", "mnar_self"),
    "simultaneous apartment-price bias and landlord self-masking; "
    "dangling landlord FKs survive as missingness evidence",
    lambda keep, corr: (
        RemovalSpec("apartment", "price", keep, corr),
        RemovalSpec(
            "landlord", keep_rate=max(keep, 0.6),
            mechanism=MNARSelfMasking(attribute="landlord_response_rate",
                                      sharpness=corr),
        ),
    ),
    tf_keep_rate=0.3,
    # Hardened-protocol style: apartments of removed landlords stay; their
    # dangling FKs are exactly the evidence that a landlord is missing.
    dangling_parents=(),
)


# ----------------------------------------------------------------------
# Movies mechanism matrix (TF keep 20%, hardened link protocol).
# ----------------------------------------------------------------------
_scenario(
    "movies/mcar", "movies", ("mcar",),
    "movies vanish completely at random (links cascade)",
    lambda keep, corr: (RemovalSpec(
        "movie", keep_rate=keep, mechanism=MCAR(),
    ),),
    tf_keep_rate=0.2, dangling_parents=("movie",),
)
_scenario(
    "movies/temporal_recent", "movies", ("temporal_recent",),
    "the newest productions are not yet in the database (recency bias)",
    lambda keep, corr: (RemovalSpec(
        "movie", keep_rate=keep,
        mechanism=TemporalRecent(time_attribute="production_year",
                                 softness=0.2),
    ),),
    tf_keep_rate=0.2, dangling_parents=("movie",),
)
_scenario(
    "movies/rare_value", "movies", ("rare_value",),
    "movies of rare genres are dropped first (long tail)",
    lambda keep, corr: (RemovalSpec(
        "movie", keep_rate=keep,
        mechanism=RareValue(attribute="genre", correlation=corr),
    ),),
    tf_keep_rate=0.2, dangling_parents=("movie",),
)


# ----------------------------------------------------------------------
# Scale tier (site 1:n reading, counter-based generator; TF keep 50%).
# The invariant harness runs these at a tiny SF; the benchmarks rerun the
# same scenarios at SF 1/10/100 on the mapped backend.
# ----------------------------------------------------------------------
_scenario(
    "scale/mcar", "scale", ("mcar",),
    "readings vanish completely at random",
    lambda keep, corr: (RemovalSpec(
        "reading", keep_rate=keep, mechanism=MCAR(),
    ),),
)
_scenario(
    "scale/biased", "scale", ("biased",),
    "reading removal biased on its own measurement v0",
    lambda keep, corr: (RemovalSpec("reading", "v0", keep, corr),),
)
_scenario(
    "scale/mar_parent", "scale", ("mar_parent",),
    "readings of high-scoring sites go unreported (MAR via FK)",
    lambda keep, corr: (RemovalSpec(
        "reading", keep_rate=keep,
        mechanism=MARParent(parent_table="site", attribute="score",
                            correlation=corr),
    ),),
)
