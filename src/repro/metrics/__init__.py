"""Paper evaluation metrics (Eq. 1, Eq. 2, cardinality correction)."""

from .errors import (
    bias_reduction,
    cardinality_correction,
    categorical_fraction,
    relative_error,
    relative_error_improvement,
    weighted_average,
)

__all__ = [
    "relative_error",
    "relative_error_improvement",
    "bias_reduction",
    "cardinality_correction",
    "categorical_fraction",
    "weighted_average",
]
