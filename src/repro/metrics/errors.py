"""Evaluation metrics of the paper (§2.1, §7).

* **relative error** — |estimate - truth| / |truth|; for group-by queries
  the average over all result tuples (following DeepDB [17]).
* **relative error reduction / improvement** (Eq. 1) — error on the
  incomplete database minus error on the completed database.
* **bias reduction** (Eq. 2) — how much of the aggregate bias the completion
  removes, in [-inf, 1] (1 = fully debiased); for categorical attributes the
  fraction of the biased value replaces the average.
* **cardinality correction** (§7.3) — same construction on table sizes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..query import QueryResult


def relative_error(estimate: QueryResult, truth: QueryResult) -> float:
    """Average relative error over the truth's result tuples.

    Groups absent from the estimate contribute an error of 1 (the result
    tuple is effectively missing); division guards against zero truths.
    """
    if not truth.values:
        return 0.0 if not estimate.values else 1.0
    errors = []
    for group, true_value in truth.values.items():
        if group not in estimate.values:
            errors.append(1.0)
            continue
        est = estimate.values[group]
        denom = abs(true_value)
        if denom < 1e-12:
            errors.append(0.0 if abs(est) < 1e-12 else 1.0)
        else:
            errors.append(abs(est - true_value) / denom)
    return float(np.mean(errors))


def relative_error_improvement(
    incomplete: QueryResult, completed: QueryResult, truth: QueryResult
) -> float:
    """Eq. 1: error(incomplete) - error(completed); positive = completion
    helped.  This is the y-axis of Fig. 8."""
    return relative_error(incomplete, truth) - relative_error(completed, truth)


def bias_reduction(
    true_value: float, incomplete_value: float, completed_value: float
) -> float:
    """Eq. 2 on aggregate statistics (averages or categorical fractions).

    1 means the completion fully restored the statistic; 0 means no
    improvement; negative means the completion made it worse.  When the
    incomplete data shows (almost) no bias the metric is undefined — we
    return NaN and experiment runners skip those cells (matching the
    paper's practice of varying the removal correlation away from 0).
    """
    denom = abs(true_value - incomplete_value)
    if denom < 1e-12:
        return float("nan")
    return 1.0 - abs(completed_value - true_value) / denom


def cardinality_correction(
    true_count: float, incomplete_count: float, completed_count: float
) -> float:
    """§7.3: 1 - |completed - true| / |incomplete - true|."""
    return bias_reduction(true_count, incomplete_count, completed_count)


def categorical_fraction(values: np.ndarray, value, weights: Optional[np.ndarray] = None) -> float:
    """Weighted fraction of rows equal to ``value`` (the categorical
    counterpart of an average in Eq. 2)."""
    hits = (np.asarray(values) == value).astype(float)
    if weights is None:
        return float(hits.mean()) if len(hits) else float("nan")
    w = np.asarray(weights, dtype=float)
    total = w.sum()
    if total <= 0:
        return float("nan")
    return float((hits * w).sum() / total)


def weighted_average(values: np.ndarray, weights: Optional[np.ndarray] = None) -> float:
    """Weighted mean of a numeric column."""
    arr = np.asarray(values, dtype=float)
    if weights is None:
        return float(arr.mean()) if len(arr) else float("nan")
    w = np.asarray(weights, dtype=float)
    total = w.sum()
    if total <= 0:
        return float("nan")
    return float((arr * w).sum() / total)
