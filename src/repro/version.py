"""The package version, with ``pyproject.toml`` as the single source of truth.

``repro.__version__`` and the ``repro_version`` stamped into serving
artifacts both resolve through :func:`repro_version`:

1. a source/editable checkout reads the adjacent ``pyproject.toml``
   directly (installed metadata can lag an editable install, and the
   tier-1 ``PYTHONPATH=src`` invocation has no metadata at all),
2. an installed wheel falls back to ``importlib.metadata``,
3. otherwise a sentinel version marks the provenance as unknown.
"""

from __future__ import annotations

import re
from pathlib import Path

DIST_NAME = "restore-repro"
_FALLBACK = "0.0.0+unknown"


def _version_from_pyproject() -> str | None:
    pyproject = Path(__file__).resolve().parent.parent.parent / "pyproject.toml"
    try:
        text = pyproject.read_text(encoding="utf-8")
    except OSError:
        return None
    match = re.search(
        r'^version\s*=\s*"([^"]+)"', text, flags=re.MULTILINE
    )
    return match.group(1) if match else None


def _version_from_metadata() -> str | None:
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - py<3.8 only
        return None
    try:
        return version(DIST_NAME)
    except PackageNotFoundError:
        return None


def repro_version() -> str:
    """The version string stamped into artifacts and ``repro.__version__``."""
    return _version_from_pyproject() or _version_from_metadata() or _FALLBACK
