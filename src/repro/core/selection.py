"""Model and path selection (paper §5).

Three escalating strategies:

* **Basic** — compare each candidate's held-out target loss with the loss of
  the unconditional marginal.  No gap ⇒ the evidence carries no signal for
  the target attributes ⇒ prune the model (Fig. 5b shows the test loss
  tracks predictability).
* **Advanced** — derive a second-level incomplete scenario from the
  available data (re-applying the removal characteristics), train each
  candidate there, and score how well it reconstructs the first-level data —
  which we actually possess.  Rank candidates by that reconstruction score.
* **Suspected bias** — the user suspects a direction ("average rent is
  underestimated"): keep only candidates whose completion moves the
  suspected aggregate in the right direction, then rank as before.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence


from ..relational import CompletionPath
from .models import _CompletionModelBase


class BiasDirection(enum.Enum):
    """The user's suspicion about the incomplete aggregate (§5)."""

    UNDERESTIMATED = "under"   # completion should move the average up
    OVERESTIMATED = "over"     # completion should move the average down


@dataclass
class SuspectedBias:
    """User-provided hint: ``attribute``'s average is biased in ``direction``.

    For categorical attributes, ``value`` names the category whose fraction
    is suspected biased.
    """

    attribute: str
    direction: BiasDirection
    value: Optional[object] = None


@dataclass
class CandidateScore:
    """Selection bookkeeping for one candidate completion model."""

    model: _CompletionModelBase
    target_loss: float
    marginal_loss: float
    derived_score: Optional[float] = None
    direction_ok: Optional[bool] = None

    @property
    def signal(self) -> float:
        """How much better than the marginal the model predicts the target."""
        return self.marginal_loss - self.target_loss

    @property
    def path(self) -> CompletionPath:
        return self.model.layout.path

    def describe(self) -> str:
        extra = ""
        if self.derived_score is not None:
            extra = f", derived={self.derived_score:.3f}"
        return (
            f"{self.model.kind}:{self.path} "
            f"(loss={self.target_loss:.3f}, signal={self.signal:.3f}{extra})"
        )


def score_candidates(models: Sequence[_CompletionModelBase]) -> List[CandidateScore]:
    """Wrap fitted models with their basic-selection statistics."""
    return [
        CandidateScore(
            model=m,
            target_loss=m.target_test_loss(),
            marginal_loss=m.marginal_target_loss(),
        )
        for m in models
    ]


def basic_filter(
    candidates: Sequence[CandidateScore],
    min_signal: float = 0.0,
) -> List[CandidateScore]:
    """Drop models whose evidence provides no predictive signal (§5 basic).

    If every candidate fails the bar, the single best one is kept — the
    paper still answers the query, just with the least-bad model (and wide
    confidence intervals, §6).
    """
    kept = [c for c in candidates if c.signal > min_signal]
    if kept:
        return sorted(kept, key=lambda c: -c.signal)
    best = max(candidates, key=lambda c: c.signal)
    return [best]


def rank_by_derived_scenario(
    candidates: Sequence[CandidateScore],
    evaluate: Callable[[CandidateScore], float],
) -> List[CandidateScore]:
    """Advanced selection: rank by reconstruction quality on a derived
    scenario.  ``evaluate`` returns a bias-reduction-style score (higher is
    better); it is supplied by the engine, which owns the derived dataset
    and retraining machinery."""
    scored = []
    for candidate in candidates:
        candidate.derived_score = evaluate(candidate)
        scored.append(candidate)
    return sorted(scored, key=lambda c: -(c.derived_score or float("-inf")))


def apply_suspected_bias(
    candidates: Sequence[CandidateScore],
    bias: SuspectedBias,
    completed_aggregate: Callable[[CandidateScore], float],
    incomplete_aggregate: float,
) -> List[CandidateScore]:
    """Keep candidates whose completion moves the aggregate as suspected.

    ``completed_aggregate`` computes the suspected attribute's aggregate on
    the candidate's completed data.  Candidates moving the aggregate the
    wrong way are demoted (not dropped — if none move correctly the original
    ranking survives, mirroring the paper's soft use of the hint).
    """
    annotated: List[CandidateScore] = []
    for candidate in candidates:
        value = completed_aggregate(candidate)
        if bias.direction is BiasDirection.UNDERESTIMATED:
            candidate.direction_ok = value > incomplete_aggregate
        else:
            candidate.direction_ok = value < incomplete_aggregate
        annotated.append(candidate)
    correct = [c for c in annotated if c.direction_ok]
    wrong = [c for c in annotated if not c.direction_ok]
    return correct + wrong
