"""Sampling budgets and progressive refinement records.

Budgeted query answering (the AQP mode the paper's use case calls for)
completes only a prefix of the root-row chunk grid, answers from those
rows, and attaches a §6 :class:`~repro.core.confidence.ConfidenceBand`.
As more chunks complete, the estimate is *refined*: each refinement covers
a superset of the previous one's chunks, chunk outputs are pure, and the
final refinement covers the full grid — so the sequence converges to
exactly the answer a budgetless pushdown run produces.

This module holds the plain-data pieces: :class:`SamplingBudget` describes
how many chunks each refinement may add, :class:`Refinement` one emitted
estimate.  The driving loop lives in
:meth:`repro.core.engine.ReStore.answer_progressive`; streaming to
concurrent callers in :class:`repro.serving.CompletionService`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..query import Query, QueryResult
from .confidence import ConfidenceBand


@dataclass(frozen=True)
class SamplingBudget:
    """How a progressive run spends chunks across refinements.

    The first refinement answers after ``initial_chunks`` chunks; each
    subsequent one multiplies the cumulative chunk count by ``growth``
    (geometric schedules keep the number of refinements logarithmic in the
    grid size, so early answers come fast and late ones don't re-aggregate
    per chunk).  ``max_chunks`` truncates the run — ``None`` always
    finishes with the full grid, which is what makes the final refinement
    exact.
    """

    initial_chunks: int = 1
    growth: float = 2.0
    max_chunks: Optional[int] = None

    def __post_init__(self) -> None:
        if self.initial_chunks < 1:
            raise ValueError("initial_chunks must be >= 1")
        if self.growth < 1.0:
            raise ValueError("growth must be >= 1.0")
        if self.max_chunks is not None and self.max_chunks < 1:
            raise ValueError("max_chunks must be >= 1 or None")

    def schedule(self, total_chunks: int) -> List[int]:
        """Cumulative chunk counts of each refinement for a grid of
        ``total_chunks`` chunks (strictly increasing, last entry capped at
        ``min(total_chunks, max_chunks)``)."""
        cap = total_chunks
        if self.max_chunks is not None:
            cap = min(cap, self.max_chunks)
        if cap <= 0:
            return []
        counts: List[int] = []
        current = float(min(self.initial_chunks, cap))
        while True:
            count = min(int(current), cap)
            if not counts or count > counts[-1]:
                counts.append(count)
            if count >= cap:
                return counts
            grown = current * self.growth
            # growth == 1.0 (or rounding) must still advance the schedule
            current = max(grown, count + 1)


@dataclass
class Refinement:
    """One progressively refined answer.

    ``band`` is ``None`` when the query's aggregate has no §6 band (grouped
    queries, COUNT, categorical columns).  Band widths are non-increasing
    across a run's refinements; the ``final`` refinement's result is the
    exact pushdown answer.
    """

    result: QueryResult
    query: Query
    band: Optional[ConfidenceBand]
    chunks_completed: int
    chunks_total: int
    index: int
    final: bool

    @property
    def budget_utilization(self) -> float:
        """Fraction of the (possibly truncated) grid completed so far."""
        if self.chunks_total == 0:
            return 1.0
        return self.chunks_completed / self.chunks_total
