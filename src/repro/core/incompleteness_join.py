"""The incompleteness join (paper Algorithm 1, §4.2/§4.3).

Walks a completion path from the root evidence table to the incomplete
target, producing the join as it would look on a complete database:

* **1:n hops** — per evidence tuple, determine the total tuple factor
  (annotated truth where available, model prediction otherwise), join the
  *existing* children, and synthesize the missing ``TF - existing`` children
  with the AR/SSAR model.
* **n:1 hops** — join the existing partner where the foreign key resolves;
  synthesize a partner for rows without one.  Rows whose own tuples were
  synthesized (no real keys) receive the over-generation weight correction
  of §4.3: a missing parent re-appears once per synthesized child, so each
  occurrence is down-weighted by the expected children-per-parent.
* **Euclidean replacement** — synthesized tuples of *complete* tables are
  replaced by their nearest existing tuples (restoring real keys), per §4.2.

The result is a :class:`~repro.query.JoinResult` with fractional row
weights, directly consumable by the shared filter/aggregate operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..query import JoinResult
from ..relational import MISSING_KEY, ColumnKind, CompletionPath
from ..relational.tuple_factors import TF_UNKNOWN
from .forest import _gather_children, build_child_index
from .models import _CompletionModelBase
from .nn_replacement import EuclideanReplacer


@dataclass
class CompletedJoin:
    """Output of an incompleteness join plus synthesis bookkeeping.

    ``codes`` holds the final model-space code matrix of every output row
    (evidence + synthesized values) and ``context`` the SSAR tree contexts —
    the confidence estimator (§6) re-derives per-tuple conditional
    distributions from them.
    """

    result: JoinResult
    path: CompletionPath
    num_synthesized: Dict[str, int] = field(default_factory=dict)
    synthesized_mask: Dict[str, np.ndarray] = field(default_factory=dict)
    codes: Optional[np.ndarray] = None
    context: Optional[np.ndarray] = None

    @property
    def num_rows(self) -> int:
        return self.result.num_rows

    def target_synthesized(self) -> np.ndarray:
        """Per-row flag: the target-table tuple of this row is synthetic."""
        return self.synthesized_mask[self.path.target]


@dataclass
class _WalkState:
    """Rows of the partially completed join after some number of hops."""

    codes: np.ndarray                 # (R, V) model-space codes, prefix filled
    columns: Dict[str, np.ndarray]    # qualified raw columns of visited tables
    weights: np.ndarray               # (R,) fractional multiplicities
    synthesized: np.ndarray           # (R,) latest-table tuple is synthetic
    current_rows: np.ndarray          # (R,) row in the db table, -1 if synthetic
    context: Optional[np.ndarray]     # (R, C) SSAR context or None

    @property
    def num_rows(self) -> int:
        return len(self.weights)

    def take(self, idx: np.ndarray) -> "_WalkState":
        return _WalkState(
            codes=self.codes[idx],
            columns={k: v[idx] for k, v in self.columns.items()},
            weights=self.weights[idx],
            synthesized=self.synthesized[idx],
            current_rows=self.current_rows[idx],
            context=None if self.context is None else self.context[idx],
        )


def _concat_states(a: _WalkState, b: _WalkState) -> _WalkState:
    if a.num_rows == 0:
        return b
    if b.num_rows == 0:
        return a
    return _WalkState(
        codes=np.concatenate([a.codes, b.codes]),
        columns={
            k: np.concatenate([a.columns[k], b.columns[k]]) for k in a.columns
        },
        weights=np.concatenate([a.weights, b.weights]),
        synthesized=np.concatenate([a.synthesized, b.synthesized]),
        current_rows=np.concatenate([a.current_rows, b.current_rows]),
        context=(
            None if a.context is None
            else np.concatenate([a.context, b.context])
        ),
    )


class IncompletenessJoin:
    """Executes Algorithm 1 for one completion model.

    Parameters
    ----------
    model:
        A fitted AR or SSAR completion model; its layout supplies the
        database, annotation, path and codecs.
    approximate_replacement:
        Use the random-projection approximate nearest-neighbour mode.
    replace_synthesized:
        Disable to keep synthesized tuples even for complete tables
        (used by ablation benchmarks; the paper always replaces).
    """

    def __init__(
        self,
        model: _CompletionModelBase,
        approximate_replacement: bool = True,
        replace_synthesized: bool = True,
        seed: int = 0,
    ):
        self.model = model
        self.layout = model.layout
        self.db = model.layout.db
        self.annotation = model.layout.annotation
        self.path = model.layout.path
        self.approximate_replacement = approximate_replacement
        self.replace_synthesized = replace_synthesized
        self.rng = np.random.default_rng(seed)
        self._replacers: Dict[str, EuclideanReplacer] = {}
        self._num_synth: Dict[str, int] = {}
        self._synth_masks: Dict[str, np.ndarray] = {}
        # Synthetic tuples get unique negative ids (below the -1 sentinel)
        # so projections can deduplicate logical tuples.
        self._next_synth_id = -2

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, stop_table: Optional[str] = None) -> CompletedJoin:
        """Complete the join along the path.

        ``stop_table`` truncates the walk after that table is reached — a
        merged model trained on a longer path serves any prefix sub-path
        this way (§3.4).
        """
        tables = list(self.path.tables)
        if stop_table is not None:
            if stop_table not in tables:
                raise ValueError(f"{stop_table} is not on {self.path}")
            tables = tables[: tables.index(stop_table) + 1]
            if len(tables) < 2:
                raise ValueError("stop_table must leave at least one hop")
        state = self._initial_state()
        for slot in range(1, len(tables)):
            state = self._hop(state, slot)
        # The final state's synthesized flags refer to the last completed
        # table — exactly what confidence estimation (§6) needs.
        final_target = tables[-1]
        self._synth_masks[final_target] = state.synthesized
        result = JoinResult(dict(state.columns), weights=state.weights)
        effective_path = CompletionPath(tuple(tables))
        return CompletedJoin(
            result=result,
            path=effective_path,
            num_synthesized=dict(self._num_synth),
            synthesized_mask=dict(self._synth_masks),
            codes=state.codes,
            context=state.context,
        )

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _initial_state(self) -> _WalkState:
        root = self.path.tables[0]
        table = self.db.table(root)
        rows = np.arange(len(table), dtype=np.int64)
        codes = np.zeros((len(table), self.layout.num_variables), dtype=np.int64)
        start, stop = self.layout.slot_range(0)
        encoder = self.layout.encoders[root]
        if encoder.columns:
            codes[:, start:stop] = encoder.encode_table(table)
        columns = {f"{root}.{c}": np.array(table[c]) for c in table.column_names}
        context = self.model.context_for_roots(rows)
        return _WalkState(
            codes=codes,
            columns=columns,
            weights=np.ones(len(table)),
            synthesized=np.zeros(len(table), dtype=bool),
            current_rows=rows,
            context=context,
        )

    def _replacer(self, table_name: str) -> EuclideanReplacer:
        if table_name not in self._replacers:
            self._replacers[table_name] = EuclideanReplacer(
                self.db.table(table_name),
                approximate=self.approximate_replacement,
                seed=int(self.rng.integers(1 << 31)),
            )
        return self._replacers[table_name]

    # ------------------------------------------------------------------
    # Hops
    # ------------------------------------------------------------------
    def _hop(self, state: _WalkState, slot: int) -> _WalkState:
        prev = self.path.tables[slot - 1]
        new = self.path.tables[slot]
        if self.db.is_fan_out_step(prev, new):
            out = self._fan_out_hop(state, slot, prev, new)
        else:
            out = self._n_to_1_hop(state, slot, prev, new)
        return out

    def _fan_out_hop(self, state: _WalkState, slot: int, prev: str, new: str) -> _WalkState:
        fk = self.layout.fan_out_hops[slot]
        tf_idx = self.layout.tf_variable_index(slot)
        child_index = build_child_index(self.db, fk)
        existing_counts = np.zeros(state.num_rows, dtype=np.int64)
        real = state.current_rows >= 0
        existing_counts[real] = child_index.counts()[state.current_rows[real]]

        # Total tuple factor: annotated truth where available, else sampled.
        annotated = self.layout.annotated_tfs(slot)
        totals = np.full(state.num_rows, TF_UNKNOWN, dtype=np.int64)
        totals[real] = annotated[state.current_rows[real]]
        unknown = totals == TF_UNKNOWN
        if unknown.any():
            prefix = state.codes[unknown]
            ctx = None if state.context is None else state.context[unknown]
            sampled = self.model.predict_tuple_factors(
                prefix, slot, self.rng, ctx, min_counts=existing_counts[unknown]
            )
            totals[unknown] = sampled
        totals = np.maximum(totals, existing_counts)
        tf_codes = self.layout.tf_codec_for(slot).encode(totals)

        # ---- existing part: join available children ----
        parts: List[_WalkState] = []
        if real.any():
            rows_real = np.flatnonzero(real)
            child_rows, local_owner = _gather_children(
                child_index, state.current_rows[rows_real]
            )
            owners = rows_real[local_owner]
            if len(child_rows):
                existing = state.take(owners)
                existing.codes[:, tf_idx] = tf_codes[owners]
                self._fill_real_table(existing, slot, new, child_rows)
                parts.append(existing)

        # ---- synthesized part ----
        missing = totals - existing_counts
        owners_syn = np.repeat(np.arange(state.num_rows), np.maximum(missing, 0))
        if len(owners_syn):
            synth = state.take(owners_syn)
            synth.codes[:, tf_idx] = tf_codes[owners_syn]
            self._synthesize_table(synth, slot, new)
            # The synthesized child's FK to its evidence parent is known.
            parent_keys = self._parent_keys_for(state, prev, fk.parent_column)
            synth.columns[f"{new}.{fk.child_column}"] = np.where(
                state.synthesized[owners_syn],
                MISSING_KEY,
                parent_keys[owners_syn],
            )
            synth = self._maybe_replace(synth, slot, new)
            parts.append(synth)

        if not parts:
            return self._empty_after_slot(state, slot, new)
        out = parts[0]
        for part in parts[1:]:
            out = _concat_states(out, part)
        return out

    def _n_to_1_hop(self, state: _WalkState, slot: int, prev: str, new: str) -> _WalkState:
        fk = self.db.fk_between(prev, new)
        parent_table = self.db.table(new)
        key_to_row = parent_table.key_index()
        fk_values = state.columns[f"{prev}.{fk.child_column}"]
        partner = np.array(
            [key_to_row.get(int(v), -1) if v >= 0 else -1 for v in fk_values],
            dtype=np.int64,
        )

        parts: List[_WalkState] = []
        has_partner = partner >= 0
        if has_partner.any():
            idx = np.flatnonzero(has_partner)
            existing = state.take(idx)
            self._fill_real_table(existing, slot, new, partner[idx])
            parts.append(existing)

        needs_synth = ~has_partner
        # Children whose FK is a real key reference a *removed* parent: the
        # missing tuple's key is known, so all children sharing it must get
        # one shared synthesized parent (keyed by that FK value).  Children
        # that are themselves synthetic (sentinel FK) get per-row parents
        # with the §4.3 over-generation weight correction.
        dangling = needs_synth & (np.asarray(fk_values) >= 0)
        orphan = needs_synth & ~dangling

        if dangling.any():
            idx = np.flatnonzero(dangling)
            keys = np.asarray(fk_values)[idx].astype(np.int64)
            unique_keys, first_pos, inverse = np.unique(
                keys, return_index=True, return_inverse=True
            )
            reps = state.take(idx[first_pos])
            self._synthesize_table(reps, slot, new)
            shared = reps.take(inverse)
            shared_state = state.take(idx)
            # Keep each row's own evidence prefix; graft only the shared
            # parent's slot codes and columns on top.
            start, stop = self.layout.slot_range(slot)
            shared_state.codes[:, start:stop] = shared.codes[:, start:stop]
            for column in self.db.table(new).column_names:
                shared_state.columns[f"{new}.{column}"] = shared.columns[
                    f"{new}.{column}"
                ].copy()
            pk = self.db.table(new).primary_key
            if pk is not None:
                shared_state.columns[f"{new}.{pk}"] = keys
            shared_state.synthesized = np.ones(len(idx), dtype=bool)
            shared_state.current_rows = np.full(len(idx), -1, dtype=np.int64)
            parts.append(shared_state)

        if orphan.any():
            idx = np.flatnonzero(orphan)
            synth = state.take(idx)
            self._synthesize_table(synth, slot, new)
            from_synth = state.synthesized[idx]
            if from_synth.any():
                correction = self._orphan_weight(fk)
                synth.weights = synth.weights * np.where(from_synth, correction, 1.0)
            synth = self._maybe_replace(synth, slot, new)
            parts.append(synth)

        if not parts:
            return self._empty_after_slot(state, slot, new)
        out = parts[0]
        for part in parts[1:]:
            out = _concat_states(out, part)
        return out

    # ------------------------------------------------------------------
    # Row materialization helpers
    # ------------------------------------------------------------------
    def _fill_real_table(self, part: _WalkState, slot: int, table_name: str,
                         rows: np.ndarray) -> None:
        """Attach real tuples of ``table_name`` (by row) to the state part."""
        table = self.db.table(table_name)
        for column in table.column_names:
            part.columns[f"{table_name}.{column}"] = table[column][rows]
        start, stop = self.layout.slot_range(slot)
        tf_idx = self.layout.tf_variable_index(slot)
        col_start = start if tf_idx is None else tf_idx + 1
        encoder = self.layout.encoders[table_name]
        if encoder.columns:
            part.codes[:, col_start:stop] = encoder.encode_columns(
                {c: table[c][rows] for c in encoder.columns}
            )
        part.synthesized = np.zeros(part.num_rows, dtype=bool)
        part.current_rows = np.asarray(rows, dtype=np.int64)

    def _synthesize_table(self, part: _WalkState, slot: int, table_name: str) -> None:
        """Sample the slot's columns and materialize raw values/keys."""
        sampled = self.model.sample_slot(part.codes, slot, self.rng, part.context)
        part.codes = sampled
        start, stop = self.layout.slot_range(slot)
        tf_idx = self.layout.tf_variable_index(slot)
        col_start = start if tf_idx is None else tf_idx + 1
        decoded = self.layout.decode_slot_codes(
            slot, sampled[:, col_start:stop], rng=self.rng
        )
        table = self.db.table(table_name)
        for column in table.column_names:
            if column in decoded:
                part.columns[f"{table_name}.{column}"] = decoded[column]
            elif column == table.primary_key:
                ids = np.arange(
                    self._next_synth_id,
                    self._next_synth_id - part.num_rows,
                    -1,
                    dtype=np.int64,
                )
                self._next_synth_id -= part.num_rows
                part.columns[f"{table_name}.{column}"] = ids
            else:
                part.columns[f"{table_name}.{column}"] = np.full(
                    part.num_rows, MISSING_KEY, dtype=np.int64
                )
        part.synthesized = np.ones(part.num_rows, dtype=bool)
        part.current_rows = np.full(part.num_rows, -1, dtype=np.int64)
        self._num_synth[table_name] = (
            self._num_synth.get(table_name, 0) + part.num_rows
        )

    def _maybe_replace(self, part: _WalkState, slot: int, table_name: str) -> _WalkState:
        """Euclidean replacement for synthesized tuples of complete tables."""
        if not self.replace_synthesized or not self.annotation.is_complete(table_name):
            return part
        if part.num_rows == 0:
            return part
        replacer = self._replacer(table_name)
        synth_cols = {
            c: part.columns[f"{table_name}.{c}"] for c in replacer.space.columns
        }
        rows = replacer.replace(synth_cols)
        self._fill_real_table(part, slot, table_name, rows)
        return part

    def _parent_keys_for(self, state: _WalkState, table_name: str,
                         key_column: str) -> np.ndarray:
        column = f"{table_name}.{key_column}"
        if column in state.columns:
            return state.columns[column]
        return np.full(state.num_rows, MISSING_KEY, dtype=np.int64)

    def _empty_after_slot(self, state: _WalkState, slot: int, new: str) -> _WalkState:
        table = self.db.table(new)
        columns = {k: v[:0] for k, v in state.columns.items()}
        for column in table.column_names:
            columns[f"{new}.{column}"] = np.array(table[column][:0])
        return _WalkState(
            codes=state.codes[:0],
            columns=columns,
            weights=state.weights[:0],
            synthesized=state.synthesized[:0],
            current_rows=state.current_rows[:0],
            context=None if state.context is None else state.context[:0],
        )

    def _mean_children_per_parent(self, fk) -> float:
        """Average observed fan-out (children per matched parent) >= 1."""
        index = build_child_index(self.db, fk)
        counts = index.counts()
        positive = counts[counts > 0]
        if len(positive) == 0:
            return 1.0
        return float(positive.mean())

    def _orphan_weight(self, fk) -> float:
        """§4.3 over-generation correction for keyless synthesized children.

        A synthesized child row spawns a parent tuple, but a missing parent
        re-appears once per child, and — when the available links still
        carry dangling keys — most synthesized links actually point at
        *existing* parents.  A random link references a missing parent with
        the observed dangling fraction ``d``, and each missing parent is hit
        ``mean children`` times, so the weight is ``d / mean``.  When the
        removal protocol dropped the dangling links (``d == 0`` observed but
        children of missing parents are known to be gone), every synthesized
        child stands for a missing parent: weight ``1 / mean``.
        """
        child = self.db.table(fk.child_table)
        refs = child[fk.child_column]
        parent_keys = set(self.db.table(fk.parent_table)[fk.parent_column].tolist())
        valid = refs[refs >= 0]
        if len(valid) == 0:
            return 1.0
        dangling = np.fromiter(
            (v not in parent_keys for v in valid.tolist()), dtype=bool,
            count=len(valid),
        ).mean()
        mean_children = self._mean_children_per_parent(fk)
        if dangling > 0:
            return float(dangling) / mean_children
        return 1.0 / mean_children
