"""The incompleteness join (paper Algorithm 1, §4.2/§4.3).

Walks a completion path from the root evidence table to the incomplete
target, producing the join as it would look on a complete database:

* **1:n hops** — per evidence tuple, determine the total tuple factor
  (annotated truth where available, model prediction otherwise), join the
  *existing* children, and synthesize the missing ``TF - existing`` children
  with the AR/SSAR model.
* **n:1 hops** — join the existing partner where the foreign key resolves;
  synthesize a partner for rows without one.  Rows whose own tuples were
  synthesized (no real keys) receive the over-generation weight correction
  of §4.3: a missing parent re-appears once per synthesized child, so each
  occurrence is down-weighted by the expected children-per-parent.
* **Euclidean replacement** — synthesized tuples of *complete* tables are
  replaced by their nearest existing tuples (restoring real keys), per §4.2.

Execution is handled by the inference runtime (:mod:`repro.runtime`):

* Model forwards run on the graph-free compiled float32 path by default —
  no autograd graphs are built while sampling.
* ``run()`` streams over chunks of root evidence rows (``chunk_size``), so
  peak transient memory is bounded on large databases.  Every walk row
  carries a counter-based random stream derived from its lineage (root row
  plus child ordinals), which makes each output row a pure function of the
  seed and the data — chunked and unchunked runs produce the same rows
  bitwise (row *order* differs: each chunk emits its rows together).
  Shared parents synthesized for dangling foreign keys derive their stream
  from the *key value*, so chunks that split a key's children still
  materialize the same parent tuple.
* Because chunks are pure, ``run()`` can fan them out over an executor
  (``n_workers`` / ``parallel_backend`` — see :mod:`repro.runtime.parallel`).
  Thread workers share this join object (walks accumulate into chunk-local
  accumulators, shared caches are pre-warmed); process workers receive a
  picklable :class:`~repro.core.models.CompletionSnapshot` — the compiled
  float32 model, never the autograd module — and rebuild a worker-local
  join from it.  Dangling-FK parents are parked per chunk and merged
  deterministically after the fan-out barrier, so output rows are bitwise
  identical (up to order) across backends and worker counts.

The result is a :class:`~repro.query.JoinResult` with fractional row
weights, directly consumable by the shared filter/aggregate operators.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import activate, current_context, trace, tracing_enabled
from ..query import JoinResult
from ..query.pushdown import PushdownPlan, conjunction_mask
from ..relational import MISSING_KEY, CompletionPath
from ..relational.column import ColumnKind
from ..relational.storage import StoreColumns, StoreWriter
from ..relational.tuple_factors import TF_UNKNOWN
from ..runtime import rng as rt_rng
from ..runtime.parallel import SerialExecutor, default_chunk_size, get_executor
from ..runtime.rng import chunk_slices
from .forest import ChildIndex, _gather_children, build_child_index, match_keys
from .models import _CompletionModelBase
from .nn_replacement import EuclideanReplacer

_SYNTH_ID_MASK = np.uint64((1 << 62) - 1)


@dataclass
class CompletedJoin:
    """Output of an incompleteness join plus synthesis bookkeeping.

    ``codes`` holds the final model-space code matrix of every output row
    (evidence + synthesized values) and ``context`` the SSAR tree contexts —
    the confidence estimator (§6) re-derives per-tuple conditional
    distributions from them.
    """

    result: JoinResult
    path: CompletionPath
    num_synthesized: Dict[str, int] = field(default_factory=dict)
    synthesized_mask: Dict[str, np.ndarray] = field(default_factory=dict)
    codes: Optional[np.ndarray] = None
    context: Optional[np.ndarray] = None
    #: run-level pushdown provenance (roots scanned vs qualifying, chunks
    #: walked vs total, pushed-filter counts by kind); None for plain runs.
    pushdown: Optional[Dict[str, object]] = None

    @property
    def num_rows(self) -> int:
        return self.result.num_rows

    def target_synthesized(self) -> np.ndarray:
        """Per-row flag: the target-table tuple of this row is synthetic."""
        return self.synthesized_mask[self.path.target]


@dataclass
class _WalkState:
    """Rows of the partially completed join after some number of hops.

    ``streams``/``counters`` are the rows' counter-based random streams
    (see :mod:`repro.runtime.rng`): the stream identifies the row's lineage,
    the counter how many uniforms it has consumed.
    """

    codes: np.ndarray                 # (R, V) model-space codes, prefix filled
    columns: Dict[str, np.ndarray]    # qualified raw columns of visited tables
    weights: np.ndarray               # (R,) fractional multiplicities
    synthesized: np.ndarray           # (R,) latest-table tuple is synthetic
    current_rows: np.ndarray          # (R,) row in the db table, -1 if synthetic
    context: Optional[np.ndarray]     # (R, C) SSAR context or None
    streams: np.ndarray               # (R,) uint64 per-row random stream ids
    counters: np.ndarray              # (R,) uint64 per-row draw counters

    @property
    def num_rows(self) -> int:
        return len(self.weights)

    def take(self, idx: np.ndarray) -> "_WalkState":
        return _WalkState(
            codes=self.codes[idx],
            columns={k: v[idx] for k, v in self.columns.items()},
            weights=self.weights[idx],
            synthesized=self.synthesized[idx],
            current_rows=self.current_rows[idx],
            context=None if self.context is None else self.context[idx],
            streams=self.streams[idx],
            counters=self.counters[idx],
        )


def _concat_states(a: _WalkState, b: _WalkState) -> _WalkState:
    return _concat_many([a, b])


def _materialize_parked(parked: List[_WalkState]) -> _WalkState:
    """Concatenate parked states into a freshly owned state.

    ``_resolve_dangling`` mutates its input in place; ``_concat_many``
    returns the input itself for a single non-empty state, which would
    corrupt chunk outputs held by the partial-completion cache.  Copy in
    that aliasing case so assembly never writes into cached outputs.
    """
    merged = _concat_many(parked)
    if any(merged is state for state in parked):
        merged = merged.take(np.arange(merged.num_rows, dtype=np.int64))
    return merged


def _concat_many(states: List[_WalkState]) -> _WalkState:
    """Concatenate walk states with one copy per field, not one per state."""
    non_empty = [s for s in states if s.num_rows > 0]
    if not non_empty:
        return states[0]
    if len(non_empty) == 1:
        return non_empty[0]
    first = non_empty[0]
    return _WalkState(
        codes=np.concatenate([s.codes for s in non_empty]),
        columns={
            k: np.concatenate([s.columns[k] for s in non_empty])
            for k in first.columns
        },
        weights=np.concatenate([s.weights for s in non_empty]),
        synthesized=np.concatenate([s.synthesized for s in non_empty]),
        current_rows=np.concatenate([s.current_rows for s in non_empty]),
        context=(
            None if first.context is None
            else np.concatenate([s.context for s in non_empty])
        ),
        streams=np.concatenate([s.streams for s in non_empty]),
        counters=np.concatenate([s.counters for s in non_empty]),
    )


@dataclass
class _ShardAccumulator:
    """Synthesis side-state produced while walking one shard of rows.

    Walks write here instead of mutating the join object, which is what
    makes a chunk walk a pure function — safe to run on any worker — and
    gives the post-barrier merge one explicit, deterministic code path.
    """

    parked: Dict[int, List[_WalkState]] = field(default_factory=dict)
    num_synth: Dict[str, int] = field(default_factory=dict)
    issued_ids: Dict[str, List[np.ndarray]] = field(default_factory=dict)

    def park(self, slot: int, state: _WalkState) -> None:
        self.parked.setdefault(slot, []).append(state)

    def count_synth(self, table_name: str, count: int) -> None:
        self.num_synth[table_name] = self.num_synth.get(table_name, 0) + count

    def record_ids(self, table_name: str, ids: np.ndarray) -> None:
        self.issued_ids.setdefault(table_name, []).append(ids)

    def merge(self, other: "_ShardAccumulator") -> None:
        """Fold another shard's side-state into this one (order-preserving)."""
        for slot, states in other.parked.items():
            self.parked.setdefault(slot, []).extend(states)
        for table_name, count in other.num_synth.items():
            self.count_synth(table_name, count)
        for table_name, ids in other.issued_ids.items():
            self.issued_ids.setdefault(table_name, []).extend(ids)


@dataclass
class _ChunkOutput:
    """One chunk's completed walk state plus its synthesis side-state."""

    state: _WalkState
    acc: _ShardAccumulator

    @property
    def num_rows(self) -> int:
        return self.state.num_rows


def _spill_state(state: _WalkState, path: str) -> None:
    """Write a walk state to one ``.npz`` (object columns via pickle)."""
    arrays: Dict[str, np.ndarray] = {
        "codes": state.codes,
        "weights": state.weights,
        "synthesized": state.synthesized,
        "current_rows": state.current_rows,
        "streams": state.streams,
        "counters": state.counters,
    }
    if state.context is not None:
        arrays["context"] = state.context
    for name, values in state.columns.items():
        arrays[f"col::{name}"] = np.asarray(values)
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)


def _load_state(path: str) -> _WalkState:
    with np.load(path, allow_pickle=True) as npz:
        columns = {
            key[len("col::"):]: npz[key]
            for key in npz.files if key.startswith("col::")
        }
        return _WalkState(
            codes=npz["codes"],
            columns=columns,
            weights=npz["weights"],
            synthesized=npz["synthesized"],
            current_rows=npz["current_rows"],
            context=npz["context"] if "context" in npz.files else None,
            streams=npz["streams"],
            counters=npz["counters"],
        )


@dataclass
class _SpilledChunkOutput:
    """A chunk output whose walked rows live on disk, not in RAM.

    Produced when the join runs with a ``spill_dir``: the worker (thread
    or process) writes the state to ``path`` and ships back only this
    handle plus the small synthesis side-state, so fan-out result
    transfer and caller-side residency are O(1) in the chunk's row count.
    ``cacheable`` is False — the backing file is scoped to one run, so
    the partial-completion cache must not retain the handle.
    """

    path: str
    acc: _ShardAccumulator
    num_rows: int

    cacheable = False

    def load(self) -> _ChunkOutput:
        return _ChunkOutput(state=_load_state(self.path), acc=self.acc)


AnyChunkOutput = Union[_ChunkOutput, _SpilledChunkOutput]


class _ArrayStreamWriter:
    """Streams blocks into a pre-sized ``.npy`` of known final shape.

    Plain buffered writes after an upfront header — no dirty mapped
    pages, so writing a result far larger than RAM does not grow RSS.
    """

    def __init__(self, path: str, dtype, shape: Tuple[int, ...]):
        self.path = path
        self.dtype = np.dtype(dtype)
        self._fh = open(path, "wb")
        np.lib.format.write_array_header_2_0(
            self._fh,
            {"descr": np.lib.format.dtype_to_descr(self.dtype),
             "fortran_order": False, "shape": tuple(shape)},
        )

    def append(self, block: np.ndarray) -> None:
        self._fh.write(np.ascontiguousarray(block, dtype=self.dtype).tobytes())

    def close(self) -> np.ndarray:
        """Finish the file and reopen it as a read-only memory map."""
        self._fh.close()
        return np.load(self.path, mmap_mode="r")


def restrict_chunk_output(
    output: _ChunkOutput, filters: Sequence
) -> _ChunkOutput:
    """A chunk output with rows failing the given pushed filters removed.

    Turns a chunk walked under a looser plan into the stricter plan's exact
    chunk: pruning mid-walk versus filtering the finished rows select the
    same rows (pure row selection on purely derived rows), and the parked
    side state is plan-independent, so it is shared unchanged.
    """
    state = output.state
    if not filters or state.num_rows == 0:
        return output
    mask = conjunction_mask(
        state.columns, list(filters), state.num_rows
    )
    if mask.all():
        return output
    return _ChunkOutput(
        state=state.take(np.flatnonzero(mask)), acc=output.acc
    )


@dataclass
class _JoinWorkerSpec:
    """Everything a process worker needs to rebuild this join — picklable.

    ``model`` is a :class:`~repro.core.models.CompletionSnapshot`: compiled
    float32 forwards plus the path layout, a few kilobytes instead of the
    autograd module and its training state.
    """

    model: object
    approximate_replacement: bool
    replace_synthesized: bool
    seed: int
    tables: Tuple[str, ...]
    plan: Optional[PushdownPlan] = None
    spill_dir: Optional[str] = None


def _build_worker_join(spec: _JoinWorkerSpec):
    """Process-pool initializer hook: a worker-local join from the spec.

    Built once per worker, so per-table caches (child indexes, replacers,
    encoded root codes) amortize across all chunks the worker executes.
    """
    join = IncompletenessJoin(
        spec.model,
        approximate_replacement=spec.approximate_replacement,
        replace_synthesized=spec.replace_synthesized,
        seed=spec.seed,
    )
    return join, list(spec.tables), spec.plan, None, spec.spill_dir


def _walk_chunk_task(state, task: Tuple[int, int]) -> AnyChunkOutput:
    """Executor task: walk one chunk of root rows (any backend).

    The fourth payload element is the dispatching caller's trace context:
    contextvars do not flow into pool threads, so the context rides along
    explicitly and each chunk walk becomes a child span of the dispatch
    (process workers get ``None`` — their tracer is off by default).
    With a spill directory, the walked rows are written to disk *on the
    worker* and only a small handle travels back.
    """
    join, tables, plan, ctx, spill_dir = state
    start, stop = task
    if not tracing_enabled():
        output = join._walk_chunk(slice(start, stop), tables, plan)
        return _maybe_spill_output(output, spill_dir, start, stop)
    with activate(ctx):
        with trace(
            "join.chunk", chunk=f"{start}:{stop}", rows_scanned=stop - start
        ) as span:
            output = join._walk_chunk(slice(start, stop), tables, plan)
            span.set("rows_out", len(output.state.weights))
            return _maybe_spill_output(output, spill_dir, start, stop)


def _maybe_spill_output(
    output: _ChunkOutput, spill_dir: Optional[str], start: int, stop: int
) -> AnyChunkOutput:
    if spill_dir is None:
        return output
    os.makedirs(spill_dir, exist_ok=True)
    path = os.path.join(spill_dir, f"chunk_{start}_{stop}.npz")
    _spill_state(output.state, path)
    return _SpilledChunkOutput(
        path=path, acc=output.acc, num_rows=output.state.num_rows
    )


class IncompletenessJoin:
    """Executes Algorithm 1 for one completion model.

    Parameters
    ----------
    model:
        A fitted AR or SSAR completion model; its layout supplies the
        database, annotation, path and codecs.
    approximate_replacement:
        Use the random-projection approximate nearest-neighbour mode.
    replace_synthesized:
        Disable to keep synthesized tuples even for complete tables
        (used by ablation benchmarks; the paper always replaces).
    seed:
        Folds into every per-row random stream; two runs with the same seed
        produce identical output.
    chunk_size:
        Stream the walk over chunks of this many root evidence rows
        (``None`` = single pass).  The output is the same set of rows
        (bitwise, weights included) for any chunk size; row order, peak
        memory and batching granularity are what change.
    n_workers / parallel_backend:
        Fan root-row chunks out over an executor (``"serial"``, ``"thread"``
        or ``"process"``; see :mod:`repro.runtime.parallel`).  Output rows
        are identical (up to order) for every backend and worker count at a
        fixed seed.  With ``n_workers > 1`` and no explicit ``chunk_size``, a
        chunk size giving each worker a few tasks is chosen automatically.
        The process backend ships the model's *compiled* snapshot; a model
        on the autograd inference backend therefore completes in-process
        (still bitwise-identical to its serial run) rather than silently
        sampling on a different runtime.
    spill_dir:
        Stream completed chunks through this directory instead of holding
        them in RAM: each worker writes its walked rows to disk and ships
        back an O(1) handle, and :meth:`assemble` concatenates the spilled
        chunks into a store-backed result without ever materializing the
        full join.  Combined with a memory-mapped database this bounds the
        join's peak RSS far below the output size.  The directory is
        scoped to one run — spilled chunk outputs are excluded from the
        partial-completion cache.
    """

    def __init__(
        self,
        model: _CompletionModelBase,
        approximate_replacement: bool = True,
        replace_synthesized: bool = True,
        seed: int = 0,
        chunk_size: Optional[int] = None,
        n_workers: int = 1,
        parallel_backend: str = "serial",
        spill_dir: Optional[str] = None,
    ):
        self.model = model
        self.layout = model.layout
        self.db = model.layout.db
        self.annotation = model.layout.annotation
        self.path = model.layout.path
        self.approximate_replacement = approximate_replacement
        self.replace_synthesized = replace_synthesized
        self.seed = int(seed)
        self.chunk_size = chunk_size
        self.n_workers = int(n_workers)
        self.parallel_backend = parallel_backend
        self.spill_dir = spill_dir
        self._executor = get_executor(parallel_backend, self.n_workers)
        self._seed64 = rt_rng.fold_seed(self.seed)
        self._replacers: Dict[str, EuclideanReplacer] = {}
        self._child_indexes: Dict[Tuple[str, str, str], ChildIndex] = {}
        self._orphan_weights: Dict[Tuple[str, str, str], float] = {}
        self._num_synth: Dict[str, int] = {}
        self._synth_masks: Dict[str, np.ndarray] = {}
        self._root_codes: Optional[np.ndarray] = None
        self._root_columns: Optional[Dict[str, np.ndarray]] = None
        self._key_orders: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        stop_table: Optional[str] = None,
        plan: Optional[PushdownPlan] = None,
    ) -> CompletedJoin:
        """Complete the join along the path, streaming over root-row chunks.

        Chunks are dispatched to the configured executor; their outputs are
        merged in chunk order, so any backend/worker count yields the same
        rows (up to order).  ``stop_table`` truncates the walk after that
        table is reached — a merged model trained on a longer path serves
        any prefix sub-path this way (§3.4).

        ``plan`` pushes query predicates into the walk (see
        :mod:`repro.query.pushdown`): chunks with no qualifying root row are
        never dispatched, non-qualifying rows are dropped at each filter's
        prune slot, and surviving rows are bitwise identical to the
        corresponding rows of a planless run at the same seed.
        """
        tables = self.effective_tables(stop_table)
        self._validate_plan(plan, tables)
        self._num_synth = {}
        self._synth_masks = {}

        num_roots = len(self.db.table(tables[0]))
        tasks = self.chunk_tasks(tables)
        walked = tasks
        roots_qualifying = num_roots
        if plan is not None and plan.has_root_filters:
            mask = self.qualifying_root_mask(plan, tables)
            roots_qualifying = int(mask.sum())
            walked = [t for t in tasks if mask[t[0]:t[1]].any()]
        outputs = self.walk_chunks(walked, tables, plan)
        completed = self.assemble(outputs, tables, plan)
        if plan is not None:
            completed.pushdown = {
                "roots_total": num_roots,
                "roots_qualifying": roots_qualifying,
                "chunks_total": len(tasks),
                "chunks_walked": len(walked),
                "filters": plan.counts_by_kind(),
                "residual_filters": len(plan.residual),
            }
        return completed

    def effective_tables(self, stop_table: Optional[str] = None) -> List[str]:
        """The path's tables, truncated after ``stop_table`` if given."""
        tables = list(self.path.tables)
        if stop_table is not None:
            if stop_table not in tables:
                raise ValueError(f"{stop_table} is not on {self.path}")
            tables = tables[: tables.index(stop_table) + 1]
            if len(tables) < 2:
                raise ValueError("stop_table must leave at least one hop")
        return tables

    def chunk_tasks(
        self, tables: Optional[Sequence[str]] = None
    ) -> List[Tuple[int, int]]:
        """The canonical ``(start, stop)`` root-row grid of this join.

        Deterministic for a fixed configuration — the partial-completion
        cache keys chunk reuse on these bounds.
        """
        tables = list(tables) if tables is not None else list(self.path.tables)
        num_roots = len(self.db.table(tables[0]))
        chunk_size = self.chunk_size
        if chunk_size is None and self.n_workers > 1:
            chunk_size = default_chunk_size(num_roots, self.n_workers)
        return [(s.start, s.stop) for s in chunk_slices(num_roots, chunk_size)]

    #: Root rows per block when streaming a mapped root table's filter
    #: columns (qualifying-root mask, pre-walk pruning).
    _ROOT_BLOCK = 1 << 18

    def qualifying_root_mask(
        self, plan: PushdownPlan, tables: Optional[Sequence[str]] = None
    ) -> np.ndarray:
        """Boolean mask of root rows passing the plan's pre-walk filters.

        A mapped root table is streamed in blocks — only the filters' own
        columns are read, one block at a time, so the mask costs O(block)
        transient memory regardless of table size.
        """
        tables = list(tables) if tables is not None else list(self.path.tables)
        root = tables[0]
        table = self.db.table(root)
        num_roots = len(table)
        filters = plan.filters_at(0)
        if not table.is_mapped:
            self._ensure_root_columns(root)
            assert self._root_columns is not None
            return conjunction_mask(self._root_columns, filters, num_roots)
        mask = np.ones(num_roots, dtype=bool)
        prefix = f"{root}."
        for start in range(0, num_roots, self._ROOT_BLOCK):
            stop = min(start + self._ROOT_BLOCK, num_roots)
            cols = {
                p.column: table.column_range(
                    p.column[len(prefix):], start, stop
                )
                for p in filters
            }
            mask[start:stop] = conjunction_mask(cols, filters, stop - start)
        return mask

    def walk_chunks(
        self,
        tasks: List[Tuple[int, int]],
        tables: Optional[Sequence[str]] = None,
        plan: Optional[PushdownPlan] = None,
    ) -> List[_ChunkOutput]:
        """Walk the given root-row chunks (no assembly) on the executor.

        Each output is a pure function of (seed, chunk bounds, plan) — the
        progressive engine walks a prefix of :meth:`chunk_tasks` now and
        tops up later; the partial-completion cache stores outputs keyed by
        chunk bounds and reuses them across queries.
        """
        tables = list(tables) if tables is not None else list(self.path.tables)
        self._validate_plan(plan, tables)
        with trace(
            "join.walk_chunks",
            chunks=len(tasks),
            tables="/".join(tables),
            backend=self.parallel_backend,
        ):
            return self._run_chunks(tasks, tables, plan)

    def assemble(
        self,
        outputs: List[AnyChunkOutput],
        tables: Optional[Sequence[str]] = None,
        plan: Optional[PushdownPlan] = None,
    ) -> CompletedJoin:
        """Merge chunk outputs into a completed join.

        Resolves dangling-FK parents globally across the given outputs and
        runs the continuation walks.  Parked states are copied before
        resolution, so outputs stay reusable — assembling a chunk subset for
        an early estimate and later re-assembling a superset (top-up) both
        see pristine chunk outputs.

        When the run spilled its chunks (``spill_dir``), the merged result
        is assembled **streaming**: chunk states are loaded from disk one
        at a time and appended to a store-backed result, so the full join
        never resides in RAM — the returned columns, codes and context are
        read-only memory maps.
        """
        tables = list(tables) if tables is not None else list(self.path.tables)
        self._validate_plan(plan, tables)
        acc = _ShardAccumulator()
        for output in outputs:  # executor order == task order: deterministic
            acc.merge(output.acc)
        extras = self._resolve_parked(acc, tables, plan)
        spilled = any(isinstance(o, _SpilledChunkOutput) for o in outputs)
        total_rows = (
            sum(o.num_rows for o in outputs) + sum(s.num_rows for s in extras)
        )
        if spilled and self.spill_dir is not None and total_rows > 0:
            columns, weights, synthesized, codes, context = (
                self._assemble_spilled(outputs, extras, total_rows)
            )
        else:
            chunks: List[_WalkState] = [
                o.load().state if isinstance(o, _SpilledChunkOutput)
                else o.state
                for o in outputs
            ]
            chunks.extend(extras)
            if not chunks:
                # All chunks were skipped by pre-walk pruning: produce a
                # correctly shaped empty result by walking zero rows.
                chunks = [self._walk_chunk(slice(0, 0), tables, plan).state]
            # One concatenation at the end — pairwise accumulation would
            # copy the growing result once per chunk (quadratic in rows).
            completed = _concat_many(chunks)
            columns = dict(completed.columns)
            weights = completed.weights
            synthesized = completed.synthesized
            codes = completed.codes
            context = completed.context
        self._check_synth_ids(acc.issued_ids)
        self._num_synth = dict(acc.num_synth)

        # The final state's synthesized flags refer to the last completed
        # table — exactly what confidence estimation (§6) needs.
        final_target = tables[-1]
        self._synth_masks[final_target] = synthesized
        result = JoinResult(columns, weights=weights)
        effective_path = CompletionPath(tuple(tables))
        return CompletedJoin(
            result=result,
            path=effective_path,
            num_synthesized=dict(self._num_synth),
            synthesized_mask=dict(self._synth_masks),
            codes=codes,
            context=context,
        )

    def _resolve_parked(
        self,
        acc: _ShardAccumulator,
        tables: List[str],
        plan: Optional[PushdownPlan],
    ) -> List[_WalkState]:
        """Resolve parked dangling-FK rows and walk their continuations.

        Rows that hit a dangling foreign key were parked rather than
        completed: the shared parent of key k is sampled conditioned on a
        canonical representative child, which is only known once every
        chunk (on every worker) has contributed its children.  Resolving
        after the barrier keeps all backends on the identical code path.
        """
        extras: List[_WalkState] = []
        for slot in range(1, len(tables)):
            parked = acc.parked.pop(slot, None)
            if not parked:
                continue
            resolved = self._resolve_dangling(
                _materialize_parked(parked), slot, acc
            )
            if plan is not None and resolved.num_rows:
                mask = plan.mask_at(slot, resolved.columns, resolved.num_rows)
                if mask is not None and not mask.all():
                    resolved = resolved.take(np.flatnonzero(mask))
            extras.append(
                self._walk(resolved, slot + 1, len(tables), acc, plan)
            )
        return extras

    def _assemble_spilled(
        self,
        outputs: List[AnyChunkOutput],
        extras: List[_WalkState],
        total_rows: int,
    ):
        """Concatenate chunk states into a store-backed result, streaming.

        One spilled chunk is resident at a time: its raw columns append to
        a :class:`StoreWriter` (strings dictionary-encoded) and its codes /
        weights / synthesized flags / context stream into pre-sized
        ``.npy`` files.  Everything reopens as read-only memory maps, so
        the assembled join's RSS cost is one chunk, not the result.
        """
        assert self.spill_dir is not None
        result_dir = os.path.join(self.spill_dir, "result")
        os.makedirs(result_dir, exist_ok=True)

        def states():
            for output in outputs:
                if isinstance(output, _SpilledChunkOutput):
                    yield output.load().state
                else:
                    yield output.state
            for extra in extras:
                yield extra

        writer: Optional[StoreWriter] = None
        col_names: List[str] = []
        codes_w = weights_w = synth_w = context_w = None
        for state in states():
            if state.num_rows == 0:
                continue
            if writer is None:
                # Result schema comes from the first non-empty chunk; all
                # chunks walk the same path, so they agree.
                col_names = list(state.columns.keys())
                writer = StoreWriter(
                    result_dir, "completed_join", total_rows,
                    primary_key=None,
                )
                for name in col_names:
                    values = np.asarray(state.columns[name])
                    if values.dtype == object:
                        writer.add_column(name, ColumnKind.CATEGORICAL)
                    elif np.issubdtype(values.dtype, np.integer):
                        writer.add_column(
                            name, ColumnKind.KEY, dtype=values.dtype
                        )
                    else:
                        writer.add_column(
                            name, ColumnKind.CONTINUOUS, dtype=values.dtype
                        )
                codes_w = _ArrayStreamWriter(
                    os.path.join(result_dir, "join_codes.npy"),
                    state.codes.dtype,
                    (total_rows, state.codes.shape[1]),
                )
                weights_w = _ArrayStreamWriter(
                    os.path.join(result_dir, "join_weights.npy"),
                    state.weights.dtype, (total_rows,),
                )
                synth_w = _ArrayStreamWriter(
                    os.path.join(result_dir, "join_synthesized.npy"),
                    np.dtype(bool), (total_rows,),
                )
                if state.context is not None:
                    context_w = _ArrayStreamWriter(
                        os.path.join(result_dir, "join_context.npy"),
                        state.context.dtype,
                        (total_rows, state.context.shape[1]),
                    )
            for name in col_names:
                writer.append(name, np.asarray(state.columns[name]))
            codes_w.append(state.codes)
            weights_w.append(state.weights)
            synth_w.append(state.synthesized)
            if context_w is not None:
                context_w.append(state.context)
        assert writer is not None  # total_rows > 0 guarantees a chunk
        store = writer.finalize()
        columns = StoreColumns(store, col_names)
        return (
            columns,
            weights_w.close(),
            synth_w.close(),
            codes_w.close(),
            context_w.close() if context_w is not None else None,
        )

    def _validate_plan(
        self, plan: Optional[PushdownPlan], tables: Sequence[str]
    ) -> None:
        if plan is None:
            return
        if tuple(plan.path_tables) != tuple(tables):
            raise ValueError(
                f"pushdown plan was built for path {plan.path_tables}, "
                f"not {tuple(tables)}"
            )

    def _run_chunks(
        self,
        tasks: List[Tuple[int, int]],
        tables: List[str],
        plan: Optional[PushdownPlan] = None,
    ) -> List[_ChunkOutput]:
        """Dispatch chunk walks to the executor and collect them in order."""
        use_compiled = getattr(self.model, "use_compiled", True)
        if self._executor.shares_caller_state or not use_compiled:
            # Serial/thread workers operate on this join directly.  Warm the
            # shared per-table caches first: afterwards concurrent walks only
            # read them (walk side-state goes to chunk-local accumulators).
            # Models on the autograd backend also land here even under the
            # process backend: their float64 sampling has no picklable
            # snapshot, and silently switching them to the compiled float32
            # runtime on workers would break the bitwise-vs-serial contract.
            self._prepare_shared_caches(tables)
            executor = (
                self._executor if self._executor.shares_caller_state
                else SerialExecutor()
            )
            return executor.map(
                _walk_chunk_task, tasks,
                payload=(self, tables, plan, current_context(),
                         self.spill_dir),
            )
        spec = _JoinWorkerSpec(
            model=self.model.inference_snapshot(),
            approximate_replacement=self.approximate_replacement,
            replace_synthesized=self.replace_synthesized,
            seed=self.seed,
            tables=tuple(tables),
            plan=plan,
            spill_dir=self.spill_dir,
        )
        return self._executor.map(
            _walk_chunk_task, tasks, payload=spec, init=_build_worker_join
        )

    def _walk_chunk(
        self,
        rows_slice: slice,
        tables: Sequence[str],
        plan: Optional[PushdownPlan] = None,
    ) -> _ChunkOutput:
        """Walk one chunk of root rows into a self-contained output."""
        acc = _ShardAccumulator()
        rows = np.arange(rows_slice.start, rows_slice.stop, dtype=np.int64)
        if plan is not None and plan.has_root_filters and len(rows):
            # Pre-walk pruning: drop non-qualifying roots before any model
            # sampling.  Only the filters' own columns are sliced here —
            # gathered straight from a mapped store (nothing cached), or
            # sliced from the materialized root columns otherwise.
            root = tables[0]
            table = self.db.table(root)
            filters = plan.filters_at(0)
            if table.is_mapped:
                prefix = f"{root}."
                cols = {
                    p.column: table.gather(p.column[len(prefix):], rows)
                    for p in filters
                }
            else:
                self._ensure_root_columns(root)
                assert self._root_columns is not None
                cols = {
                    p.column: self._root_columns[p.column][rows]
                    for p in filters
                }
            rows = rows[conjunction_mask(cols, filters, len(rows))]
        state = self._walk(self._initial_state(rows), 1, len(tables), acc, plan)
        return _ChunkOutput(state=state, acc=acc)

    def _prepare_shared_caches(self, tables: List[str]) -> None:
        """Materialize every lazily built read-only cache up front.

        Concurrent thread walks then never write shared state: root
        encodings, child indexes, key orders, orphan weights, replacers and
        the compiled model all exist before the first worker starts.
        """
        root = tables[0]
        table = self.db.table(root)
        encoder = self.layout.encoders[root]
        # Mapped roots stay on disk: chunks gather and encode their own rows
        # (see _initial_state), so warming full-table codes/columns here
        # would defeat the out-of-core memory bound.
        if not table.is_mapped:
            if encoder.columns and self._root_codes is None:
                self._root_codes = encoder.encode_table(table)
            if self._root_columns is None:
                self._root_columns = {
                    f"{root}.{c}": np.asarray(table[c])
                    for c in table.column_names
                }
        for slot in range(1, len(tables)):
            prev, new = tables[slot - 1], tables[slot]
            if self.db.is_fan_out_step(prev, new):
                self._child_index(self.layout.fan_out_hops[slot])
            else:
                fk = self.db.fk_between(prev, new)
                self._partner_rows(
                    new, self.db.table(new), np.zeros(0, dtype=np.int64)
                )
                self._child_index(fk)
                self._orphan_weight(fk)
            if self.replace_synthesized and self.annotation.is_complete(new):
                self._replacer(new)
        compile_hook = getattr(self.model, "compiled_made", None)
        if compile_hook is not None and getattr(self.model, "use_compiled", False):
            compile_hook()
            tree_hook = getattr(self.model, "compiled_tree", None)
            if tree_hook is not None:
                tree_hook()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _ensure_root_columns(self, root: str) -> None:
        if self._root_columns is None:  # materialized once, sliced per chunk
            table = self.db.table(root)
            self._root_columns = {
                f"{root}.{c}": np.asarray(table[c]) for c in table.column_names
            }

    def _initial_state(self, rows: np.ndarray) -> _WalkState:
        """Root evidence state for an explicit array of root-row indices.

        Each row's stream is derived from its index alone, so a pruned row
        set yields streams identical to the same rows of a full run.
        A mapped root table is never materialized: the chunk gathers and
        encodes only its own rows, so peak memory scales with the chunk
        size rather than the table.
        """
        root = self.path.tables[0]
        table = self.db.table(root)
        rows = np.asarray(rows, dtype=np.int64)
        codes = np.zeros((len(rows), self.layout.num_variables), dtype=np.int64)
        start, stop = self.layout.slot_range(0)
        encoder = self.layout.encoders[root]
        if table.is_mapped:
            gathered = {c: table.gather(c, rows) for c in table.column_names}
            if encoder.columns:
                codes[:, start:stop] = encoder.encode_columns(
                    {c: gathered[c] for c in encoder.columns}
                )
            columns = {f"{root}.{c}": v for c, v in gathered.items()}
            return self._initial_state_from(rows, codes, columns)
        if encoder.columns:
            if self._root_codes is None:  # encoded once, sliced per chunk
                self._root_codes = encoder.encode_table(table)
            codes[:, start:stop] = self._root_codes[rows]
        self._ensure_root_columns(root)
        assert self._root_columns is not None
        # Fancy indexing copies, so chunk states never alias the database.
        columns = {k: v[rows] for k, v in self._root_columns.items()}
        return self._initial_state_from(rows, codes, columns)

    def _initial_state_from(
        self, rows: np.ndarray, codes: np.ndarray,
        columns: Dict[str, np.ndarray],
    ) -> _WalkState:
        context = self.model.context_for_roots(rows)
        return _WalkState(
            codes=codes,
            columns=columns,
            weights=np.ones(len(rows)),
            synthesized=np.zeros(len(rows), dtype=bool),
            current_rows=rows,
            context=context,
            streams=rt_rng.root_streams(rows),
            counters=np.zeros(len(rows), dtype=np.uint64),
        )

    def _replacer(self, table_name: str) -> EuclideanReplacer:
        if table_name not in self._replacers:
            # Seeded from (join seed, table name) — not from a shared walk
            # generator — so replacement is identical across chunkings.
            seed = zlib.crc32(f"{self.seed}:{table_name}".encode())
            self._replacers[table_name] = EuclideanReplacer(
                self.db.table(table_name),
                approximate=self.approximate_replacement,
                seed=seed,
            )
        return self._replacers[table_name]

    def _child_index(self, fk) -> ChildIndex:
        key = (fk.child_table, fk.child_column, fk.parent_table)
        if key not in self._child_indexes:
            self._child_indexes[key] = build_child_index(self.db, fk)
        return self._child_indexes[key]

    def _draw(self, state: _WalkState, k: int) -> np.ndarray:
        """``(rows, k)`` uniforms from the rows' streams; advances counters."""
        return rt_rng.draw(self._seed64, state.streams, state.counters, k)

    # ------------------------------------------------------------------
    # Hops
    # ------------------------------------------------------------------
    def _walk(self, state: _WalkState, start_slot: int, num_slots: int,
              acc: _ShardAccumulator,
              plan: Optional[PushdownPlan] = None) -> _WalkState:
        for slot in range(start_slot, num_slots):
            state = self._hop(state, slot, acc)
            if plan is not None and state.num_rows:
                # Mid-walk pruning: rows failing a predicate decidable at
                # this slot never sample any downstream hop.  Parked
                # dangling-FK rows bypass this (they left the state in
                # _n_to_1_hop) and are filtered after global resolution —
                # the planner guarantees no filter prunes before the last
                # dangling-capable slot, so parked sets stay
                # plan-independent.
                mask = plan.mask_at(slot, state.columns, state.num_rows)
                if mask is not None and not mask.all():
                    state = state.take(np.flatnonzero(mask))
        return state

    def _hop(self, state: _WalkState, slot: int, acc: _ShardAccumulator) -> _WalkState:
        prev = self.path.tables[slot - 1]
        new = self.path.tables[slot]
        if self.db.is_fan_out_step(prev, new):
            out = self._fan_out_hop(state, slot, prev, new, acc)
        else:
            out = self._n_to_1_hop(state, slot, prev, new, acc)
        return out

    def _fan_out_hop(self, state: _WalkState, slot: int, prev: str, new: str,
                     acc: _ShardAccumulator) -> _WalkState:
        fk = self.layout.fan_out_hops[slot]
        tf_idx = self.layout.tf_variable_index(slot)
        child_index = self._child_index(fk)
        existing_counts = np.zeros(state.num_rows, dtype=np.int64)
        real = state.current_rows >= 0
        existing_counts[real] = child_index.counts()[state.current_rows[real]]

        # Total tuple factor: annotated truth where available, else sampled.
        # Every row consumes one uniform (used only where unknown) so draw
        # accounting never depends on which rows share a chunk.
        u_tf = self._draw(state, 1)[:, 0]
        annotated = self.layout.annotated_tfs(slot)
        totals = np.full(state.num_rows, TF_UNKNOWN, dtype=np.int64)
        totals[real] = annotated[state.current_rows[real]]
        unknown = totals == TF_UNKNOWN
        if unknown.any():
            prefix = state.codes[unknown]
            ctx = None if state.context is None else state.context[unknown]
            sampled = self.model.predict_tuple_factors(
                prefix, slot, context=ctx,
                min_counts=existing_counts[unknown], draws=u_tf[unknown],
            )
            totals[unknown] = sampled
        totals = np.maximum(totals, existing_counts)
        tf_codes = self.layout.tf_codec_for(slot).encode(totals)

        # ---- existing part: join available children ----
        parts: List[_WalkState] = []
        if real.any():
            rows_real = np.flatnonzero(real)
            child_rows, local_owner = _gather_children(
                child_index, state.current_rows[rows_real]
            )
            owners = rows_real[local_owner]
            if len(child_rows):
                existing = state.take(owners)
                # Fresh streams: siblings joined from the same parent must
                # not share their parent's draw sequence.
                existing.streams = rt_rng.derive_streams(
                    state.streams[owners], rt_rng.TAG_CHILD, child_rows
                )
                existing.counters = np.zeros(len(owners), dtype=np.uint64)
                existing.codes[:, tf_idx] = tf_codes[owners]
                self._fill_real_table(existing, slot, new, child_rows)
                parts.append(existing)

        # ---- synthesized part ----
        missing = np.maximum(totals - existing_counts, 0)
        owners_syn = np.repeat(np.arange(state.num_rows), missing)
        if len(owners_syn):
            offsets = np.concatenate([[0], np.cumsum(missing)[:-1]])
            ordinals = np.arange(len(owners_syn)) - offsets[owners_syn]
            synth = state.take(owners_syn)
            synth.streams = rt_rng.derive_streams(
                state.streams[owners_syn], rt_rng.TAG_SYNTH, ordinals
            )
            synth.counters = np.zeros(len(owners_syn), dtype=np.uint64)
            synth.codes[:, tf_idx] = tf_codes[owners_syn]
            self._synthesize_table(synth, slot, new, acc)
            # The synthesized child's FK to its evidence parent is known.
            parent_keys = self._parent_keys_for(state, prev, fk.parent_column)
            synth.columns[f"{new}.{fk.child_column}"] = np.where(
                state.synthesized[owners_syn],
                MISSING_KEY,
                parent_keys[owners_syn],
            )
            synth = self._maybe_replace(synth, slot, new)
            parts.append(synth)

        if not parts:
            return self._empty_after_slot(state, slot, new)
        out = parts[0]
        for part in parts[1:]:
            out = _concat_states(out, part)
        return out

    def _n_to_1_hop(self, state: _WalkState, slot: int, prev: str, new: str,
                    acc: _ShardAccumulator) -> _WalkState:
        fk = self.db.fk_between(prev, new)
        parent_table = self.db.table(new)
        fk_values = state.columns[f"{prev}.{fk.child_column}"]
        partner = self._partner_rows(new, parent_table, fk_values)

        parts: List[_WalkState] = []
        has_partner = partner >= 0
        if has_partner.any():
            idx = np.flatnonzero(has_partner)
            existing = state.take(idx)
            self._fill_real_table(existing, slot, new, partner[idx])
            parts.append(existing)

        needs_synth = ~has_partner
        # Children whose FK is a real key reference a *removed* parent: the
        # missing tuple's key is known, so all children sharing it must get
        # one shared synthesized parent (keyed by that FK value).  They are
        # parked here and resolved globally after every chunk has walked —
        # see :meth:`_resolve_dangling`.  Children that are themselves
        # synthetic (sentinel FK) get per-row parents with the §4.3
        # over-generation weight correction.
        dangling = needs_synth & (np.asarray(fk_values) >= 0)
        orphan = needs_synth & ~dangling

        if dangling.any():
            acc.park(slot, state.take(np.flatnonzero(dangling)))

        if orphan.any():
            idx = np.flatnonzero(orphan)
            synth = state.take(idx)
            self._synthesize_table(synth, slot, new, acc)
            from_synth = state.synthesized[idx]
            if from_synth.any():
                correction = self._orphan_weight(fk)
                synth.weights = synth.weights * np.where(from_synth, correction, 1.0)
            synth = self._maybe_replace(synth, slot, new)
            parts.append(synth)

        if not parts:
            return self._empty_after_slot(state, slot, new)
        out = parts[0]
        for part in parts[1:]:
            out = _concat_states(out, part)
        return out

    def _partner_rows(self, table_name: str, parent_table,
                      fk_values: np.ndarray) -> np.ndarray:
        """Vectorized key → row resolution (``-1`` where unresolvable)."""
        if table_name not in self._key_orders:
            if parent_table.primary_key is None:
                raise ValueError(f"{parent_table.name} has no primary key")
            keys = np.asarray(parent_table[parent_table.primary_key], dtype=np.int64)
            self._key_orders[table_name] = (
                keys, np.argsort(keys, kind="stable").astype(np.int64)
            )
        keys, order = self._key_orders[table_name]
        return match_keys(keys, np.asarray(fk_values, dtype=np.int64),
                          key_order=order)

    def _resolve_dangling(self, state: _WalkState, slot: int,
                          acc: _ShardAccumulator) -> _WalkState:
        """Synthesize shared parents for parked dangling-FK rows.

        One parent is sampled per unique key, conditioned on a *canonical*
        representative child — the one with the smallest stream id, which is
        a pure lineage property — and on key-derived draws.  Both choices
        are independent of chunk boundaries (and of which worker walked
        which chunk), so splitting a key's children across chunks
        materializes the same parent tuple.  The parent's slot codes and
        columns are grafted onto every child row, which keeps its own
        evidence prefix.
        """
        prev = self.path.tables[slot - 1]
        new = self.path.tables[slot]
        fk = self.db.fk_between(prev, new)
        keys = np.asarray(state.columns[f"{prev}.{fk.child_column}"], dtype=np.int64)
        order = np.lexsort((state.streams, keys))
        sorted_keys = keys[order]
        first = np.ones(len(order), dtype=bool)
        first[1:] = sorted_keys[1:] != sorted_keys[:-1]
        rep_rows = order[first]
        unique_keys = sorted_keys[first]

        reps = state.take(rep_rows)
        reps.streams = rt_rng.key_streams(self._key_tag(slot), unique_keys)
        reps.counters = np.zeros(len(unique_keys), dtype=np.uint64)
        self._synthesize_table(reps, slot, new, acc, count=False)
        # Shared parents count once per missing key, not once per child row.
        acc.count_synth(new, len(unique_keys))

        shared = reps.take(np.searchsorted(unique_keys, keys))
        start, stop = self.layout.slot_range(slot)
        state.codes[:, start:stop] = shared.codes[:, start:stop]
        for column in self.db.table(new).column_names:
            state.columns[f"{new}.{column}"] = shared.columns[f"{new}.{column}"]
        pk = self.db.table(new).primary_key
        if pk is not None:
            state.columns[f"{new}.{pk}"] = keys
        state.synthesized = np.ones(state.num_rows, dtype=bool)
        state.current_rows = np.full(state.num_rows, -1, dtype=np.int64)
        return state

    def _key_tag(self, slot: int) -> np.uint64:
        """Per-slot lineage tag for key-derived shared-parent streams."""
        with np.errstate(over="ignore"):
            return rt_rng.TAG_KEY + np.uint64(2 * slot + 1)

    def _check_synth_ids(
        self, issued_ids: Dict[str, List[np.ndarray]]
    ) -> None:
        """Fail loudly on synthetic-id hash collisions (~n²/2⁶³ likely).

        Every `_synthesize_table` call issues ids for distinct logical
        tuples, so any duplicate across a run is a stream-hash collision
        that would silently merge two different tuples in projection.
        """
        for table_name, id_arrays in issued_ids.items():
            ids = np.concatenate(id_arrays)
            if len(np.unique(ids)) != len(ids):
                raise RuntimeError(
                    f"synthetic id collision for table {table_name!r} "
                    f"(seed {self.seed}); re-run with a different seed"
                )

    # ------------------------------------------------------------------
    # Row materialization helpers
    # ------------------------------------------------------------------
    def _fill_real_table(self, part: _WalkState, slot: int, table_name: str,
                         rows: np.ndarray) -> None:
        """Attach real tuples of ``table_name`` (by row) to the state part.

        Rows are gathered, not sliced from a materialized column: a mapped
        table reads only the touched rows, and the gathered block is reused
        for encoding rather than read twice.
        """
        table = self.db.table(table_name)
        gathered = {c: table.gather(c, rows) for c in table.column_names}
        for column, values in gathered.items():
            part.columns[f"{table_name}.{column}"] = values
        start, stop = self.layout.slot_range(slot)
        tf_idx = self.layout.tf_variable_index(slot)
        col_start = start if tf_idx is None else tf_idx + 1
        encoder = self.layout.encoders[table_name]
        if encoder.columns:
            part.codes[:, col_start:stop] = encoder.encode_columns(
                {c: gathered[c] for c in encoder.columns}
            )
        part.synthesized = np.zeros(part.num_rows, dtype=bool)
        part.current_rows = np.asarray(rows, dtype=np.int64)

    def _synthesize_table(self, part: _WalkState, slot: int, table_name: str,
                          acc: _ShardAccumulator, count: bool = True) -> None:
        """Sample the slot's columns and materialize raw values/keys.

        Consumes ``2 * num_slot_columns`` uniforms per row from the part's
        streams: one per sampled variable, one per decoded column
        (dequantization jitter).
        """
        num_vars = self.model.slot_sample_width(slot)
        draws = self._draw(part, 2 * num_vars) if num_vars else None
        sampled = self.model.sample_slot(
            part.codes, slot, context=part.context,
            draws=None if draws is None else draws[:, :num_vars],
        )
        part.codes = sampled
        start, stop = self.layout.slot_range(slot)
        tf_idx = self.layout.tf_variable_index(slot)
        col_start = start if tf_idx is None else tf_idx + 1
        decoded = self.layout.decode_slot_codes(
            slot, sampled[:, col_start:stop],
            uniforms=None if draws is None else draws[:, num_vars:],
        )
        table = self.db.table(table_name)
        for column in table.column_names:
            if column in decoded:
                part.columns[f"{table_name}.{column}"] = decoded[column]
            elif column == table.primary_key:
                # Negative ids below the -1 sentinel, derived from the row's
                # stream so chunked and unchunked runs assign the same id to
                # the same logical tuple.  Streams are 64-bit hashes, so ids
                # are unique only up to hash collisions — run() verifies
                # uniqueness at the end and fails loudly rather than letting
                # two distinct tuples silently merge during projection.
                ids = (-2 - (part.streams & _SYNTH_ID_MASK).astype(np.int64))
                part.columns[f"{table_name}.{column}"] = ids
                acc.record_ids(table_name, ids)
            else:
                part.columns[f"{table_name}.{column}"] = np.full(
                    part.num_rows, MISSING_KEY, dtype=np.int64
                )
        part.synthesized = np.ones(part.num_rows, dtype=bool)
        part.current_rows = np.full(part.num_rows, -1, dtype=np.int64)
        if count:
            acc.count_synth(table_name, part.num_rows)

    def _maybe_replace(self, part: _WalkState, slot: int, table_name: str) -> _WalkState:
        """Euclidean replacement for synthesized tuples of complete tables."""
        if not self.replace_synthesized or not self.annotation.is_complete(table_name):
            return part
        if part.num_rows == 0:
            return part
        replacer = self._replacer(table_name)
        synth_cols = {
            c: part.columns[f"{table_name}.{c}"] for c in replacer.space.columns
        }
        rows = replacer.replace(synth_cols)
        self._fill_real_table(part, slot, table_name, rows)
        return part

    def _parent_keys_for(self, state: _WalkState, table_name: str,
                         key_column: str) -> np.ndarray:
        column = f"{table_name}.{key_column}"
        if column in state.columns:
            return state.columns[column]
        return np.full(state.num_rows, MISSING_KEY, dtype=np.int64)

    def _empty_after_slot(self, state: _WalkState, slot: int, new: str) -> _WalkState:
        table = self.db.table(new)
        columns = {k: v[:0] for k, v in state.columns.items()}
        for column in table.column_names:
            columns[f"{new}.{column}"] = np.array(table[column][:0])
        return _WalkState(
            codes=state.codes[:0],
            columns=columns,
            weights=state.weights[:0],
            synthesized=state.synthesized[:0],
            current_rows=state.current_rows[:0],
            context=None if state.context is None else state.context[:0],
            streams=state.streams[:0],
            counters=state.counters[:0],
        )

    def _mean_children_per_parent(self, fk) -> float:
        """Average observed fan-out (children per matched parent) >= 1."""
        counts = self._child_index(fk).counts()
        positive = counts[counts > 0]
        if len(positive) == 0:
            return 1.0
        return float(positive.mean())

    def _orphan_weight(self, fk) -> float:
        """§4.3 over-generation correction for keyless synthesized children.

        A synthesized child row spawns a parent tuple, but a missing parent
        re-appears once per child, and — when the available links still
        carry dangling keys — most synthesized links actually point at
        *existing* parents.  A random link references a missing parent with
        the observed dangling fraction ``d``, and each missing parent is hit
        ``mean children`` times, so the weight is ``d / mean``.  When the
        removal protocol dropped the dangling links (``d == 0`` observed but
        children of missing parents are known to be gone), every synthesized
        child stands for a missing parent: weight ``1 / mean``.
        """
        cache_key = (fk.child_table, fk.child_column, fk.parent_table)
        if cache_key in self._orphan_weights:
            return self._orphan_weights[cache_key]
        child = self.db.table(fk.child_table)
        refs = np.asarray(child[fk.child_column])
        parent_keys = np.asarray(
            self.db.table(fk.parent_table)[fk.parent_column], dtype=np.int64
        )
        valid = refs[refs >= 0]
        if len(valid) == 0:
            weight = 1.0
        else:
            dangling = (~np.isin(valid, parent_keys)).mean()
            mean_children = self._mean_children_per_parent(fk)
            if dangling > 0:
                weight = float(dangling) / mean_children
            else:
                weight = 1.0 / mean_children
        self._orphan_weights[cache_key] = weight
        return weight
