"""Variable layout and training-data assembly for path completion models.

A completion model for a path ``T_1 -> … -> T_m`` (paper §3.2/§3.4) is an
autoregressive model over all modelable columns along the path, in path
order, with a tuple-factor variable inserted before every fan-out hop:

.. code-block:: text

    [ cols(T_1) | TF(T_1→T_2)? | cols(T_2) | TF(T_2→T_3)? | … | cols(T_m) ]

The fixed ordering makes the same trained model usable for every hop of the
path (and, via merging, for sub-paths): completing hop *j* means sampling
the variables of slot *j* conditioned on everything before.

Training rows are assembled by joining the *available* data along the path;
tuple-factor variables take the annotated true counts where known and the
reserved ``unknown`` code elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..encoding import TableEncoder, TupleFactorCodec
from ..query import join_tables
from ..relational import (
    CompletionPath,
    Database,
    ForeignKey,
    SchemaAnnotation,
)
from ..relational.tuple_factors import TF_UNKNOWN, observed_tuple_factors


@dataclass(frozen=True)
class VariableSpec:
    """One autoregressive variable of a path model."""

    name: str            # "table.column" or "tf:<fk>"
    is_tuple_factor: bool
    table: str           # owning table (for TFs: the parent/evidence table)
    slot: int            # path position whose hop samples this variable
    vocab_size: int


class PathLayout:
    """The ordered variable layout of one completion path.

    Parameters
    ----------
    db / annotation:
        The incomplete database and its completeness annotation.
    path:
        The completion path.
    encoders:
        Shared per-table encoders (one code space per table across models —
        a prerequisite for model merging).
    tf_cap:
        Cap for the categorical tuple-factor encoding.
    """

    def __init__(
        self,
        db: Database,
        annotation: SchemaAnnotation,
        path: CompletionPath,
        encoders: Dict[str, TableEncoder],
        tf_cap: Optional[int] = None,
    ):
        self.db = db
        self.annotation = annotation
        self.path = path
        self.encoders = encoders

        self.variables: List[VariableSpec] = []
        self._slot_ranges: List[Tuple[int, int]] = []
        self.fan_out_hops: Dict[int, ForeignKey] = {}
        self.tf_codecs: Dict[int, TupleFactorCodec] = {}

        for slot, table in enumerate(path.tables):
            start = len(self.variables)
            if slot > 0:
                prev = path.tables[slot - 1]
                fk = db.fk_between(prev, table)
                if db.is_fan_out_step(prev, table):
                    self.fan_out_hops[slot] = fk
                    codec = TupleFactorCodec(
                        tf_cap if tf_cap is not None else self._adaptive_cap(slot, fk)
                    )
                    self.tf_codecs[slot] = codec
                    self.variables.append(
                        VariableSpec(
                            name=f"tf:{fk}",
                            is_tuple_factor=True,
                            table=prev,
                            slot=slot,
                            vocab_size=codec.vocab_size,
                        )
                    )
            encoder = encoders[table]
            for column, vocab in zip(encoder.columns, encoder.vocab_sizes()):
                self.variables.append(
                    VariableSpec(
                        name=f"{table}.{column}",
                        is_tuple_factor=False,
                        table=table,
                        slot=slot,
                        vocab_size=vocab,
                    )
                )
            self._slot_ranges.append((start, len(self.variables)))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    def vocab_sizes(self) -> List[int]:
        return [v.vocab_size for v in self.variables]

    def slot_range(self, slot: int) -> Tuple[int, int]:
        """Variable index range ``[start, stop)`` owned by path slot ``slot``."""
        return self._slot_ranges[slot]

    def slot_variables(self, slot: int) -> List[int]:
        start, stop = self._slot_ranges[slot]
        return list(range(start, stop))

    def target_variables(self) -> List[int]:
        """Variables of the final (incomplete target) table plus its TF."""
        return self.slot_variables(len(self.path.tables) - 1)

    def tf_variable_index(self, slot: int) -> Optional[int]:
        """Index of the TF variable sampled at ``slot`` (None if n:1 hop)."""
        if slot not in self.fan_out_hops:
            return None
        start, _ = self._slot_ranges[slot]
        return start

    def tf_codec_for(self, slot: int) -> TupleFactorCodec:
        """The tuple-factor codec of the fan-out hop entering ``slot``."""
        if slot not in self.tf_codecs:
            raise KeyError(f"slot {slot} is not a fan-out hop")
        return self.tf_codecs[slot]

    def _adaptive_cap(self, slot: int, fk: ForeignKey) -> int:
        """Cap the TF vocabulary just above the largest count we can observe.

        Known annotated TFs are true counts; observed counts are a lower
        bound.  A 30% margin leaves headroom for parents whose true count is
        unknown, bounded to keep the categorical head tractable.
        """
        candidates = [int(observed_tuple_factors(self.db, fk).max(initial=0))]
        annotated = self.annotation.tuple_factors_for(
            fk, len(self.db.table(fk.parent_table))
        )
        if annotated is not None:
            candidates.append(int(annotated.max(initial=0)))
        best = max(candidates)
        return int(np.clip(round(best * 1.3) + 1, 5, 250))

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_slot_columns(self, slot: int, columns: Dict[str, Sequence]) -> np.ndarray:
        """Encode raw column values of one table into its slot's code block
        (excluding any TF variable)."""
        table = self.path.tables[slot]
        return self.encoders[table].encode_columns(columns)

    def decode_slot_codes(
        self,
        slot: int,
        codes: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        uniforms: Optional[np.ndarray] = None,
    ) -> Dict[str, np.ndarray]:
        """Decode a slot's column block (TF excluded) back to raw values.

        ``uniforms`` forwards per-row dequantization draws to the codecs
        (see :meth:`repro.encoding.TableEncoder.decode_codes`).
        """
        table = self.path.tables[slot]
        return self.encoders[table].decode_codes(codes, rng=rng, uniforms=uniforms)

    def annotated_tfs(self, slot: int) -> np.ndarray:
        """Per-parent annotated tuple factors for the fan-out hop at ``slot``.

        True counts where the user annotation covers the parent tuple,
        ``TF_UNKNOWN`` elsewhere.  Aligned with the rows of the parent table
        in the (incomplete) database.
        """
        fk = self.fan_out_hops[slot]
        parent = self.db.table(fk.parent_table)
        annotated = self.annotation.tuple_factors_for(fk, len(parent))
        if annotated is not None:
            return annotated
        if self.annotation.is_complete(fk.child_table):
            return observed_tuple_factors(self.db, fk)
        return np.full(len(parent), TF_UNKNOWN, dtype=np.int64)


@dataclass
class TrainingData:
    """Encoded training rows of one path model plus row provenance.

    ``row_positions[table]`` holds, for every training row, the row index of
    the contributing tuple within the (incomplete) database's table — SSAR
    models need the root-table positions to attach evidence trees and the
    target-table positions for leave-one-out self-evidence.
    """

    matrix: np.ndarray
    row_positions: Dict[str, np.ndarray]

    @property
    def num_rows(self) -> int:
        return len(self.matrix)


def assemble_training_data(layout: PathLayout) -> TrainingData:
    """Join the available data along the path and encode it in layout order.

    Incomplete intermediate tables contribute only their available rows —
    the central consistency assumption (§2.4) is that the conditionals
    learned from the available rows transfer to the missing ones.
    """
    from ..relational import ColumnKind

    db = layout.db
    path = layout.path

    tf_columns: Dict[int, str] = {}
    working = db
    for slot, fk in layout.fan_out_hops.items():
        column = f"__tf_slot{slot}"
        parent = working.table(fk.parent_table)
        annotated = layout.annotated_tfs(slot)
        working = working.replace_table(
            parent.with_column(column, annotated, ColumnKind.KEY)
        )
        tf_columns[slot] = f"{fk.parent_table}.{column}"

    # Row-position bookkeeping columns (stripped after the join).
    for table_name in path.tables:
        table = working.table(table_name)
        working = working.replace_table(
            table.with_column(
                f"__pos_{table_name}", np.arange(len(table)), ColumnKind.KEY
            )
        )

    joined = join_tables(working, list(path.tables))

    blocks: List[np.ndarray] = []
    for slot, table in enumerate(path.tables):
        if slot in layout.fan_out_hops:
            tfs = joined.columns[tf_columns[slot]].astype(np.int64)
            blocks.append(layout.tf_codecs[slot].encode(tfs)[:, None])
        encoder = layout.encoders[table]
        if encoder.columns:
            cols = {c: joined.columns[f"{table}.{c}"] for c in encoder.columns}
            blocks.append(encoder.encode_columns(cols))
    if blocks:
        matrix = np.concatenate(blocks, axis=1)
    else:
        matrix = np.zeros((joined.num_rows, 0), dtype=np.int64)

    row_positions = {
        table: joined.columns[f"{table}.__pos_{table}"].astype(np.int64)
        for table in path.tables
    }
    return TrainingData(matrix=matrix, row_positions=row_positions)


def build_training_matrix(layout: PathLayout) -> np.ndarray:
    """Backward-compatible wrapper returning only the encoded matrix."""
    return assemble_training_data(layout).matrix


def build_encoders(db: Database, num_bins: int = 32) -> Dict[str, TableEncoder]:
    """Fit one shared :class:`TableEncoder` per table of the database."""
    return {name: TableEncoder(db.table(name), num_bins) for name in db.table_names()}
