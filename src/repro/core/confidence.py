"""Completion confidence intervals (paper §6).

For every synthesized tuple we compare the model's conditional distribution
``P_model`` of a query attribute with the marginal ``P_incomplete`` observed
in the training data.  An uncertain model falls back to the marginal, so the
normalized KL divergence

.. math:: C(t_e) = 1 - \\exp(-D_{KL}(P_{model} \\| P_{incomplete}))

measures per-tuple certainty.  Bounds mix the model's distribution with a
worst-case distribution: ``P_upper`` puts the confidence level's mass (e.g.
95%) on the queried value / top quantile, ``P_lower`` the complement.  The
bound for a synthesized tuple is ``C·P_model + (1-C)·P_bound``; existing
tuples contribute their exact values.  Theoretical min/max bounds replace
none/all synthesized values with the queried value (the sanity envelope of
Fig. 6/13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..encoding import CategoricalCodec, ContinuousCodec
from ..query import AggregateKind, Query
from .incompleteness_join import CompletedJoin
from .models import _CompletionModelBase


@dataclass
class ConfidenceBand:
    """An interval for one aggregate over the completed data."""

    estimate: float
    lower: float
    upper: float
    theoretical_min: Optional[float] = None
    theoretical_max: Optional[float] = None

    def contains(self, value: float) -> bool:
        return self.lower - 1e-12 <= value <= self.upper + 1e-12

    @property
    def width(self) -> float:
        return self.upper - self.lower


class ConfidenceEstimator:
    """Derive §6 confidence bands from a completed join.

    Parameters
    ----------
    model:
        The fitted completion model that produced the join.
    completed:
        The :class:`CompletedJoin` (must carry ``codes``).
    confidence:
        Two-sided confidence level; 0.95 reproduces the paper's plots.
    """

    def __init__(
        self,
        model: _CompletionModelBase,
        completed: CompletedJoin,
        confidence: float = 0.95,
    ):
        if not 0.5 < confidence < 1.0:
            raise ValueError("confidence must be in (0.5, 1)")
        if completed.codes is None:
            raise ValueError("completed join does not carry model codes")
        self.model = model
        self.completed = completed
        self.confidence = confidence
        self.layout = model.layout
        self.target = model.layout.path.target
        self._distributions: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------
    def _variable_index(self, column: str) -> int:
        name = f"{self.target}.{column}"
        for i, spec in enumerate(self.layout.variables):
            if spec.name == name:
                return i
        raise KeyError(f"{name} is not a model variable")

    def _per_tuple_distributions(self, variable: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(P_model per synthesized row, certainty per synthesized row)``.

        Memoized per variable: the model forward over every synthesized row
        dominates band cost, and repeated ``count_fraction`` calls for
        different values of one column — or ``average`` + ``total`` on the
        same column — share identical distributions.  The completed join is
        immutable, so entries never go stale.
        """
        if variable in self._distributions:
            return self._distributions[variable]
        synth = self.completed.target_synthesized()
        codes = self.completed.codes[synth]
        ctx = None if self.completed.context is None else self.completed.context[synth]
        p_model = self.model.conditional_probs(codes, variable, context=ctx)

        train = self.model.training_data.matrix[:, variable]
        vocab = self.layout.variables[variable].vocab_size
        counts = np.bincount(train, minlength=vocab).astype(float)
        p_incomplete = (counts + 0.5) / (counts.sum() + 0.5 * vocab)

        kl = np.sum(
            p_model * (np.log(np.maximum(p_model, 1e-12)) - np.log(p_incomplete)),
            axis=1,
        )
        certainty = 1.0 - np.exp(-np.maximum(kl, 0.0))
        self._distributions[variable] = (p_model, certainty)
        return p_model, certainty

    def _weights(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        weights = self.completed.result.effective_weights()
        synth = self.completed.target_synthesized()
        return weights, weights[synth], weights[~synth]

    # ------------------------------------------------------------------
    # COUNT of one categorical value (the paper's canonical case)
    # ------------------------------------------------------------------
    def count_fraction(self, column: str, value) -> ConfidenceBand:
        """Band for the *fraction* of target tuples with ``column == value``."""
        variable = self._variable_index(column)
        codec = self.layout.encoders[self.target].codec(column)
        if not isinstance(codec, CategoricalCodec):
            raise TypeError(f"{column} is not categorical; use average()")
        code = int(codec.encode([value])[0])

        p_model, certainty = self._per_tuple_distributions(variable)
        weights, w_synth, w_exist = self._weights()
        synth = self.completed.target_synthesized()
        values = self.completed.result.resolve(f"{self.target}.{column}")
        exist_hits = float((w_exist * (values[~synth] == value)).sum())

        p_value = p_model[:, code]
        upper_mass = self.confidence
        lower_mass = 1.0 - self.confidence
        mixed_up = certainty * p_value + (1.0 - certainty) * upper_mass
        mixed_lo = certainty * p_value + (1.0 - certainty) * lower_mass

        total = float(weights.sum())
        estimate = (exist_hits + float((w_synth * p_value).sum())) / total
        return ConfidenceBand(
            estimate=estimate,
            lower=(exist_hits + float((w_synth * mixed_lo).sum())) / total,
            upper=(exist_hits + float((w_synth * mixed_up).sum())) / total,
            theoretical_min=exist_hits / total,
            theoretical_max=(exist_hits + float(w_synth.sum())) / total,
        )

    # ------------------------------------------------------------------
    # AVG of a continuous attribute (§6.2)
    # ------------------------------------------------------------------
    def average(self, column: str) -> ConfidenceBand:
        """Band for the average of a continuous target attribute."""
        variable = self._variable_index(column)
        codec = self.layout.encoders[self.target].codec(column)
        if not isinstance(codec, ContinuousCodec):
            raise TypeError(f"{column} is not continuous; use count_fraction()")

        p_model, certainty = self._per_tuple_distributions(variable)
        weights, w_synth, w_exist = self._weights()
        synth = self.completed.target_synthesized()
        values = np.asarray(
            self.completed.result.resolve(f"{self.target}.{column}"), dtype=float
        )
        exist_sum = float((w_exist * values[~synth]).sum())

        bin_values = codec.decode(np.arange(codec.vocab_size), dequantize=False)
        model_mean = p_model @ bin_values
        low_value, high_value = bin_values.min(), bin_values.max()
        # P_lower/P_upper put the confidence mass on the extreme bin and the
        # rest on the model mean — the conservative §6.2 construction.
        upper_mean = self.confidence * high_value + (1 - self.confidence) * model_mean
        lower_mean = self.confidence * low_value + (1 - self.confidence) * model_mean
        mixed_up = certainty * model_mean + (1.0 - certainty) * upper_mean
        mixed_lo = certainty * model_mean + (1.0 - certainty) * lower_mean

        total = float(weights.sum())
        estimate = (exist_sum + float((w_synth * model_mean).sum())) / total
        return ConfidenceBand(
            estimate=estimate,
            lower=(exist_sum + float((w_synth * mixed_lo).sum())) / total,
            upper=(exist_sum + float((w_synth * mixed_up).sum())) / total,
            theoretical_min=(exist_sum + float(w_synth.sum()) * low_value) / total,
            theoretical_max=(exist_sum + float(w_synth.sum()) * high_value) / total,
        )

    # ------------------------------------------------------------------
    # SUM = AVG x COUNT (paper: "treated as a combination")
    # ------------------------------------------------------------------
    def total(self, column: str) -> ConfidenceBand:
        """Band for the sum of a continuous target attribute."""
        avg_band = self.average(column)
        total_weight = float(self.completed.result.effective_weights().sum())
        return ConfidenceBand(
            estimate=avg_band.estimate * total_weight,
            lower=avg_band.lower * total_weight,
            upper=avg_band.upper * total_weight,
            theoretical_min=(
                None if avg_band.theoretical_min is None
                else avg_band.theoretical_min * total_weight
            ),
            theoretical_max=(
                None if avg_band.theoretical_max is None
                else avg_band.theoretical_max * total_weight
            ),
        )

    def synthesis_ratio(self) -> float:
        """Share of (weighted) rows whose target tuple is synthetic —
        the per-query statistic shown for unsupported query types."""
        weights = self.completed.result.effective_weights()
        synth = self.completed.target_synthesized()
        total = float(weights.sum())
        if total == 0:
            return 0.0
        return float(weights[synth].sum()) / total


def band_for_query(
    estimator: ConfidenceEstimator, query: Query
) -> Optional[ConfidenceBand]:
    """A §6 band for the query's aggregate, where the machinery supports one.

    Supported: ungrouped ``AVG``/``SUM`` over a *continuous* column of the
    completion target.  Anything else (grouping, COUNT, non-target or
    categorical columns) returns ``None`` — progressive refinement then
    streams point estimates without bands rather than failing.
    """
    if query.group_by:
        return None
    agg = query.aggregate
    if agg.column is None or agg.kind is AggregateKind.COUNT:
        return None
    column = agg.column
    if "." in column:
        table, column = column.split(".", 1)
        if table != estimator.target:
            return None
    target_table = estimator.layout.db.table(estimator.target)
    if column not in target_table.column_names:
        return None
    try:
        if agg.kind is AggregateKind.AVG:
            return estimator.average(column)
        return estimator.total(column)
    except (TypeError, KeyError):
        # categorical column or not a model variable
        return None
