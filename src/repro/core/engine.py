"""The ReStore engine: annotate → train completion models → answer queries.

This is the public facade tying together everything the paper describes:

1. **fit** — enumerate admissible completion paths per incomplete table
   (§3.2/§4), merge them (§3.4), and train AR and SSAR candidates (§3).
2. **answer** — for a query touching incomplete tables, select a model
   (§5), run the incompleteness join (§4, Algorithm 1), project/extend it to
   the query's join path, and evaluate filters/aggregates with the normal
   operators.  Completed joins are cached and reused across queries (§4.5).
3. **confidence** — per-answer §6 confidence bands for supported aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..incomplete import IncompleteDataset
from ..nn.train import TRAIN_BACKENDS
from ..obs import trace
from ..runtime import CacheStats, JoinCache, PartialCacheStats, PartialJoinCache
from ..runtime.parallel import PARALLEL_BACKENDS, get_executor
from ..query import (
    JoinResult,
    Query,
    QueryResult,
    execute,
    execute_on_join,
)
from ..query.pushdown import PushdownPlan, plan_pushdown
from ..relational import (
    CompletionPath,
    Database,
    SchemaAnnotation,
    enumerate_completion_paths,
    fan_out_relations,
)
from .confidence import ConfidenceBand, ConfidenceEstimator, band_for_query
from .forest import EvidenceForest
from .incompleteness_join import (
    CompletedJoin,
    IncompletenessJoin,
    restrict_chunk_output,
)
from .progressive import Refinement, SamplingBudget
from .merging import training_savings
from .models import ARCompletionModel, ModelConfig, SSARCompletionModel, _CompletionModelBase
from .path_data import PathLayout, build_encoders
from .selection import (
    CandidateScore,
    SuspectedBias,
    apply_suspected_bias,
    basic_filter,
    score_candidates,
)


@dataclass
class ReStoreConfig:
    """Engine-level configuration.

    ``chunk_size`` streams the incompleteness join over chunks of that many
    root evidence rows (bounding peak memory; ``None`` = single pass),
    ``join_cache_size`` bounds the LRU cache of completed joins, and
    ``compiled_inference`` selects the graph-free float32 runtime for
    completion-time sampling (training always uses autograd).

    ``n_workers`` / ``parallel_backend`` fan work out over an executor
    (:mod:`repro.runtime.parallel`): the incompleteness join shards its
    root-row chunks and ``fit`` trains per-path models concurrently.
    Backends are ``"serial"`` (default), ``"thread"`` and ``"process"``;
    results are identical across all of them at a fixed seed (completed
    joins bitwise up to row order).

    ``train_backend`` overrides the per-model training backend
    (``model.train.backend``) for every path the engine fits: ``"fused"``
    runs the hand-derived float32 kernels of
    :mod:`repro.runtime.training`, ``"autograd"`` the float64 reference
    engine, ``None`` (default) respects the model config.

    ``partial_cache_chunks`` bounds the chunk-granular partial-completion
    cache (:class:`~repro.runtime.PartialJoinCache`) backing pushdown and
    progressive answering.  ``progressive_chunks`` sets the canonical chunk
    grid for those paths when ``chunk_size`` is ``None``: the root table is
    split into about that many chunks so budgeted runs have something to
    stream over (an explicit ``chunk_size`` always wins).
    """

    model: ModelConfig = field(default_factory=ModelConfig)
    num_bins: int = 32
    use_ar: bool = True
    use_ssar: bool = True
    max_path_length: int = 4
    max_paths_per_target: int = 4
    min_signal: float = 0.0
    approximate_replacement: bool = True
    seed: int = 0
    chunk_size: Optional[int] = None
    join_cache_size: int = 8
    compiled_inference: bool = True
    n_workers: int = 1
    parallel_backend: str = "serial"
    train_backend: Optional[str] = None
    partial_cache_chunks: int = 256
    progressive_chunks: int = 16

    def __post_init__(self) -> None:
        if self.partial_cache_chunks < 1:
            raise ValueError(
                f"partial_cache_chunks must be >= 1, got {self.partial_cache_chunks}"
            )
        if self.progressive_chunks < 1:
            raise ValueError(
                f"progressive_chunks must be >= 1, got {self.progressive_chunks}"
            )
        if self.parallel_backend not in PARALLEL_BACKENDS:
            raise ValueError(
                f"parallel_backend must be one of {PARALLEL_BACKENDS}, "
                f"got {self.parallel_backend!r}"
            )
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.train_backend is not None and self.train_backend not in TRAIN_BACKENDS:
            raise ValueError(
                f"train_backend must be one of {TRAIN_BACKENDS} or None, "
                f"got {self.train_backend!r}"
            )


@dataclass
class Answer:
    """A completed query answer plus provenance."""

    result: QueryResult
    query: Query
    used_completion: bool
    model: Optional[_CompletionModelBase] = None
    completed: Optional[CompletedJoin] = None
    from_cache: bool = False
    #: pushdown provenance (roots scanned vs qualifying, chunks walked vs
    #: total, filter kinds); None when the legacy full-join path answered.
    pushdown: Optional[Dict[str, object]] = None

    def confidence(self, confidence: float = 0.95) -> Optional[ConfidenceEstimator]:
        """A §6 confidence estimator for this answer (None if no completion)."""
        if self.model is None or self.completed is None:
            return None
        return ConfidenceEstimator(self.model, self.completed, confidence)


class ReStore:
    """Neural data completion for one incomplete relational database.

    Parameters
    ----------
    db / annotation:
        The incomplete database and its §2.2 completeness annotation (pass
        an :class:`~repro.incomplete.IncompleteDataset` via
        :meth:`from_dataset` for convenience).
    config:
        Engine configuration.
    """

    def __init__(
        self,
        db: Database,
        annotation: SchemaAnnotation,
        config: Optional[ReStoreConfig] = None,
    ):
        annotation.check_covers(db)
        self.db = db
        self.annotation = annotation
        self.config = config or ReStoreConfig()
        self.encoders = build_encoders(db, self.config.num_bins)
        self._models: Dict[Tuple[str, Tuple[str, ...]], _CompletionModelBase] = {}
        self._candidates: Dict[str, List[CandidateScore]] = {}
        self.join_cache = JoinCache(self.config.join_cache_size)
        self.partial_cache = PartialJoinCache(self.config.partial_cache_chunks)
        self.merge_stats: Dict[str, int] = {}
        #: Optional provenance: the registry scenario this engine's dataset
        #: came from; stamped into saved artifacts (repro.serving).
        self.scenario_name: Optional[str] = None
        #: Fit-time anchors for the incremental layer: the database digest
        #: gates warm-start fine-tuning (unchanged data = exact no-op) and
        #: the encoded-distribution summary is the drift baseline.
        self._fitted_digest: Optional[str] = None
        self._drift_baseline: Optional[Dict] = None

    @classmethod
    def from_dataset(
        cls, dataset: IncompleteDataset, config: Optional[ReStoreConfig] = None
    ) -> "ReStore":
        return cls(dataset.incomplete, dataset.annotation, config)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def incomplete_targets(self) -> List[str]:
        """Incomplete tables with modelable columns (link tables excluded —
        they are completed as interior hops of other targets' paths)."""
        return [
            t for t in self.db.table_names()
            if not self.annotation.is_complete(t)
            and self.db.table(t).modelable_columns()
        ]

    def paths_for(self, target: str) -> List[CompletionPath]:
        paths = enumerate_completion_paths(
            self.db, self.annotation, target, self.config.max_path_length
        )
        return paths[: self.config.max_paths_per_target]

    def fit(self, targets: Optional[Sequence[str]] = None) -> "ReStore":
        """Train AR (and SSAR where fan-out evidence exists) candidates.

        Per-path training runs on the configured executor
        (``parallel_backend`` / ``n_workers``): every (path, seed offset)
        task derives its own seeds, so the fitted models are identical to a
        serial run regardless of scheduling.  Process workers train on a
        worker-local engine copy and ship the fitted models back.

        Re-fitting invalidates the join cache and the partial-completion
        cache: cached joins and chunks were sampled from the previous
        models and no longer reflect the engine's state.
        """
        self.join_cache.invalidate()
        self.partial_cache.invalidate()
        targets = list(targets) if targets is not None else self.incomplete_targets()
        all_paths: List[CompletionPath] = []
        tasks: List[Tuple[str, Tuple[str, ...], int]] = []
        for target in targets:
            paths = self.paths_for(target)
            if not paths:
                raise ValueError(f"no admissible completion path for {target!r}")
            all_paths.extend(paths)
            for i, path in enumerate(paths):
                tasks.append((target, path.tables, i))

        results = self._run_training(tasks)
        if self.config.parallel_backend == "process":
            self._adopt_worker_models(results)

        by_target: Dict[str, List[_CompletionModelBase]] = {t: [] for t in targets}
        for (target, _tables, _offset), models in zip(tasks, results):
            for model in models:
                self._models[(model.kind, model.layout.path.tables)] = model
            by_target[target].extend(models)
        for target in targets:
            self._candidates[target] = score_candidates(by_target[target])
        self.merge_stats = training_savings(all_paths)
        self._stash_fit_anchors()
        return self

    def _run_training(self, tasks: List[Tuple[str, Tuple[str, ...], int]]):
        """Dispatch per-path training tasks to the configured executor."""
        executor = get_executor(self.config.parallel_backend, self.config.n_workers)
        if executor.shares_caller_state:
            return executor.map(_fit_path_task, tasks, payload=self)
        # Process workers rebuild a single-worker engine from the pickled
        # database and train there; fitted models (plain numpy state) ship
        # back.  Forcing the worker config serial keeps pools from nesting.
        worker_config = replace(
            self.config, n_workers=1, parallel_backend="serial"
        )
        payload = (self.db, self.annotation, worker_config)
        return executor.map(
            _fit_path_task, tasks, payload=payload, init=_build_worker_engine
        )

    def _adopt_worker_models(self, results) -> None:
        """Re-anchor worker-trained models on the parent's database.

        Process workers train against a pickled copy of the database, and
        the fitted models come back carrying that copy in their layouts and
        forests.  The copies are content-identical to ``self.db`` (training
        is deterministic), so re-binding them to the parent's objects keeps
        one database in memory instead of one per trained path.
        """
        layouts: Dict[Tuple[str, ...], PathLayout] = {}
        for models in results:
            for model in models:
                tables = model.layout.path.tables
                if tables not in layouts:
                    layouts[tables] = PathLayout(
                        self.db, self.annotation,
                        CompletionPath(tables), self.encoders,
                    )
                model.layout = layouts[tables]
                forest = getattr(model, "forest", None)
                if forest is not None:
                    forest.db = self.db
                    forest.encoders = self.encoders

    def _train_path(self, path: CompletionPath, seed_offset: int = 0):
        """Train this path's AR/SSAR candidates (pure: registration is the
        caller's job, so executor workers can run this concurrently)."""
        models = []
        layout = PathLayout(self.db, self.annotation, path, self.encoders)
        base_seed = self.config.seed + 31 * seed_offset
        if self.config.use_ar:
            cfg = self._model_config(base_seed)
            ar = ARCompletionModel(layout, cfg)
            ar.fit()
            models.append(ar)
        if self.config.use_ssar:
            walks = fan_out_relations(self.db, self.annotation, path)
            if walks:
                forest = EvidenceForest(
                    self.db, path.tables[0], walks, self.encoders,
                    self_evidence_table=path.target,
                )
                cfg = self._model_config(base_seed + 17)
                ssar = SSARCompletionModel(layout, forest, cfg)
                ssar.fit()
                models.append(ssar)
        return models

    def _model_config(self, seed: int) -> ModelConfig:
        base = self.config.model
        train_cfg = base.train
        if (
            self.config.train_backend is not None
            and train_cfg.backend != self.config.train_backend
        ):
            train_cfg = replace(train_cfg, backend=self.config.train_backend)
        return ModelConfig(
            embed_dim=base.embed_dim,
            hidden=base.hidden,
            tree_dim=base.tree_dim,
            seed=seed,
            compiled_inference=(
                base.compiled_inference and self.config.compiled_inference
            ),
            train=train_cfg,
        )

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def candidates(self, target: str) -> List[CandidateScore]:
        if target not in self._candidates:
            raise RuntimeError(f"call fit() first (no candidates for {target!r})")
        return self._candidates[target]

    def select_model(
        self,
        target: str,
        query: Optional[Query] = None,
        suspected_bias: Optional[SuspectedBias] = None,
    ) -> CandidateScore:
        """§5 selection: query coverage (hard), basic signal filter,
        optional suspected-bias hint."""
        with trace("engine.select_model", target=target) as span:
            candidates = self.candidates(target)

            # Coverage is a hard constraint: the completed join must contain
            # every query table, otherwise the query cannot be evaluated on it.
            if query is not None:
                covering = [
                    c for c in candidates
                    if set(query.tables) <= set(c.path.tables)
                ]
                if covering:
                    candidates = covering

            candidates = basic_filter(candidates, self.config.min_signal)

            if suspected_bias is not None and len(candidates) > 1:
                incomplete_value = self._aggregate_on_incomplete(
                    target, suspected_bias
                )
                candidates = apply_suspected_bias(
                    candidates,
                    suspected_bias,
                    lambda c: self._aggregate_on_completed(c, target, suspected_bias),
                    incomplete_value,
                )
            span.set("candidates", len(candidates))
            span.set("chosen", "/".join(candidates[0].path.tables))
            return candidates[0]

    def advanced_select(
        self,
        target: str,
        dataset: IncompleteDataset,
        seed: int = 0,
    ) -> CandidateScore:
        """§5 advanced selection via a derived incompleteness scenario.

        Re-applies the dataset's removal characteristics to the available
        data, trains each candidate's (path, kind) afresh on the derived
        data, completes it, and scores how well the *first-level* statistic
        is reconstructed — the first-level incomplete data acts as ground
        truth.  Candidates are ranked by that score.
        """
        from ..incomplete import derive_selection_scenario
        from ..metrics import bias_reduction, categorical_fraction, weighted_average
        from .selection import rank_by_derived_scenario

        derived = derive_selection_scenario(dataset, seed=seed)
        spec = next(s for s in dataset.specs if s.table == target)
        attribute = spec.biased_attribute

        derived_engine = ReStore.from_dataset(derived, self.config)
        derived_engine.fit(targets=[target])
        derived_by_key = {
            (c.model.kind, c.path.tables): c
            for c in derived_engine.candidates(target)
        }

        truth_table = derived.complete.table(target)  # = first-level data
        inc_table = derived.incomplete.table(target)
        categorical = truth_table.meta(attribute).kind.value == "categorical"
        if categorical:
            uniques, counts = np.unique(truth_table[attribute], return_counts=True)
            value = uniques[counts.argmax()]
            true_stat = categorical_fraction(truth_table[attribute], value)
            inc_stat = categorical_fraction(inc_table[attribute], value)
        else:
            true_stat = weighted_average(truth_table[attribute])
            inc_stat = weighted_average(inc_table[attribute])

        def evaluate(candidate: CandidateScore) -> float:
            derived_candidate = derived_by_key.get(
                (candidate.model.kind, candidate.path.tables)
            )
            if derived_candidate is None:
                return float("-inf")
            completed = derived_engine.completed_join(derived_candidate.model)
            projected = derived_engine.project_to_tables(completed, (target,))
            values = projected.resolve(f"{target}.{attribute}")
            weights = projected.effective_weights()
            if categorical:
                stat = categorical_fraction(values, value, weights)
            else:
                stat = weighted_average(values, weights)
            score = bias_reduction(true_stat, inc_stat, stat)
            return score if not np.isnan(score) else float("-inf")

        ranked = rank_by_derived_scenario(self.candidates(target), evaluate)
        return ranked[0]

    def _aggregate_on_incomplete(self, target: str, bias: SuspectedBias) -> float:
        values = self.db.table(target)[bias.attribute]
        if bias.value is not None:
            return float(np.mean(values == bias.value))
        return float(np.mean(values.astype(float)))

    def _aggregate_on_completed(
        self, candidate: CandidateScore, target: str, bias: SuspectedBias
    ) -> float:
        completed = self.completed_join(candidate.model)
        projected = self.project_to_tables(completed, (target,))
        values = projected.resolve(f"{target}.{bias.attribute}")
        weights = projected.effective_weights()
        total = weights.sum()
        if total == 0:
            return float("nan")
        if bias.value is not None:
            return float((weights * (values == bias.value)).sum() / total)
        return float((weights * values.astype(float)).sum() / total)

    # ------------------------------------------------------------------
    # Completion + caching (§4.5)
    # ------------------------------------------------------------------
    def _join_key(self, model: _CompletionModelBase) -> Tuple:
        """Cache key: every input that changes the completed join's content.

        The inference backend is part of the key — float32 and float64
        sampling CDFs round differently, so a backend flip (benchmarks do
        this) must not serve the other backend's cached rows.
        """
        return (
            model.kind,
            model.layout.path.tables,
            self.config.seed,
            self.config.approximate_replacement,
            model.inference_backend,
        )

    def _make_join(
        self, model: _CompletionModelBase, chunk_size: Optional[int] = None
    ) -> IncompletenessJoin:
        return IncompletenessJoin(
            model,
            approximate_replacement=self.config.approximate_replacement,
            seed=self.config.seed,
            chunk_size=(
                chunk_size if chunk_size is not None else self.config.chunk_size
            ),
            n_workers=self.config.n_workers,
            parallel_backend=self.config.parallel_backend,
        )

    def _partial_join(self, model: _CompletionModelBase) -> IncompletenessJoin:
        """The join used by every partial-cache-aware path (pushdown,
        progressive, top-up).

        All of them must agree on one canonical chunk grid — chunk bounds
        key the partial cache.  An explicit ``chunk_size`` is used as-is;
        otherwise the root table splits into about ``progressive_chunks``
        chunks so budgeted runs have a schedule to stream over.
        """
        return self._make_join(model, chunk_size=self._canonical_chunk_size(model))

    def _canonical_chunk_size(self, model: _CompletionModelBase) -> int:
        """The chunk size of the canonical partial grid for ``model``."""
        chunk_size = self.config.chunk_size
        if chunk_size is None:
            num_roots = len(self.db.table(model.layout.path.tables[0]))
            chunk_size = max(1, -(-num_roots // self.config.progressive_chunks))
        return chunk_size

    def _gather_chunks(
        self,
        join: IncompletenessJoin,
        tables: List[str],
        grid: Tuple[Tuple[int, int], ...],
        indices: Sequence[int],
        plan: Optional[PushdownPlan],
        signature: Tuple,
    ) -> Tuple[List, Dict[str, int]]:
        """Chunk outputs for the given grid indices: cache, then walk.

        Chunks with no qualifying root row are skipped outright; cached
        chunks from a looser plan are re-filtered by the leftover
        predicates; everything else is walked on the executor and cached
        under the plan's fingerprint for the next overlapping query.
        Outputs come back in grid order.
        """
        fingerprints = plan.fingerprint_set() if plan is not None else frozenset()
        with trace("engine.gather_chunks", chunks=len(indices)) as span:
            mask = None
            if plan is not None and plan.has_root_filters:
                mask = join.qualifying_root_mask(plan, tables)
            outputs: List = []
            missing: List[Tuple[int, Tuple[int, int]]] = []
            stats = {"chunks_cached": 0, "chunks_walked": 0, "chunks_skipped": 0}
            for i in indices:
                task = grid[i]
                if mask is not None and not mask[task[0]:task[1]].any():
                    stats["chunks_skipped"] += 1
                    continue
                hit = self.partial_cache.lookup(signature, grid, task, fingerprints)
                if hit is not None:
                    output, cached_fps = hit
                    if cached_fps != fingerprints:
                        output = restrict_chunk_output(
                            output, plan.filters_not_in(cached_fps)
                        )
                    outputs.append(output)
                    stats["chunks_cached"] += 1
                else:
                    missing.append((len(outputs), task))
                    outputs.append(None)
            if missing:
                walked = join.walk_chunks([t for _, t in missing], tables, plan)
                for (pos, task), output in zip(missing, walked):
                    self.partial_cache.put(
                        signature, grid, task, fingerprints, output
                    )
                    outputs[pos] = output
                stats["chunks_walked"] = len(missing)
            span.set("chunks_cached", stats["chunks_cached"])
            span.set("chunks_walked", stats["chunks_walked"])
            span.set("chunks_skipped", stats["chunks_skipped"])
            return outputs, stats

    def _pushed_completion(
        self, model: _CompletionModelBase, plan: PushdownPlan
    ) -> CompletedJoin:
        """A pushdown-pruned completion over the canonical partial grid."""
        with trace(
            "engine.pushed_completion",
            tables="/".join(model.layout.path.tables),
        ) as span:
            join = self._partial_join(model)
            tables = join.effective_tables()
            grid = tuple(join.chunk_tasks(tables))
            signature = self._join_key(model)
            outputs, stats = self._gather_chunks(
                join, tables, grid, range(len(grid)), plan, signature
            )
            completed = join.assemble(outputs, tables, plan)
            num_roots = len(self.db.table(tables[0]))
            roots_qualifying = num_roots
            if plan.has_root_filters:
                roots_qualifying = int(
                    join.qualifying_root_mask(plan, tables).sum()
                )
            span.set("roots_qualifying", roots_qualifying)
        completed.pushdown = {
            "roots_total": num_roots,
            "roots_qualifying": roots_qualifying,
            "chunks_total": len(grid),
            "chunks_walked": stats["chunks_walked"],
            "chunks_cached": stats["chunks_cached"],
            "chunks_skipped": stats["chunks_skipped"],
            "filters": plan.counts_by_kind(),
            "residual_filters": len(plan.residual),
        }
        return completed

    def completed_join(self, model: _CompletionModelBase) -> CompletedJoin:
        """Run (or reuse) the incompleteness join for a model's full path.

        When a budgeted or pushdown run already left unfiltered chunks in
        the partial cache, the full join *tops them up* — only the missing
        chunks are walked — and the assembled result is bitwise identical
        (up to row order) to a from-scratch run at the same seed.
        """
        key = self._join_key(model)
        with trace(
            "engine.completed_join", tables="/".join(model.layout.path.tables)
        ) as span:
            cached = self.join_cache.get(key)
            if cached is not None:
                span.set("cache", "hit")
                return cached
            if len(self.partial_cache):
                join = self._partial_join(model)
                tables = join.effective_tables()
                grid = tuple(join.chunk_tasks(tables))
                if self.partial_cache.has_entries(key, grid):
                    outputs, _stats = self._gather_chunks(
                        join, tables, grid, range(len(grid)), None, key
                    )
                    completed = join.assemble(outputs, tables)
                    self.join_cache.put(key, completed)
                    span.set("cache", "topup")
                    return completed
            span.set("cache", "miss")
            completed = self._make_join(model).run()
            self.join_cache.put(key, completed)
            return completed

    @property
    def cache_hits(self) -> int:
        """Join-cache hits since construction (see also :attr:`cache_stats`)."""
        return self.join_cache.stats.hits

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the completed-join cache."""
        return self.join_cache.stats

    @property
    def partial_cache_stats(self) -> PartialCacheStats:
        """Hit/miss/subset-hit counters of the partial-completion cache."""
        return self.partial_cache.stats

    def clear_cache(self) -> None:
        self.join_cache.invalidate()
        self.join_cache.reset_stats()
        self.partial_cache.invalidate()
        self.partial_cache.reset_stats()

    # ------------------------------------------------------------------
    # Incremental completion (repro.incremental)
    # ------------------------------------------------------------------
    def apply_mutations(
        self,
        *,
        inserts: Optional[Dict] = None,
        updates: Optional[Dict] = None,
        deletes: Optional[Dict] = None,
        cascade: bool = True,
    ) -> "MutationDelta":
        """Mutate the base database in place and invalidate precisely.

        Applies the batch via :func:`repro.incremental.apply_mutations`,
        re-anchors every fitted model on the mutated rows (layouts and
        evidence forests keep their fit-time structure — codecs, variable
        vocabularies and trained parameters are untouched), and evicts
        exactly the cached joins/chunks the delta made stale: untouched
        chunks keep serving from the partial cache, so a following
        :meth:`recomplete` re-walks only affected chunks.
        """
        from ..incremental.mutations import apply_mutations as apply_to_db

        new_db, new_annotation, delta = apply_to_db(
            self.db, self.annotation,
            inserts=inserts, updates=updates, deletes=deletes, cascade=cascade,
        )
        self.db = new_db
        if new_annotation is not None:
            self.annotation = new_annotation
        self._rebind_models()
        self._invalidate_for_delta(delta)
        return delta

    def recomplete(
        self,
        delta: Optional["MutationDelta"] = None,
        model: Optional[_CompletionModelBase] = None,
    ) -> CompletedJoin:
        """Re-run a model's completion after mutations, reusing chunks.

        The result is bitwise-identical (up to row order) to a
        from-scratch :meth:`completed_join` on the mutated database at
        the same seed — the counter-based per-row RNG keys every draw to
        the root row index, so untouched chunks coming from the partial
        cache are exactly what a fresh walk would produce.  Passing the
        ``delta`` re-applies its (idempotent) invalidation, making the
        call safe even if the caller evicted nothing beforehand.

        Chunk-level provenance is attached as ``completed.recompletion``
        (``chunks_total`` / ``chunks_walked`` / ``chunks_cached``).
        """
        if model is None:
            model = self._default_model()
        if delta is not None:
            self._invalidate_for_delta(delta)
        key = self._join_key(model)
        cached = self.join_cache.get(key)
        if cached is not None:
            # Re-stamp provenance for *this* call: the whole assembled join
            # was served, nothing walked (the stale dict would otherwise
            # replay the stats of whichever call built it).
            total = getattr(cached, "recompletion", {}).get("chunks_total", 0)
            cached.recompletion = {
                "chunks_total": total,
                "chunks_walked": 0,
                "chunks_cached": total,
            }
            return cached
        join = self._partial_join(model)
        tables = join.effective_tables()
        grid = tuple(join.chunk_tasks(tables))
        outputs, stats = self._gather_chunks(
            join, tables, grid, range(len(grid)), None, key
        )
        completed = join.assemble(outputs, tables)
        completed.recompletion = {
            "chunks_total": len(grid),
            "chunks_walked": stats["chunks_walked"],
            "chunks_cached": stats["chunks_cached"],
        }
        self.join_cache.put(key, completed)
        return completed

    def check_drift(self, thresholds=None) -> "DriftReport":
        """Compare today's encoded distributions against the fit baseline.

        Returns a :class:`~repro.incremental.DriftReport` recommending
        ``skip`` / ``fine_tune`` / ``refit`` (see
        :class:`~repro.incremental.DriftThresholds`).
        """
        from ..incremental.drift import (
            DriftThresholds,
            detect_drift,
            distribution_summary,
        )

        if self._drift_baseline is None:
            raise RuntimeError(
                "call fit() (or load an artifact) before check_drift()"
            )
        current = distribution_summary(self.db, self.encoders)
        return detect_drift(
            self._drift_baseline, current,
            thresholds if thresholds is not None else DriftThresholds(),
        )

    def fine_tune(self) -> Dict[str, object]:
        """Warm-start re-training of every fitted model, digest-gated.

        When the database digest still matches the last fit, nothing runs
        at all — an *exact* no-op (parameters bitwise unchanged).  When
        the data moved, every model re-trains from its current parameters
        (:meth:`~repro.core.models._CompletionModelBase.fit` with
        ``warm_start=True``: the output-bias re-initialization is skipped
        and training starts at the fitted weights), candidates are
        re-scored, and caches invalidate.
        """
        digest = self._database_digest()
        if digest == self._fitted_digest:
            return {"skipped": True, "digest": digest, "models_tuned": 0}
        self.join_cache.invalidate()
        self.partial_cache.invalidate()
        for model in self._models.values():
            model.fit(warm_start=True)
        for target, scores in self._candidates.items():
            self._candidates[target] = score_candidates(
                [score.model for score in scores]
            )
        self._stash_fit_anchors()
        return {
            "skipped": False,
            "digest": self._fitted_digest,
            "models_tuned": len(self._models),
        }

    def _default_model(self) -> _CompletionModelBase:
        for scores in self._candidates.values():
            if scores:
                return scores[0].model
        raise RuntimeError("call fit() first (no fitted models)")

    def _model_closure(self, model: _CompletionModelBase) -> set:
        """Tables whose rows influence the model's completed join."""
        closure = set(model.layout.path.tables)
        forest = getattr(model, "forest", None)
        if forest is not None:
            closure.update(forest.walk_tables())
        return closure

    def _rebind_models(self) -> None:
        """Point fitted models at the engine's current database.

        Layouts swap their data references in place (the variable layout,
        codecs and trained parameters are fit-time state and must not
        change); evidence forests rebuild their precomputed child indexes
        and encoded evidence against the new rows.
        """
        rebound_forests: set = set()
        for model in self._models.values():
            model.layout.db = self.db
            model.layout.annotation = self.annotation
            forest = getattr(model, "forest", None)
            if forest is not None and id(forest) not in rebound_forests:
                forest.rebind(self.db, self.encoders)
                rebound_forests.add(id(forest))

    def _invalidate_for_delta(self, delta: "MutationDelta") -> Dict[str, int]:
        """Evict exactly the cached state ``delta`` made stale."""
        from ..incremental.invalidation import plan_invalidation

        evicted = {"chunks": 0, "joins": 0}
        for model in self._models.values():
            root = model.layout.path.tables[0]
            plan = plan_invalidation(
                delta,
                root_table=root,
                closure_tables=self._model_closure(model),
                num_roots=len(self.db.table(root)),
                chunk_size=self._canonical_chunk_size(model),
            )
            if not plan.touches_cache:
                continue
            signature = self._join_key(model)
            tasks = None if plan.kind == "all" else plan.tasks
            evicted["chunks"] += self.partial_cache.invalidate_delta(
                signature, tasks
            )
            if self.join_cache.evict(signature):
                evicted["joins"] += 1
        return evicted

    def _database_digest(self) -> str:
        from ..serving.artifacts import database_digest

        return database_digest(self.db, self.annotation)

    def _stash_fit_anchors(self) -> None:
        from ..incremental.drift import distribution_summary

        self._fitted_digest = self._database_digest()
        self._drift_baseline = distribution_summary(self.db, self.encoders)

    # ------------------------------------------------------------------
    # Serving artifacts (repro.serving)
    # ------------------------------------------------------------------
    def join_signature(self, model: _CompletionModelBase) -> Tuple:
        """Public identity of the completed join a model would produce.

        The completion service groups concurrent requests by this signature
        so one incompleteness join serves a whole micro-batch; it equals the
        join cache key.
        """
        return self._join_key(model)

    def fitted_models(self) -> Dict[Tuple[str, Tuple[str, ...]], _CompletionModelBase]:
        """The trained models, keyed by ``(kind, path tables)`` (a copy)."""
        return dict(self._models)

    def candidate_scores(self) -> Dict[str, List[CandidateScore]]:
        """Per-target candidate rankings as produced by ``fit`` (a copy)."""
        return {target: list(scores) for target, scores in self._candidates.items()}

    def adopt_fitted_state(
        self,
        models: Dict[Tuple[str, Tuple[str, ...]], _CompletionModelBase],
        candidates: Dict[str, List[CandidateScore]],
        encoders: Optional[Dict] = None,
    ) -> "ReStore":
        """Install externally restored fitted state (an artifact load).

        Any cached completed joins were sampled from the *previous* models,
        so the join cache is invalidated and its statistics reset: after
        adoption, ``cache_stats`` describes only the loaded engine's era —
        the first ``answer`` is a truthful miss, repeats are hits.
        """
        if encoders is not None:
            self.encoders = encoders
        self._models = dict(models)
        self._candidates = {t: list(c) for t, c in candidates.items()}
        unique_paths: List[CompletionPath] = []
        for model in self._models.values():
            if model.layout.path not in unique_paths:
                unique_paths.append(model.layout.path)
        self.merge_stats = training_savings(unique_paths)
        self._rebind_models()
        self.join_cache.invalidate()
        self.join_cache.reset_stats()
        self.partial_cache.invalidate()
        self.partial_cache.reset_stats()
        self._stash_fit_anchors()
        return self

    def save_artifact(self, path, scenario: Optional[str] = None,
                      overwrite: bool = False, parent=None, delta=None,
                      columnar: bool = False):
        """Persist this fitted engine to an artifact directory.

        See :func:`repro.serving.artifacts.save_artifact`; ``scenario``
        defaults to :attr:`scenario_name`.  ``parent``/``delta`` record
        incremental lineage (parent artifact path + mutation counts);
        ``columnar`` writes the database as a mapped column store so the
        loaded engine reads it out of core.
        """
        from ..serving.artifacts import save_artifact

        return save_artifact(
            self, path,
            scenario=scenario if scenario is not None else self.scenario_name,
            overwrite=overwrite, parent=parent, delta=delta,
            columnar=columnar,
        )

    @classmethod
    def load(cls, path, config_overrides: Optional[Dict] = None) -> "ReStore":
        """Reconstruct a ready-to-answer engine from a saved artifact.

        The loaded engine produces the same completed joins (bitwise, up to
        row order) as the engine that was saved, at the same seed.
        ``config_overrides`` replaces execution-only settings
        (``chunk_size``, ``n_workers``, ``parallel_backend``, …) without
        touching the trained state.
        """
        from ..serving.artifacts import load_artifact

        return load_artifact(path, config_overrides=config_overrides)

    # ------------------------------------------------------------------
    # Projection (§4.4: completion path may exceed the query path)
    # ------------------------------------------------------------------
    def project_to_tables(
        self, completed: CompletedJoin, tables: Sequence[str]
    ) -> JoinResult:
        """Restrict a completed join to the query's tables.

        Extra completion-path tables multiply rows (one per evidence
        combination); deduplicating by the logical identity of the kept
        tables' tuples restores correct query-path multiplicities.  Real
        tuples are identified by their primary key, synthetic ones by their
        unique negative ids.
        """
        result = completed.result
        keep_tables = [t for t in completed.path.tables if t in set(tables)]
        missing = set(tables) - set(keep_tables)
        if missing:
            raise ValueError(f"completed join does not contain {sorted(missing)}")

        identity_parts: List[np.ndarray] = []
        for table_name in keep_tables:
            table = self.db.table(table_name)
            key_col = table.primary_key
            if key_col is not None:
                identity_parts.append(
                    np.asarray(result.columns[f"{table_name}.{key_col}"], dtype=np.int64)
                )
        synth = completed.synthesized_mask.get(completed.path.target)

        if identity_parts:
            identity = np.stack(identity_parts, axis=1)
            _, first_idx = np.unique(identity, axis=0, return_index=True)
            keep_rows = np.sort(first_idx)
        else:
            keep_rows = np.arange(result.num_rows)

        columns = {
            name: arr[keep_rows]
            for name, arr in result.columns.items()
            if name.split(".", 1)[0] in set(keep_tables)
        }
        weights = result.effective_weights()[keep_rows]
        return JoinResult(columns, weights=weights)

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def answer(
        self,
        query: Query,
        suspected_bias: Optional[SuspectedBias] = None,
        model: Optional[_CompletionModelBase] = None,
        pushdown: bool = False,
    ) -> Answer:
        """Answer an SPJA query over the (completed) database.

        With ``pushdown=True``, the query's predicates are pushed into the
        incompleteness join (:mod:`repro.query.pushdown`): only qualifying
        root rows are completed, which on selective queries skips most of
        the model sampling while returning the exact same answer as full
        materialization.  A full join already sitting in the cache is used
        instead (it is free); partial chunks are cached and reused across
        overlapping queries.
        """
        with trace(
            "engine.answer", tables="/".join(query.tables), pushdown=pushdown
        ) as span:
            incomplete_in_query = [
                t for t in query.tables if not self.annotation.is_complete(t)
            ]
            if not incomplete_in_query:
                span.set("used_completion", False)
                return Answer(
                    result=execute(self.db, query),
                    query=query,
                    used_completion=False,
                )

            target = self._primary_target(incomplete_in_query)
            if model is None:
                choice = self.select_model(target, query=query,
                                           suspected_bias=suspected_bias)
                model = choice.model

            path_tables = set(model.layout.path.tables)
            if not set(query.tables) <= path_tables:
                raise ValueError(
                    f"selected completion path {model.layout.path} does not "
                    f"cover query tables {query.tables}; no admissible "
                    f"covering path"
                )

            cached_before = self.join_cache.contains(self._join_key(model))
            completed: Optional[CompletedJoin] = None
            if pushdown and not cached_before:
                plan = plan_pushdown(self.db, model.layout.path.tables, query)
                if plan.has_pushdown:
                    completed = self._pushed_completion(model, plan)
            if completed is None:
                completed = self.completed_join(model)

            if set(completed.path.tables) == set(query.tables):
                joined = completed.result
            else:
                joined = self.project_to_tables(completed, query.tables)

            span.set("used_completion", True)
            span.set("from_cache", cached_before)
            return Answer(
                result=execute_on_join(joined, query),
                query=query,
                used_completion=True,
                model=model,
                completed=completed,
                from_cache=cached_before,
                pushdown=completed.pushdown,
            )

    def answer_progressive(
        self,
        query: Query,
        budget: Optional[SamplingBudget] = None,
        confidence: float = 0.95,
        suspected_bias: Optional[SuspectedBias] = None,
        model: Optional[_CompletionModelBase] = None,
    ):
        """Budgeted answering: yield a :class:`Refinement` per schedule step.

        The first refinement answers from the budget's ``initial_chunks``
        chunks of the (pushdown-pruned) chunk grid and carries a §6
        :class:`ConfidenceBand` where the aggregate supports one; each
        subsequent refinement adds chunks per the budget's schedule.  Band
        widths are non-increasing, and — for an untruncated budget — the
        final refinement is exactly the budgetless pushdown answer.
        Completed chunks land in the partial cache, so an interrupted or
        truncated run is resumed, not repeated, and a later full-join
        request tops it up.
        """
        budget = budget if budget is not None else SamplingBudget()
        incomplete_in_query = [
            t for t in query.tables if not self.annotation.is_complete(t)
        ]
        if not incomplete_in_query:
            yield Refinement(
                result=execute(self.db, query),
                query=query,
                band=None,
                chunks_completed=0,
                chunks_total=0,
                index=0,
                final=True,
            )
            return

        target = self._primary_target(incomplete_in_query)
        if model is None:
            choice = self.select_model(target, query=query,
                                       suspected_bias=suspected_bias)
            model = choice.model
        path_tables = set(model.layout.path.tables)
        if not set(query.tables) <= path_tables:
            raise ValueError(
                f"selected completion path {model.layout.path} does not cover "
                f"query tables {query.tables}; no admissible covering path"
            )
        plan = plan_pushdown(self.db, model.layout.path.tables, query)
        join = self._partial_join(model)
        tables = join.effective_tables()
        grid = tuple(join.chunk_tasks(tables))
        signature = self._join_key(model)

        outputs: List = []
        have = 0
        previous_width: Optional[float] = None
        schedule = budget.schedule(len(grid))
        for index, upto in enumerate(schedule):
            batch, _stats = self._gather_chunks(
                join, tables, grid, range(have, upto), plan, signature
            )
            outputs.extend(batch)
            have = upto
            completed = join.assemble(outputs, tables, plan)
            if set(completed.path.tables) == set(query.tables):
                joined = completed.result
            else:
                joined = self.project_to_tables(completed, query.tables)
            result = execute_on_join(joined, query)

            band: Optional[ConfidenceBand] = None
            if completed.num_rows:
                estimator = ConfidenceEstimator(model, completed, confidence)
                band = band_for_query(estimator, query)
            if band is not None and previous_width is not None \
                    and band.width > previous_width:
                # Enforce monotone tightening: more completed chunks never
                # widen the reported interval.  The raw §6 band can wobble
                # upward when a new chunk adds uncertain rows; clamp it
                # symmetrically around the current estimate.
                half = previous_width / 2.0
                band = ConfidenceBand(
                    estimate=band.estimate,
                    lower=band.estimate - half,
                    upper=band.estimate + half,
                    theoretical_min=band.theoretical_min,
                    theoretical_max=band.theoretical_max,
                )
            if band is not None:
                previous_width = band.width

            yield Refinement(
                result=result,
                query=query,
                band=band,
                chunks_completed=upto,
                chunks_total=len(grid),
                index=index,
                final=upto == len(grid),
            )

    def pushdown_profile(
        self,
        query: Query,
        model: Optional[_CompletionModelBase] = None,
        suspected_bias: Optional[SuspectedBias] = None,
    ) -> Optional[Dict[str, object]]:
        """Plan a query's pushdown without running it.

        Returns the scan profile a pushed run would have — how many root
        evidence rows qualify vs how many full materialization walks —
        plus the filter classification.  ``None`` when the query needs no
        completion or the selected path does not cover it.  Cheap: only
        the pre-walk predicate is evaluated, on real root columns.
        """
        incomplete = [
            t for t in query.tables if not self.annotation.is_complete(t)
        ]
        if not incomplete:
            return None
        if model is None:
            choice = self.select_model(
                self._primary_target(incomplete), query=query,
                suspected_bias=suspected_bias,
            )
            model = choice.model
        if not set(query.tables) <= set(model.layout.path.tables):
            return None
        plan = plan_pushdown(self.db, model.layout.path.tables, query)
        join = self._partial_join(model)
        tables = join.effective_tables()
        num_roots = len(join.db.table(tables[0]))
        if plan.has_root_filters:
            qualifying = int(join.qualifying_root_mask(plan, tables).sum())
        else:
            qualifying = num_roots
        return {
            "roots_total": num_roots,
            "roots_qualifying": qualifying,
            "filters": plan.counts_by_kind(),
            "residual_filters": len(plan.residual),
        }

    def _primary_target(self, incomplete_tables: Sequence[str]) -> str:
        """The incomplete table whose models drive the completion.

        Link tables (no modelable columns) are completed as interior hops,
        so prefer a table with attributes; ties break to the table with the
        most candidates available.
        """
        with_columns = [
            t for t in incomplete_tables if self.db.table(t).modelable_columns()
        ]
        pool = with_columns or list(incomplete_tables)
        known = [t for t in pool if t in self._candidates]
        if not known:
            raise RuntimeError(
                f"fit() has not trained models for any of {sorted(pool)}"
            )
        return known[0]


# ----------------------------------------------------------------------
# Executor worker hooks for parallel ``fit`` (module-level: process
# workers import them by reference)
# ----------------------------------------------------------------------

def _build_worker_engine(payload) -> ReStore:
    """Process-pool initializer: a worker-local engine from pickled state."""
    db, annotation, config = payload
    return ReStore(db, annotation, config)


def _fit_path_task(engine: ReStore, task):
    """Executor task: train one completion path's candidate models."""
    _target, path_tables, seed_offset = task
    return engine._train_path(CompletionPath(path_tables), seed_offset=seed_offset)
