"""Euclidean nearest-neighbour replacement of synthesized tuples.

Paper §4.2 (Fig. 3): completion models never synthesize keys, so when a
completed intermediate result must join onward with a *complete* table, the
synthesized partner tuples are replaced by the most similar *existing*
tuples (lowest euclidean distance), restoring real primary keys and
guaranteeing that no invented tuples appear for tables annotated complete.

Exact replacement is a KD-tree query; the paper notes that approximate
search with batching is "crucial" for competitive performance, so an
approximate mode (random-projection dimensionality reduction before the
KD-tree) is provided and ablated in ``benchmarks/bench_ablations.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy.spatial import cKDTree

from ..relational import ColumnKind, Table


class TupleSpace:
    """Embed tuples of one table into a euclidean feature space.

    Continuous columns are z-scored; categorical columns are one-hot encoded
    (so one category mismatch costs a constant distance).  Key columns are
    ignored — similarity is defined over attribute values only.
    """

    def __init__(self, table: Table):
        self.columns: List[str] = table.modelable_columns()
        self._kinds: Dict[str, ColumnKind] = {
            c: table.meta(c).kind for c in self.columns
        }
        self._means: Dict[str, float] = {}
        self._stds: Dict[str, float] = {}
        self._categories: Dict[str, np.ndarray] = {}
        for column in self.columns:
            values = table[column]
            if self._kinds[column] is ColumnKind.CONTINUOUS:
                arr = np.asarray(values, dtype=float)
                self._means[column] = float(arr.mean())
                self._stds[column] = float(arr.std()) or 1.0
            else:
                self._categories[column] = np.unique(values)

    @property
    def dim(self) -> int:
        total = 0
        for column in self.columns:
            if self._kinds[column] is ColumnKind.CONTINUOUS:
                total += 1
            else:
                total += len(self._categories[column])
        return total

    def transform(self, columns: Dict[str, Sequence]) -> np.ndarray:
        """Feature matrix ``(rows, dim)`` for a dict of column arrays."""
        parts: List[np.ndarray] = []
        num_rows = None
        for column in self.columns:
            values = np.asarray(columns[column])
            num_rows = len(values)
            if self._kinds[column] is ColumnKind.CONTINUOUS:
                arr = (values.astype(float) - self._means[column]) / self._stds[column]
                parts.append(arr[:, None])
            else:
                cats = self._categories[column]
                onehot = (values[:, None] == cats[None, :]).astype(float)
                parts.append(onehot)
        if num_rows is None:
            return np.zeros((0, 0))
        return np.concatenate(parts, axis=1)

    def transform_table(self, table: Table) -> np.ndarray:
        return self.transform({c: table[c] for c in self.columns})


class EuclideanReplacer:
    """Replace synthesized tuples with their nearest existing tuples.

    Parameters
    ----------
    table:
        The complete table providing the replacement candidates.
    approximate:
        When true, features are first projected to ``projection_dim``
        dimensions with a seeded Gaussian random projection — trading a
        little accuracy for much cheaper queries in wide spaces.
    batch_size:
        Queries are answered in batches (the paper's batching).
    """

    def __init__(
        self,
        table: Table,
        approximate: bool = False,
        projection_dim: int = 8,
        batch_size: int = 4096,
        seed: int = 0,
    ):
        self.table = table
        self.space = TupleSpace(table)
        self.approximate = approximate
        self.batch_size = batch_size
        features = self.space.transform_table(table)
        if approximate and features.shape[1] > projection_dim:
            rng = np.random.default_rng(seed)
            self._projection: Optional[np.ndarray] = rng.normal(
                0.0, 1.0 / np.sqrt(projection_dim),
                size=(features.shape[1], projection_dim),
            )
            features = features @ self._projection
        else:
            self._projection = None
        self._tree = cKDTree(features)

    def replace(self, synthesized_columns: Dict[str, Sequence]) -> np.ndarray:
        """Row indices (into the real table) nearest to each synthesized tuple."""
        features = self.space.transform(synthesized_columns)
        if self._projection is not None:
            features = features @ self._projection
        indices = np.empty(len(features), dtype=np.int64)
        for start in range(0, len(features), self.batch_size):
            stop = min(start + self.batch_size, len(features))
            _, idx = self._tree.query(features[start:stop])
            indices[start:stop] = idx
        return indices

    def replacement_values(
        self, synthesized_columns: Dict[str, Sequence]
    ) -> Dict[str, np.ndarray]:
        """Full replacement rows (all columns, incl. keys) for synthesized tuples."""
        rows = self.replace(synthesized_columns)
        return {c: self.table[c][rows] for c in self.table.column_names}
