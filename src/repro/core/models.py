"""AR and SSAR completion models over a completion path.

``ARCompletionModel`` (paper §3.2) is a residual MADE over all variables of
a :class:`~repro.core.path_data.PathLayout`; ``SSARCompletionModel``
(paper §3.3) additionally conditions every output on a deep-sets encoding of
the evidence tuple's fan-out tree (including self-evidence with
leave-one-out during training).

Both expose the same hop-level API used by the incompleteness join:

* :meth:`predict_tuple_factors` — sample/read the number of child tuples an
  evidence tuple should have,
* :meth:`sample_slot` — synthesize the columns of the next table on the
  path, conditioned on everything sampled so far,
* :meth:`conditional_probs` — the per-variable distribution needed by the
  confidence estimator (§6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..nn import (
    EvidenceTreeEncoder,
    Module,
    ResidualMADE,
    Tensor,
    TrainConfig,
    TrainResult,
    train,
)
from ..nn.made import _sample_rows
from .forest import EvidenceForest
from .path_data import PathLayout, TrainingData, assemble_training_data


@dataclass
class ModelConfig:
    """Architecture and training hyper-parameters of a completion model.

    ``compiled_inference`` selects the default inference backend: the
    graph-free float32 runtime (:mod:`repro.runtime`) or the float64
    autograd forward.  The training backend is ``train.backend``
    (``"fused"`` kernels by default, ``"autograd"`` as the reference
    oracle).
    """

    embed_dim: int = 16
    hidden: Sequence[int] = (64, 64)
    tree_dim: int = 16
    seed: int = 0
    compiled_inference: bool = True
    train: TrainConfig = field(default_factory=lambda: TrainConfig(
        epochs=20, batch_size=256, lr=5e-3, patience=4,
    ))


class _HopSamplingAPI:
    """The hop-level sampling surface consumed by the incompleteness join.

    Everything is expressed through four hooks — ``layout``,
    :meth:`_require_fitted`, :meth:`_cond_probs` and :meth:`_sample_range` —
    so the same code drives both the live (trainable) completion models and
    the picklable :class:`CompletionSnapshot` shipped to process workers.
    """

    kind = "base"
    layout: PathLayout

    def _require_fitted(self) -> None:
        raise NotImplementedError

    def _cond_probs(
        self, prefix: np.ndarray, variable: int, context: Optional[np.ndarray]
    ) -> np.ndarray:
        """``P(x_variable | earlier, context)`` on the active backend."""
        raise NotImplementedError

    def _sample_range(
        self,
        prefix: np.ndarray,
        first_column: int,
        stop: int,
        rng: Optional[np.random.Generator],
        context: Optional[np.ndarray],
        draws: Optional[np.ndarray],
    ) -> np.ndarray:
        """Autoregressively sample variables ``first_column .. stop - 1``."""
        raise NotImplementedError

    def context_for_roots(self, root_rows: np.ndarray) -> Optional[np.ndarray]:
        """Raw context vectors for evidence root rows (None for AR)."""
        return None

    # -- hop-level sampling API ------------------------------------------
    def predict_tuple_factors(
        self,
        prefix: np.ndarray,
        slot: int,
        rng: Optional[np.random.Generator] = None,
        context: Optional[np.ndarray] = None,
        min_counts: Optional[np.ndarray] = None,
        draws: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Sample tuple factors for the fan-out hop entering ``slot``.

        The reserved ``unknown`` code is masked out, so the result is always
        an actual count.  ``min_counts`` truncates each row's conditional at
        the number of children already observed — we *know* TF >= existing,
        and sampling untruncated then clamping would bias counts upward.
        The sampled code is also written into ``prefix`` (callers pass the
        same array on to :meth:`sample_slot`).  Randomness comes from
        ``draws`` (one uniform per row, the runtime's counter-based streams)
        when given, else from ``rng``.  Accepts row-chunked batches: rows
        are independent, so any partition of a batch yields the same result.
        """
        self._require_fitted()
        tf_idx = self.layout.tf_variable_index(slot)
        if tf_idx is None:
            raise ValueError(f"slot {slot} is not a fan-out hop")
        codec = self.layout.tf_codec_for(slot)
        probs = self._cond_probs(prefix, tf_idx, context)
        probs = probs * codec.sampling_mask()[None, :]
        if min_counts is not None:
            counts_axis = np.arange(probs.shape[1])
            probs = probs * (counts_axis[None, :] >= np.asarray(min_counts)[:, None])
            # Rows whose observed count exceeds every remaining code fall
            # back to exactly the observed count.
            dead = probs.sum(axis=1) <= 0
            if dead.any():
                probs[dead] = 0.0
                clip = np.minimum(np.asarray(min_counts)[dead], codec.cap)
                probs[np.flatnonzero(dead), clip] = 1.0
        probs = probs / probs.sum(axis=1, keepdims=True)
        codes = _sample_rows(probs, rng, draws)
        prefix[:, tf_idx] = codes
        return codec.decode(codes)

    def expected_tuple_factors(
        self,
        prefix: np.ndarray,
        slot: int,
        context: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Expected (mean) tuple factor per row — used for reweighting."""
        self._require_fitted()
        tf_idx = self.layout.tf_variable_index(slot)
        if tf_idx is None:
            raise ValueError(f"slot {slot} is not a fan-out hop")
        codec = self.layout.tf_codec_for(slot)
        probs = self._cond_probs(prefix, tf_idx, context)
        probs = probs * codec.sampling_mask()[None, :]
        probs = probs / probs.sum(axis=1, keepdims=True)
        counts = np.arange(probs.shape[1], dtype=float)
        # Row-local reduction (not a matvec) so the result is independent of
        # how the batch was chunked.
        return (probs * counts[None, :]).sum(axis=1)

    def sample_slot(
        self,
        prefix: np.ndarray,
        slot: int,
        rng: Optional[np.random.Generator] = None,
        context: Optional[np.ndarray] = None,
        draws: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Synthesize the column variables of path slot ``slot``.

        ``prefix`` must already contain all earlier variables (and the
        slot's TF variable if the hop fans out).  Returns the full code
        matrix with the slot filled in.  ``draws`` supplies the
        ``(rows, num_slot_columns)`` sampling uniforms for the
        chunk-invariant runtime path; otherwise ``rng`` is used.
        """
        self._require_fitted()
        start, stop = self.layout.slot_range(slot)
        tf_idx = self.layout.tf_variable_index(slot)
        first_column = start if tf_idx is None else tf_idx + 1
        return self._sample_range(prefix, first_column, stop, rng, context, draws)

    def slot_sample_width(self, slot: int) -> int:
        """Number of variables :meth:`sample_slot` draws for ``slot``."""
        start, stop = self.layout.slot_range(slot)
        tf_idx = self.layout.tf_variable_index(slot)
        first_column = start if tf_idx is None else tf_idx + 1
        return stop - first_column

    def conditional_probs(
        self,
        prefix: np.ndarray,
        variable: int,
        context: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``P(x_variable | earlier variables, context)`` for confidence."""
        self._require_fitted()
        return self._cond_probs(prefix, variable, context)

    def describe(self) -> str:
        return f"{self.kind.upper()}({self.layout.path})"


class CompletionSnapshot(_HopSamplingAPI):
    """Picklable, inference-only view of a fitted completion model.

    Carries the compiled float32 forwards plus the path layout — everything
    the incompleteness join touches and nothing of the autograd module — so
    process workers ship a few kilobytes of snapshotted weights instead of
    the training state.  The compiled runtime is bitwise identical to the
    parent's compiled path (same fixed-tile kernels), which is what keeps
    sharded runs reproducible across backends.
    """

    inference_backend = "compiled"

    def __init__(
        self,
        kind: str,
        layout: PathLayout,
        made,
        tree=None,
        forest: Optional[EvidenceForest] = None,
    ):
        self.kind = kind
        self.layout = layout
        self._made = made
        self._tree = tree
        self._forest = forest

    def _require_fitted(self) -> None:
        pass  # snapshots only exist for fitted models

    def _cond_probs(self, prefix, variable, context):
        return self._made.conditional_probs(prefix, variable, context=context)

    def _sample_range(self, prefix, first_column, stop, rng, context, draws):
        return self._made.sample(
            prefix, first_column, rng,
            context=context, stop_variable=stop, draws=draws,
        )

    def context_for_roots(self, root_rows: np.ndarray) -> Optional[np.ndarray]:
        if self._forest is None:
            return None
        batches = self._forest.batch_for_roots(np.asarray(root_rows, dtype=np.int64))
        return self._tree.forward(batches, len(root_rows))


class _CompletionModelBase(_HopSamplingAPI, Module):
    """Shared plumbing of AR and SSAR completion models."""

    kind = "base"

    def __init__(self, layout: PathLayout, config: Optional[ModelConfig] = None):
        self.layout = layout
        self.config = config or ModelConfig()
        self.train_result: Optional[TrainResult] = None
        self.training_data: Optional[TrainingData] = None
        self._val_indices: Optional[np.ndarray] = None
        self._fitted_from_artifact = False
        # Inference backend: "compiled" (graph-free float32 runtime) or
        # "autograd" (float64 Tensor forward).  Mutable so benchmarks can
        # compare the two on one fitted model.
        self.inference_backend = (
            "compiled" if self.config.compiled_inference else "autograd"
        )
        self._compiled_made = None

    # -- compiled runtime ------------------------------------------------
    @property
    def use_compiled(self) -> bool:
        return self.inference_backend == "compiled"

    def compiled_made(self):
        """The lazily built graph-free MADE snapshot for this model."""
        if self._compiled_made is None:
            self._compiled_made = self.made.compile_inference()
        return self._compiled_made

    def invalidate_compiled(self) -> None:
        """Drop compiled snapshots (parameters changed, e.g. re-``fit``)."""
        self._compiled_made = None

    def inference_snapshot(self) -> CompletionSnapshot:
        """A picklable compiled view of this model for process workers."""
        self._require_fitted()
        return CompletionSnapshot(self.kind, self.layout, self.compiled_made())

    def _cond_probs(
        self, prefix: np.ndarray, variable: int, context: Optional[np.ndarray]
    ) -> np.ndarray:
        """Backend dispatch for ``P(x_variable | earlier, context)``."""
        if self.use_compiled:
            return self.compiled_made().conditional_probs(
                prefix, variable, context=context
            )
        return self.made.conditional_probs(
            prefix, variable, context=self._context_tensor(context)
        )

    def _sample_range(self, prefix, first_column, stop, rng, context, draws):
        if self.use_compiled:
            return self.compiled_made().sample(
                prefix, first_column, rng,
                context=context, stop_variable=stop, draws=draws,
            )
        return self.made.sample(
            prefix, first_column, rng,
            context=self._context_tensor(context), stop_variable=stop,
            draws=draws,
        )

    # -- context hooks (overridden by SSAR) ----------------------------
    def _context_batches(self, indices: np.ndarray):
        """Raw evidence-tree batches for training rows (``(None, 0)`` for AR).

        Shared by both training backends: the autograd path feeds the
        batches through the Tensor tree encoder, the fused path through
        :class:`repro.runtime.training.FusedTreeEncoder`.
        """
        return None, 0

    def _training_context(self, indices: np.ndarray) -> Optional[Tensor]:
        batches, batch_size = self._context_batches(indices)
        if batches is None:
            return None
        return self.tree_encoder(batches, batch_size)

    def _context_tensor(self, context: Optional[np.ndarray]) -> Optional[Tensor]:
        return None if context is None else Tensor(context)

    # -- training -------------------------------------------------------
    def fit(self, warm_start: bool = False) -> TrainResult:
        """Assemble training data from the incomplete database and train.

        The training backend comes from ``config.train.backend``:
        ``"fused"`` (default) runs the hand-derived float32 kernels of
        :mod:`repro.runtime.training`; ``"autograd"`` keeps the float64
        reference engine.  Both produce models with identical parameter
        names and shapes.

        With ``warm_start=True`` training continues from the current
        parameters (incremental fine-tuning after a database mutation):
        the log-marginal output-bias re-initialization is skipped — it
        would clobber the fitted heads — and the result records
        ``warm_start=True``.
        """
        data = assemble_training_data(self.layout)
        if data.num_rows < 8:
            raise ValueError(
                f"path {self.layout.path} yields only {data.num_rows} training rows"
            )
        self.training_data = data
        matrix = data.matrix
        var_weights = self._debias_weights(data)
        if not warm_start:
            self._init_output_bias(matrix, var_weights)

        cfg = self.config.train
        if cfg.backend == "fused":
            from ..runtime.training import FusedTrainStepper

            stepper = FusedTrainStepper(self, matrix, var_weights, cfg)
            result = train(self, data.num_rows, config=cfg, stepper=stepper)
        else:
            def loss_fn(idx: np.ndarray):
                vw = {v: w[idx] for v, w in var_weights.items()}
                return self.made.nll(
                    matrix[idx], context=self._training_context(idx),
                    variable_weights=vw,
                )

            def eval_fn(idx: np.ndarray) -> float:
                ctx = self._training_context(idx)
                return float(
                    self.made.per_example_nll(matrix[idx], context=ctx).mean()
                )

            result = train(self, data.num_rows, loss_fn, eval_fn, cfg)
        result.warm_start = warm_start
        self.train_result = result
        self._val_indices = result.val_indices
        self.invalidate_compiled()
        return result

    def _require_fitted(self) -> None:
        if self.train_result is None and not self._fitted_from_artifact:
            raise RuntimeError("completion model must be fitted first")

    def mark_fitted_from_artifact(
        self, train_result: Optional[TrainResult] = None
    ) -> None:
        """Declare this model fitted with externally restored parameters.

        Used by :mod:`repro.serving.artifacts` after ``load_state_dict``:
        the weights are a trained snapshot, but the training-time state
        (training matrix, validation split) is intentionally not part of an
        artifact, so selection statistics must come from the artifact's
        stored candidate scores rather than be recomputed here.  An optional
        ``train_result`` restores the loss trajectory for provenance.
        """
        self._fitted_from_artifact = True
        if train_result is not None:
            self.train_result = train_result
        self.invalidate_compiled()

    def _init_output_bias(
        self, matrix: np.ndarray, var_weights: Dict[int, np.ndarray]
    ) -> None:
        """Start each output head at the variable's (debiased) marginal.

        Standard practice in the naru lineage [40]: with log-marginal output
        biases, an under-trained conditional degrades gracefully to the
        marginal instead of to uniform — which matters most for the
        tuple-factor heads, whose expectation drives how many tuples the
        incompleteness join synthesizes.  The marginal uses the same
        size-debiasing weights as the loss, so a parent appearing once per
        child does not skew its own TF marginal upward.
        """
        bias = self.made.output_layer.bias
        if bias is None:
            return
        for i, spec in enumerate(self.layout.variables):
            vocab = spec.vocab_size
            weights = var_weights.get(i)
            counts = np.bincount(
                matrix[:, i], weights=weights, minlength=vocab
            ).astype(float)
            probs = (counts + 0.5) / (counts.sum() + 0.5 * vocab)
            start = int(self.made._logit_offsets[i])
            bias.data[start:start + vocab] = np.log(probs)

    def _debias_weights(self, data: TrainingData) -> Dict[int, np.ndarray]:
        """Per-variable training weights undoing join size bias.

        A join row exists once per child combination, so the variables of
        path slot *j* (and the tuple factor entering slot *j*, which belongs
        to the slot *j-1* tuple) would otherwise be learned size-biased:
        parents with many kept children dominate.  Weighting each slot's
        variables by ``1 / multiplicity`` of its distinct tuple combination
        restores per-tuple semantics — in particular E[TF | evidence] becomes
        unbiased, which drives the cardinality correction (Fig. 7b).
        """
        tables = self.layout.path.tables
        weights: Dict[int, np.ndarray] = {}
        slot_weight: Dict[int, np.ndarray] = {}
        # Slot combos are encoded incrementally: the group ids of slots
        # 0..j-1 pair with slot j's row positions to give the ids of slots
        # 0..j, so each slot costs one 1-D unique instead of re-sorting an
        # ever-growing stacked (rows, j) matrix.
        group_ids: Optional[np.ndarray] = None
        for slot, table in enumerate(tables):
            positions = data.row_positions[table]
            if group_ids is None:
                combined = positions
            else:
                combined = group_ids * (int(positions.max(initial=0)) + 1) + positions
            _, group_ids, counts = np.unique(
                combined, return_inverse=True, return_counts=True
            )
            slot_weight[slot] = 1.0 / counts[group_ids]
        for var_idx, spec in enumerate(self.layout.variables):
            if spec.is_tuple_factor:
                weights[var_idx] = slot_weight[spec.slot - 1]
            else:
                weights[var_idx] = slot_weight[spec.slot]
        return weights

    # -- selection criteria ----------------------------------------------
    def target_test_loss(self) -> float:
        """Held-out NLL restricted to the target table's variables (§5).

        This is the paper's basic model-selection signal: if the target
        attributes cannot be predicted from the evidence, this loss stays
        near the marginal entropy and the model should not be trusted.
        """
        self._require_fitted()
        idx = self._val_indices
        ctx = self._training_context(idx)
        per_row = self.made.per_example_nll(
            self.training_data.matrix[idx], context=ctx,
            variables=self.layout.target_variables(),
        )
        return float(per_row.mean())

    def marginal_target_loss(self) -> float:
        """NLL of the empirical per-column marginals on the same held-out rows.

        The gap ``marginal - model`` measures how much signal the evidence
        actually provides (0 gap = unpredictable target, prune the model).
        """
        self._require_fitted()
        matrix = self.training_data.matrix
        idx = self._val_indices
        total = np.zeros(len(idx))
        for var in self.layout.target_variables():
            values = matrix[:, var]
            counts = np.bincount(values, minlength=self.layout.variables[var].vocab_size)
            probs = (counts + 0.5) / (counts.sum() + 0.5 * len(counts))
            total += -np.log(probs[matrix[idx, var]])
        return float(total.mean())

class ARCompletionModel(_CompletionModelBase):
    """Simple autoregressive completion model (paper §3.2)."""

    kind = "ar"

    def __init__(self, layout: PathLayout, config: Optional[ModelConfig] = None):
        super().__init__(layout, config)
        rng = np.random.default_rng(self.config.seed)
        self.made = ResidualMADE(
            layout.vocab_sizes(),
            embed_dim=self.config.embed_dim,
            hidden=tuple(self.config.hidden),
            rng=rng,
        )


class SSARCompletionModel(_CompletionModelBase):
    """Schema-structured autoregressive model with fan-out evidence (§3.3)."""

    kind = "ssar"

    def __init__(
        self,
        layout: PathLayout,
        forest: EvidenceForest,
        config: Optional[ModelConfig] = None,
    ):
        super().__init__(layout, config)
        if not forest.has_walks:
            raise ValueError(
                "SSAR model needs at least one fan-out walk; use AR instead"
            )
        self.forest = forest
        self._compiled_tree = None
        rng = np.random.default_rng(self.config.seed)
        self.tree_encoder = EvidenceTreeEncoder(
            forest.specs(),
            embed_dim=self.config.embed_dim,
            node_dim=self.config.tree_dim,
            rng=rng,
        )
        self.made = ResidualMADE(
            layout.vocab_sizes(),
            embed_dim=self.config.embed_dim,
            hidden=tuple(self.config.hidden),
            rng=rng,
            context_dim=self.tree_encoder.context_dim,
        )

    def _context_batches(self, indices: np.ndarray):
        data = self.training_data
        root_table = self.layout.path.tables[0]
        target_table = self.layout.path.target
        roots = data.row_positions[root_table][indices]
        exclude = None
        if self.forest.self_evidence_table == target_table:
            exclude = data.row_positions[target_table][indices]
        batches = self.forest.batch_for_roots(roots, exclude_target_rows=exclude)
        return batches, len(indices)

    def compiled_tree(self):
        """Lazily built graph-free snapshot of the tree encoder."""
        if self._compiled_tree is None:
            self._compiled_tree = self.tree_encoder.compile_inference()
        return self._compiled_tree

    def invalidate_compiled(self) -> None:
        super().invalidate_compiled()
        self._compiled_tree = None

    def inference_snapshot(self) -> CompletionSnapshot:
        """Snapshot including the compiled tree encoder and the forest."""
        self._require_fitted()
        return CompletionSnapshot(
            self.kind, self.layout, self.compiled_made(),
            tree=self.compiled_tree(), forest=self.forest,
        )

    def context_for_roots(self, root_rows: np.ndarray) -> Optional[np.ndarray]:
        """Inference-time contexts: full trees, no leave-one-out."""
        batches = self.forest.batch_for_roots(np.asarray(root_rows, dtype=np.int64))
        if self.use_compiled:
            return self.compiled_tree().forward(batches, len(root_rows))
        return self.tree_encoder(batches, len(root_rows)).numpy()
