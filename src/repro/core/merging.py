"""Model merging (paper §3.4): share one AR model across completion tasks.

Training one model per (evidence → target) pair is wasteful: a model over
``T3 -> T2 -> T1`` in a fixed order provides both ``p(T1 | T2, T3)`` and
``p(T2 | T3)``.  Two completion tasks can share a model when

* one task's table set is a subset of the other's, and
* a single variable ordering satisfies both: build a directed graph with an
  arc from every evidence table to its completed table; only a cycle-free
  graph admits a consistent (topological) order.

ReStore merges greedily until no non-conflicting merges remain, then trains
one model per merged group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..relational import CompletionPath


@dataclass
class MergedGroup:
    """A set of completion paths served by one trained model.

    ``table_order`` is the topological order all merged paths agree on;
    the model's variable layout follows this order, and each member path
    reads its conditionals from the appropriate suffix.
    """

    paths: List[CompletionPath] = field(default_factory=list)
    table_order: Tuple[str, ...] = ()

    @property
    def tables(self) -> Set[str]:
        return set(self.table_order)

    def __len__(self) -> int:
        return len(self.paths)


def _order_graph(paths: Sequence[CompletionPath]) -> nx.DiGraph:
    """Arcs from evidence tables to completed tables for all paths.

    Along a path every table is completed using all tables before it, so
    each prefix table points at each later table.
    """
    graph = nx.DiGraph()
    for path in paths:
        graph.add_nodes_from(path.tables)
        for i, later in enumerate(path.tables):
            for earlier in path.tables[:i]:
                graph.add_edge(earlier, later)
    return graph


def compatible_order(paths: Sequence[CompletionPath]) -> Optional[Tuple[str, ...]]:
    """A table order serving all paths, or ``None`` if orders conflict."""
    graph = _order_graph(paths)
    if not nx.is_directed_acyclic_graph(graph):
        return None
    return tuple(nx.lexicographical_topological_sort(graph))


def _mergeable(group: MergedGroup, path: CompletionPath) -> bool:
    """Paper's merge condition: subset relationship on the table sets."""
    tables = set(path.tables)
    return tables <= group.tables or group.tables <= tables


def merge_paths(paths: Sequence[CompletionPath]) -> List[MergedGroup]:
    """Greedily merge completion paths into shared-model groups.

    Longer paths are seeded first (they subsume the most sub-paths); each
    remaining path joins the first group whose table set is a super/subset
    and whose combined order graph stays acyclic.  The result covers every
    input path exactly once.
    """
    groups: List[MergedGroup] = []
    for path in sorted(paths, key=lambda p: (-p.length, p.tables)):
        placed = False
        for group in groups:
            if not _mergeable(group, path):
                continue
            order = compatible_order([*group.paths, path])
            if order is None:
                continue
            group.paths.append(path)
            group.table_order = order
            placed = True
            break
        if not placed:
            order = compatible_order([path])
            if order is None:  # pragma: no cover - single path is always a DAG
                raise RuntimeError(f"path {path} has no consistent order")
            groups.append(MergedGroup(paths=[path], table_order=order))
    return groups


def training_savings(paths: Sequence[CompletionPath]) -> Dict[str, int]:
    """How many trainings merging avoids — reported by the Fig. 11 bench."""
    groups = merge_paths(paths)
    return {
        "models_without_merging": len(paths),
        "models_with_merging": len(groups),
        "saved": len(paths) - len(groups),
    }
