"""Fan-out evidence forests for SSAR models.

SSAR completion models (paper §3.3) condition on a *tree* of tuples hanging
off each evidence tuple: 1:n related rows discovered by an acyclic schema
walk, and — for the incomplete target table itself — the already-available
sibling tuples (*self-evidence*).

This module pre-indexes the children of every row (a CSR-style adjacency)
so that per-batch evidence trees can be materialized quickly during both
training and completion.  Self-evidence uses leave-one-out during training:
the tuple being predicted is removed from its own evidence set, otherwise
the model could trivially copy it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..encoding import TableEncoder
from ..nn import TreeNodeBatch, TreeNodeSpec
from ..relational import Database, ForeignKey


@dataclass
class ChildIndex:
    """CSR adjacency from parent rows to child rows along one foreign key."""

    fk: ForeignKey
    child_rows: np.ndarray   # child row positions, grouped by parent
    offsets: np.ndarray      # (num_parents + 1,) start offsets into child_rows

    def children_of(self, parent_row: int) -> np.ndarray:
        return self.child_rows[self.offsets[parent_row]:self.offsets[parent_row + 1]]

    def counts(self) -> np.ndarray:
        return np.diff(self.offsets)


def match_keys(
    parent_keys: np.ndarray,
    refs: np.ndarray,
    key_order: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Row position in ``parent_keys`` for each ref, ``-1`` where unmatched.

    Negative refs (sentinels) never match.  ``key_order`` optionally supplies
    a precomputed stable argsort of ``parent_keys`` so repeated lookups
    against the same table (e.g. chunked joins) skip the sort.
    """
    parent_keys = np.asarray(parent_keys)
    refs = np.asarray(refs)
    if key_order is None:
        key_order = np.argsort(parent_keys, kind="stable")
    if len(parent_keys) == 0:
        return np.full(len(refs), -1, dtype=np.int64)
    sorted_keys = parent_keys[key_order]
    pos = np.clip(np.searchsorted(sorted_keys, refs), 0, len(sorted_keys) - 1)
    matched = (sorted_keys[pos] == refs) & (refs >= 0)
    return np.where(matched, key_order[pos], -1).astype(np.int64)


def build_child_index(db: Database, fk: ForeignKey) -> ChildIndex:
    """Index child rows by parent row position for one relationship."""
    parent = db.table(fk.parent_table)
    child = db.table(fk.child_table)
    parent_rows = match_keys(parent[fk.parent_column], child[fk.child_column])

    valid_children = np.flatnonzero(parent_rows >= 0)
    owner = parent_rows[valid_children]
    order = np.argsort(owner, kind="stable")
    grouped_children = valid_children[order]
    counts = np.bincount(owner, minlength=len(parent))
    offsets = np.concatenate([[0], np.cumsum(counts)])
    return ChildIndex(fk, grouped_children.astype(np.int64), offsets.astype(np.int64))


class EvidenceForest:
    """Walk specs plus child indexes rooted at one evidence table.

    Parameters
    ----------
    db:
        The (incomplete) database the evidence comes from.
    root_table:
        The evidence table the walks start at.
    walks:
        Chains ``(root, child[, grandchild])`` from
        :func:`repro.relational.fan_out_relations`.
    encoders:
        Shared table encoders (the forest reuses the same code space as the
        completion models).
    self_evidence_table:
        Name of the incomplete target table; its walk gets leave-one-out
        handling during training.
    """

    def __init__(
        self,
        db: Database,
        root_table: str,
        walks: Sequence[Tuple[str, ...]],
        encoders: Dict[str, TableEncoder],
        self_evidence_table: Optional[str] = None,
    ):
        self.db = db
        self.root_table = root_table
        self.encoders = encoders
        self.self_evidence_table = self_evidence_table

        # Only keep top-level walks plus their extensions; organize as a tree.
        self.level1: List[Tuple[str, ...]] = [w for w in walks if len(w) == 2]
        self.level2: Dict[str, List[Tuple[str, ...]]] = {}
        for walk in walks:
            if len(walk) == 3:
                self.level2.setdefault(walk[1], []).append(walk)

        self._indexes: Dict[Tuple[str, str], ChildIndex] = {}
        self._encoded: Dict[str, np.ndarray] = {}
        for walk in self.level1:
            self._prepare_edge(walk[0], walk[1])
            for ext in self.level2.get(walk[1], []):
                self._prepare_edge(ext[1], ext[2])

    def _prepare_edge(self, parent: str, child: str) -> None:
        key = (parent, child)
        if key in self._indexes:
            return
        fk = self.db.fk_between(child, parent)
        self._indexes[key] = build_child_index(self.db, fk)
        if child not in self._encoded:
            self._encoded[child] = self.encoders[child].encode_table(self.db.table(child))

    # ------------------------------------------------------------------
    # Specs
    # ------------------------------------------------------------------
    def specs(self) -> List[TreeNodeSpec]:
        """One TreeNodeSpec per top-level fan-out relation."""
        specs = []
        for walk in self.level1:
            child = walk[1]
            children_specs = [
                TreeNodeSpec(
                    name=f"{ext[1]}/{ext[2]}",
                    vocab_sizes=self.encoders[ext[2]].vocab_sizes(),
                )
                for ext in self.level2.get(child, [])
            ]
            specs.append(
                TreeNodeSpec(
                    name=f"{walk[0]}/{child}",
                    vocab_sizes=self.encoders[child].vocab_sizes(),
                    children=children_specs,
                )
            )
        return specs

    @property
    def has_walks(self) -> bool:
        return bool(self.level1)

    def walk_tables(self) -> List[str]:
        """Every table any walk touches (root first, deduplicated)."""
        seen: List[str] = [self.root_table]
        for walk in self.level1 + [w for exts in self.level2.values() for w in exts]:
            for table in walk:
                if table not in seen:
                    seen.append(table)
        return seen

    def rebind(self, db: Database, encoders: Dict[str, TableEncoder]) -> None:
        """Re-anchor the forest on a (possibly mutated) database.

        Child indexes and encoded evidence are precomputed from the
        database at construction, so a plain attribute swap would leave
        them stale; this rebuilds them against the new rows while keeping
        the walk structure (and therefore the model's input layout).
        """
        self.db = db
        self.encoders = encoders
        self._indexes = {}
        self._encoded = {}
        for walk in self.level1:
            self._prepare_edge(walk[0], walk[1])
            for ext in self.level2.get(walk[1], []):
                self._prepare_edge(ext[1], ext[2])

    # ------------------------------------------------------------------
    # Batch materialization
    # ------------------------------------------------------------------
    def batch_for_roots(
        self,
        root_rows: np.ndarray,
        exclude_target_rows: Optional[np.ndarray] = None,
    ) -> Dict[str, TreeNodeBatch]:
        """Evidence trees for a batch of root rows.

        ``exclude_target_rows[i]``, when given, removes that row of the
        self-evidence table from the tree of batch position ``i``
        (leave-one-out for training).
        """
        root_rows = np.asarray(root_rows, dtype=np.int64)
        batches: Dict[str, TreeNodeBatch] = {}
        for walk in self.level1:
            child = walk[1]
            index = self._indexes[(walk[0], child)]
            child_rows, parent_ids = _gather_children(index, root_rows)
            if (
                exclude_target_rows is not None
                and child == self.self_evidence_table
                and len(child_rows)
            ):
                keep = child_rows != np.asarray(exclude_target_rows)[parent_ids]
                child_rows, parent_ids = child_rows[keep], parent_ids[keep]
            node = TreeNodeBatch(
                values=self._encoded[child][child_rows],
                parent_ids=parent_ids,
            )
            for ext in self.level2.get(child, []):
                sub_index = self._indexes[(ext[1], ext[2])]
                sub_rows, sub_parents = _gather_children(sub_index, child_rows)
                node.children[f"{ext[1]}/{ext[2]}"] = TreeNodeBatch(
                    values=self._encoded[ext[2]][sub_rows],
                    parent_ids=sub_parents,
                )
            batches[f"{walk[0]}/{child}"] = node
        return batches


def _gather_children(
    index: ChildIndex, parent_rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Children of each listed parent, plus batch-position parent ids."""
    counts = index.offsets[parent_rows + 1] - index.offsets[parent_rows]
    total = int(counts.sum())
    child_rows = np.empty(total, dtype=np.int64)
    cursor = 0
    for i, parent in enumerate(parent_rows):
        n = int(counts[i])
        if n:
            start = index.offsets[parent]
            child_rows[cursor:cursor + n] = index.child_rows[start:start + n]
            cursor += n
    parent_ids = np.repeat(np.arange(len(parent_rows), dtype=np.int64), counts)
    return child_rows, parent_ids
