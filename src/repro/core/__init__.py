"""ReStore core: completion models, incompleteness join, selection, confidence."""

from .path_data import (
    PathLayout,
    TrainingData,
    VariableSpec,
    assemble_training_data,
    build_encoders,
    build_training_matrix,
)
from .forest import ChildIndex, EvidenceForest, build_child_index
from .models import (
    ARCompletionModel,
    CompletionSnapshot,
    ModelConfig,
    SSARCompletionModel,
)
from .merging import MergedGroup, compatible_order, merge_paths, training_savings
from .incompleteness_join import CompletedJoin, IncompletenessJoin
from .nn_replacement import EuclideanReplacer, TupleSpace
from .selection import (
    BiasDirection,
    CandidateScore,
    SuspectedBias,
    apply_suspected_bias,
    basic_filter,
    rank_by_derived_scenario,
    score_candidates,
)
from .confidence import ConfidenceBand, ConfidenceEstimator, band_for_query
from .progressive import Refinement, SamplingBudget
from .engine import Answer, ReStore, ReStoreConfig

__all__ = [
    "PathLayout",
    "TrainingData",
    "VariableSpec",
    "assemble_training_data",
    "build_training_matrix",
    "build_encoders",
    "ChildIndex",
    "EvidenceForest",
    "build_child_index",
    "ARCompletionModel",
    "SSARCompletionModel",
    "CompletionSnapshot",
    "ModelConfig",
    "MergedGroup",
    "merge_paths",
    "compatible_order",
    "training_savings",
    "CompletedJoin",
    "IncompletenessJoin",
    "EuclideanReplacer",
    "TupleSpace",
    "BiasDirection",
    "SuspectedBias",
    "CandidateScore",
    "score_candidates",
    "basic_filter",
    "rank_by_derived_scenario",
    "apply_suspected_bias",
    "ConfidenceBand",
    "ConfidenceEstimator",
    "band_for_query",
    "Refinement",
    "SamplingBudget",
    "Answer",
    "ReStore",
    "ReStoreConfig",
]
