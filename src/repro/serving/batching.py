"""Admission control and micro-batch collection for the completion service.

The service's front-end is a bounded asyncio queue: submissions beyond
``max_queue`` either wait (backpressure — the caller's coroutine blocks
until capacity frees up) or are rejected immediately with
:class:`ServiceOverloadedError`.  A collector pulls requests off the queue
in *micro-batches*: the first request opens a batch, and the window stays
open for ``window_s`` seconds (or until ``max_batch`` requests arrived).
Batching is what lets the service group concurrent requests by join
signature so one incompleteness join serves all of them.

The batcher never loses a request: if the collector is cancelled while a
batch is being assembled, the partial batch is spilled and handed back by
:meth:`MicroBatcher.drain`, so shutdown can fail those futures explicitly.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.selection import SuspectedBias
from ..query import Query


class ServiceOverloadedError(RuntimeError):
    """The admission queue is full and the caller declined to wait."""


class ServiceClosedError(RuntimeError):
    """The service is not running (never started, or already closed)."""


@dataclass
class ServiceRequest:
    """One submitted query travelling through the service."""

    query: Query
    future: "asyncio.Future"
    enqueued_at: float
    suspected_bias: Optional[SuspectedBias] = None

    def fail(self, exc: BaseException) -> None:
        if not self.future.done():
            self.future.set_exception(exc)

    def succeed(self, result) -> None:
        if not self.future.done():
            self.future.set_result(result)


@dataclass
class MicroBatcher:
    """Bounded admission queue + windowed batch collection."""

    max_queue: int
    max_batch: int
    window_s: float
    _queue: Optional["asyncio.Queue"] = field(default=None, repr=False)
    _spill: List[ServiceRequest] = field(default_factory=list, repr=False)

    def start(self) -> None:
        """Bind the queue to the running event loop (call from the loop)."""
        self._queue = asyncio.Queue(maxsize=self.max_queue)

    @property
    def started(self) -> bool:
        return self._queue is not None

    def qsize(self) -> int:
        return 0 if self._queue is None else self._queue.qsize()

    async def put(self, request: ServiceRequest, wait: bool = True) -> None:
        """Admit a request; full queue ⇒ block (``wait``) or reject."""
        if self._queue is None:
            raise ServiceClosedError("service is not running")
        if wait:
            await self._queue.put(request)
            return
        try:
            self._queue.put_nowait(request)
        except asyncio.QueueFull:
            raise ServiceOverloadedError(
                f"admission queue is full ({self.max_queue} requests); "
                f"retry later or submit with wait=True"
            ) from None

    async def next_batch(self) -> List[ServiceRequest]:
        """Collect one micro-batch (blocks until at least one request).

        Cancellation while a batch is partially collected spills the
        collected requests into :meth:`drain` instead of dropping them.
        """
        assert self._queue is not None
        batch: List[ServiceRequest] = []
        try:
            batch.append(await self._queue.get())
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.window_s
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            return batch
        except asyncio.CancelledError:
            self._spill.extend(batch)
            raise

    def drain(self) -> List[ServiceRequest]:
        """Spilled + still-queued requests, for explicit failure on close."""
        pending = list(self._spill)
        self._spill.clear()
        if self._queue is not None:
            while True:
                try:
                    pending.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
        return pending
