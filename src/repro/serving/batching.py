"""Asyncio front-end adapters: admission queue + micro-batch collection.

The asyncio shell's transport half: a bounded asyncio queue collected in
*micro-batches* (the first request opens a batch, which stays open for
``window_s`` seconds or until ``max_batch`` requests arrived).  The
batching/admission *policy* — window, sizes, what overload means — lives
in the transport-agnostic core (:mod:`repro.serving.core`); this module
only adapts it to an event loop.

The batcher never loses a request: if the collector is cancelled while a
batch is being assembled, the partial batch is spilled and handed back by
:meth:`MicroBatcher.drain`, so shutdown can fail those futures explicitly.

The error classes that used to live here (``ServiceOverloadedError``,
``ServiceClosedError``) moved to :mod:`repro.errors`; the old import paths
keep resolving with a one-time ``DeprecationWarning``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import List, Optional

from .._compat import deprecated_attrs
from ..core.selection import SuspectedBias
from ..errors import (
    ServiceClosedError as _ServiceClosedError,
    ServiceOverloadedError as _ServiceOverloadedError,
)
from ..query import Query


@dataclass
class ServiceRequest:
    """One submitted query travelling through the asyncio shell.

    Duck-type compatible with :class:`repro.serving.core.CoreRequest`
    (query / suspected_bias / enqueued_at / tenant), plus the caller's
    future for transport-side completion.
    """

    query: Query
    future: "asyncio.Future"
    enqueued_at: float
    suspected_bias: Optional[SuspectedBias] = None
    tenant: str = "default"

    def fail(self, exc: BaseException) -> None:
        if not self.future.done():
            self.future.set_exception(exc)

    def succeed(self, result) -> None:
        if not self.future.done():
            self.future.set_result(result)


@dataclass
class MicroBatcher:
    """Bounded admission queue + windowed batch collection (asyncio)."""

    max_queue: int
    max_batch: int
    window_s: float
    _queue: Optional["asyncio.Queue"] = field(default=None, repr=False)
    _spill: List[ServiceRequest] = field(default_factory=list, repr=False)

    def start(self) -> None:
        """Bind the queue to the running event loop (call from the loop)."""
        self._queue = asyncio.Queue(maxsize=self.max_queue)

    @property
    def started(self) -> bool:
        return self._queue is not None

    def qsize(self) -> int:
        return 0 if self._queue is None else self._queue.qsize()

    async def put(self, request: ServiceRequest, wait: bool = True) -> None:
        """Admit a request; full queue ⇒ block (``wait``) or reject."""
        if self._queue is None:
            raise _ServiceClosedError("service is not running")
        if wait:
            await self._queue.put(request)
            return
        try:
            self._queue.put_nowait(request)
        except asyncio.QueueFull:
            raise _ServiceOverloadedError(
                f"admission queue is full ({self.max_queue} requests); "
                f"retry later or submit with wait=True"
            ) from None

    async def next_batch(self) -> List[ServiceRequest]:
        """Collect one micro-batch (blocks until at least one request).

        Cancellation while a batch is partially collected spills the
        collected requests into :meth:`drain` instead of dropping them.
        """
        assert self._queue is not None
        batch: List[ServiceRequest] = []
        try:
            batch.append(await self._queue.get())
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.window_s
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            return batch
        except asyncio.CancelledError:
            self._spill.extend(batch)
            raise

    def drain(self) -> List[ServiceRequest]:
        """Spilled + still-queued requests, for explicit failure on close."""
        pending = list(self._spill)
        self._spill.clear()
        if self._queue is not None:
            while True:
                try:
                    pending.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
        return pending


__getattr__ = deprecated_attrs(__name__, {
    "ServiceOverloadedError": "repro.errors",
    "ServiceClosedError": "repro.errors",
})
