"""The transport-agnostic serving core.

:class:`ServingCore` is the synchronous brain every serving shell wraps:
pure request-in/answer-out over one fitted engine, owning the four
behaviours that make ReStore's train-once / query-many story scale —

* **admission & backpressure** — :class:`AdmissionGate` bounds the number
  of in-service requests; waiting is expressed as a *grant callback*, so
  a thread can block on it, an event loop can await it, and a wire shell
  can map it to an overload frame, all against one policy object;
* **micro-batching** — batch accounting plus :class:`SyncMicroBatcher`, a
  ``queue.Queue``-backed window collector for thread-driven shells (the
  asyncio shell keeps its own awaitable collector, same policy knobs);
* **join-signature grouping & single-flight** — a batch is partitioned by
  the engine's join signature and at most one incompleteness join per
  signature is ever in flight, fleet-ready because the bookkeeping is
  plain ``threading`` primitives;
* **stats** — latency percentiles, batch/coalescing counters, progressive
  metrics; one truthful :meth:`ServingCore.stats` shared by every shell.

This module imports **no asyncio** (a unit test enforces it).  The thin
shells live next door: :class:`repro.serving.CompletionService` (asyncio),
:class:`repro.serving.ServiceWorker` (process + wire protocol) and
:class:`repro.serving.FleetRouter` (multi-worker fan-out).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.engine import Answer, ReStore
from ..core.models import _CompletionModelBase
from ..core.progressive import Refinement, SamplingBudget
from ..core.selection import SuspectedBias
from ..errors import (
    ConfigurationError,
    ServiceOverloadedError,
)
from ..obs import activate, current_context, get_logger, trace
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TraceContext
from ..query import Query, parse_query, validate_query_columns

QueryLike = Union[str, Query]

#: Terminal marker a progressive subscriber receives after the last
#: refinement of a successful flight (errors are delivered as themselves).
FLIGHT_DONE = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs shared by every serving shell over one core."""

    max_queue: int = 64          #: in-service request bound (backpressure beyond it)
    max_batch: int = 16          #: requests per micro-batch, at most
    batch_window_ms: float = 2.0  #: how long a batch stays open to fill up
    n_workers: int = 2           #: completion worker threads
    latency_window: int = 2048   #: latency samples kept for the percentiles

    def __post_init__(self) -> None:
        for name in ("max_queue", "max_batch", "n_workers", "latency_window"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigurationError(
                    f"ServiceConfig.{name} must be an integer, got {value!r}"
                )
            if value < 1:
                raise ConfigurationError(
                    f"ServiceConfig.{name} must be >= 1, got {value}"
                )
        # `not >= 0` (instead of `< 0`) also rejects NaN.
        if not self.batch_window_ms >= 0:
            raise ConfigurationError(
                f"ServiceConfig.batch_window_ms must be a number >= 0, "
                f"got {self.batch_window_ms!r}"
            )

    @property
    def batch_window_s(self) -> float:
        return self.batch_window_ms / 1000.0


@dataclass
class ServiceStats:
    """A point-in-time snapshot of serving behaviour."""

    requests: int
    completed: int
    failed: int
    rejected: int
    queued: int
    batches: int
    mean_batch_size: float
    max_batch_size: int
    joins_started: int
    coalesced_requests: int
    p50_latency_ms: float
    p95_latency_ms: float
    cache: dict
    progressive: dict
    partial_cache: dict
    swaps: int = 0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "queued": self.queued,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "joins_started": self.joins_started,
            "coalesced_requests": self.coalesced_requests,
            "p50_latency_ms": self.p50_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "cache": dict(self.cache),
            "progressive": dict(self.progressive),
            "partial_cache": dict(self.partial_cache),
            "swaps": self.swaps,
        }


@dataclass
class _Counters:
    requests: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    batches: int = 0
    joins_started: int = 0
    coalesced_requests: int = 0
    progressive_queries: int = 0
    progressive_flights: int = 0
    progressive_coalesced: int = 0
    refinements_emitted: int = 0
    swaps: int = 0


@dataclass
class CoreRequest:
    """One query travelling through the core (shells add transport state)."""

    query: Query
    enqueued_at: float
    suspected_bias: Optional[SuspectedBias] = None
    tenant: str = "default"
    #: trace context of the submitter — contextvars do not flow into pool
    #: threads, so the context rides on the request and ``serve_group``
    #: re-activates it around the engine call.
    trace_ctx: Optional[TraceContext] = None


class AdmissionGate:
    """Bounded in-service admission with FIFO slot handoff.

    Transport-agnostic: :meth:`acquire` without a callback blocks the
    calling thread; with a *grant* callback the slot is handed over
    asynchronously (possibly immediately, from the caller's own frame, or
    later from whichever thread releases a slot).  Shells translate the
    callback into their native waiting primitive.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(
                f"AdmissionGate capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        self._lock = threading.Lock()
        self._in_service = 0
        self._waiters: deque = deque()

    @property
    def capacity(self) -> int:
        return self._capacity

    def in_service(self) -> int:
        with self._lock:
            return self._in_service

    def try_acquire(self) -> bool:
        """Take a slot if one is free right now (never queues)."""
        with self._lock:
            if self._in_service < self._capacity and not self._waiters:
                self._in_service += 1
                return True
            return False

    def acquire(self, grant: Optional[Callable[[], None]] = None) -> None:
        """Take a slot, waiting FIFO behind earlier waiters.

        Without ``grant`` the calling thread blocks until the slot is
        held.  With ``grant``, the callback fires exactly once when the
        slot is held — from this frame if a slot is free, else from the
        releasing thread.
        """
        if grant is None:
            event = threading.Event()
            self.acquire(event.set)
            event.wait()
            return
        with self._lock:
            if self._in_service < self._capacity and not self._waiters:
                self._in_service += 1
            else:
                self._waiters.append(grant)
                grant = None
        if grant is not None:
            grant()

    def release(self) -> None:
        """Free a slot; a queued waiter (FIFO) inherits it directly."""
        with self._lock:
            if self._waiters:
                grant = self._waiters.popleft()
            else:
                grant = None
                self._in_service -= 1
                if self._in_service < 0:
                    self._in_service = 0
        if grant is not None:
            grant()


class SyncMicroBatcher:
    """Windowed micro-batch collection on a plain ``queue.Queue``.

    The thread-driven twin of the asyncio batcher: the first request opens
    a batch, which stays open for ``window_s`` seconds or until
    ``max_batch`` requests arrived.  :meth:`stop` lets the collector drain
    what is queued and then end (``next_batch`` returns ``None``) — no
    request is ever dropped.
    """

    def __init__(self, max_queue: int, max_batch: int, window_s: float):
        self.max_batch = max_batch
        self.window_s = window_s
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_queue)
        self._stopped = threading.Event()

    def qsize(self) -> int:
        return self._queue.qsize()

    def put(self, request, wait: bool = True) -> None:
        """Admit a request; full queue ⇒ block (``wait``) or reject."""
        try:
            self._queue.put(request, block=wait)
        except queue.Full:
            raise ServiceOverloadedError(
                f"admission queue is full ({self._queue.maxsize} requests); "
                f"retry later or submit with wait=True"
            ) from None

    def next_batch(self, poll_s: float = 0.05) -> Optional[List]:
        """Collect one micro-batch; ``None`` once stopped and drained."""
        while True:
            try:
                first = self._queue.get(timeout=poll_s)
                break
            except queue.Empty:
                if self._stopped.is_set():
                    return None
        batch = [first]
        deadline = time.monotonic() + self.window_s
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

    def stop(self) -> None:
        self._stopped.set()


class _InflightJoin:
    """Single-flight record: followers wait on the leader's event."""

    __slots__ = ("event", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.error: Optional[BaseException] = None


class ProgressiveFlight:
    """One in-flight progressive run shared by coalesced subscribers.

    Synchronous and lock-ordered: :meth:`subscribe` replays the
    refinements already emitted and registers a ``deliver`` callback under
    the same lock publications take, so every subscriber observes the one
    true sequence — refinements in order, then :data:`FLIGHT_DONE` (or the
    flight's exception) exactly once.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.history: List[Refinement] = []
        self._subscribers: List[Callable[[object], None]] = []
        self.done = False
        self.error: Optional[BaseException] = None

    def subscribe(self, deliver: Callable[[object], None]) -> None:
        with self._lock:
            for refinement in self.history:
                deliver(refinement)
            if self.done:
                deliver(self.error if self.error is not None else FLIGHT_DONE)
            else:
                self._subscribers.append(deliver)

    def publish(self, refinement: Refinement) -> None:
        with self._lock:
            self.history.append(refinement)
            for deliver in self._subscribers:
                deliver(refinement)

    def finish(self, error: Optional[BaseException]) -> None:
        with self._lock:
            self.done = True
            self.error = error
            sentinel = error if error is not None else FLIGHT_DONE
            for deliver in self._subscribers:
                deliver(sentinel)
            self._subscribers.clear()


class ServingCore:
    """Synchronous, transport-agnostic serving over one fitted engine.

    Pure request-in/answer-out: :meth:`submit` answers one query with
    admission control; :meth:`serve_batch` answers a whole micro-batch
    with join-signature grouping and single-flight coalescing.  Shells
    that bring their own concurrency call the pieces directly —
    :meth:`prepare` / :meth:`group` on their front-end,
    :meth:`serve_group` from worker threads — and every path lands in the
    same counters, so :meth:`stats` is truthful no matter which transport
    drove the work.

    Thread-safe throughout; contains no event loop and no asyncio.
    """

    def __init__(
        self,
        engine: ReStore,
        config: Optional[ServiceConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.engine = engine
        self.config = config or ServiceConfig()
        self.clock = clock
        self.gate = AdmissionGate(self.config.max_queue)
        self._lock = threading.Lock()
        self._counters = _Counters()
        # Per-instance registry: the core's latency/batch/utilization
        # distributions live here (one percentile implementation for every
        # stats surface), and the engine's caches report through collectors.
        window = self.config.latency_window
        self.metrics = MetricsRegistry()
        self._latency_hist = self.metrics.histogram("serving.latency_ms", window)
        self._batch_hist = self.metrics.histogram("serving.batch_size", window)
        self._utilization_hist = self.metrics.histogram(
            "serving.budget_utilization", window
        )
        self._register_cache_collectors()
        self._log = get_logger("serving.core")
        self._join_lock = threading.Lock()
        self._inflight_joins: Dict[Tuple, _InflightJoin] = {}
        self._flight_lock = threading.Lock()
        self._progressive_flights: Dict[Tuple, ProgressiveFlight] = {}
        self._swap_lock = threading.Lock()

    def _register_cache_collectors(self) -> None:
        """(Re-)point the cache collectors at the current engine's caches —
        called at construction and after every hot swap."""
        self.engine.join_cache.register_metrics(self.metrics, "join_cache")
        self.engine.partial_cache.register_metrics(self.metrics, "partial_cache")

    # ------------------------------------------------------------------
    # Front-end pieces (validation, admission, accounting)
    # ------------------------------------------------------------------
    def prepare(self, query: QueryLike) -> Query:
        """Parse (if SQL) and validate one query; errors name candidates."""
        if isinstance(query, str):
            query = parse_query(query)
        validate_query_columns(self.engine.db, query)
        return query

    def count_request(self) -> None:
        with self._lock:
            self._counters.requests += 1

    def count_rejected(self) -> None:
        with self._lock:
            self._counters.rejected += 1

    def count_failed(self, n: int = 1) -> None:
        with self._lock:
            self._counters.failed += n

    def record_batch(self, size: int) -> None:
        with self._lock:
            self._counters.batches += 1
        self._batch_hist.observe(size)

    def overloaded_error(self) -> ServiceOverloadedError:
        return ServiceOverloadedError(
            f"{self.config.max_queue} requests already in service; "
            f"retry later or submit with wait=True"
        )

    # ------------------------------------------------------------------
    # Routing and grouping
    # ------------------------------------------------------------------
    def route(self, request: CoreRequest) -> Tuple[Optional[_CompletionModelBase], Tuple]:
        """Model selection → (model, join signature) for one request.

        Must stay cheap (shells may call it on their event loop): plain
        selection is a ranked-list lookup.  *Suspected-bias* selection
        evaluates candidate aggregates on completed joins — real
        completion work — so those requests get a private group and the
        biased selection runs where the group is served.
        """
        engine = self.engine
        incomplete = [
            t for t in request.query.tables
            if not engine.annotation.is_complete(t)
        ]
        if not incomplete:
            # Complete-only queries share a per-table-set signature so they
            # batch together, but they never run an incompleteness join.
            return None, ("__complete__", tuple(sorted(request.query.tables)))
        if request.suspected_bias is not None:
            return None, ("__bias__", id(request))
        target = engine._primary_target(incomplete)
        choice = engine.select_model(target, query=request.query)
        return choice.model, engine.join_signature(choice.model)

    def group(self, batch: List) -> Tuple[Dict[Tuple, Tuple[Optional[_CompletionModelBase], List]], List[Tuple[object, BaseException]]]:
        """Partition a batch by join signature (selection runs here).

        Returns ``(groups, failures)``: requests whose routing raised are
        counted failed and returned for the shell to dispose of.
        """
        groups: Dict[Tuple, Tuple[Optional[_CompletionModelBase], List]] = {}
        failures: List[Tuple[object, BaseException]] = []
        for request in batch:
            try:
                model, signature = self.route(request)
            except BaseException as exc:  # selection errors belong to the caller
                self.count_failed()
                failures.append((request, exc))
                continue
            groups.setdefault(signature, (model, []))[1].append(request)
        return groups, failures

    # ------------------------------------------------------------------
    # Single-flight joins and group serving
    # ------------------------------------------------------------------
    def _ensure_join(
        self,
        signature: Tuple,
        model: _CompletionModelBase,
        group_size: int,
        engine: Optional[ReStore] = None,
    ) -> None:
        """Single-flight: one incompleteness join per signature, ever.

        The first arriver becomes the *leader* and computes the join in
        its own thread; later groups (from any shell thread) wait on the
        leader's event and share its outcome.  Once the join lands in the
        engine's cache nobody computes it again.  ``engine`` pins the
        engine the caller routed against (hot-swap consistency).
        """
        if engine is None:
            engine = self.engine
        with self._join_lock:
            flight = self._inflight_joins.get(signature)
            if flight is None:
                if engine.join_cache.contains(signature):
                    # An ordinary cache hit, counted by the cache stats.
                    return
                flight = _InflightJoin()
                self._inflight_joins[signature] = flight
                leader = True
                with self._lock:
                    self._counters.joins_started += 1
                    self._counters.coalesced_requests += group_size - 1
            else:
                leader = False
                with self._lock:
                    self._counters.coalesced_requests += group_size
        if leader:
            with trace(
                "serve.single_flight", role="leader", group_size=group_size
            ):
                try:
                    engine.completed_join(model)
                except BaseException as exc:
                    flight.error = exc
                    raise
                finally:
                    with self._join_lock:
                        self._inflight_joins.pop(signature, None)
                    flight.event.set()
            return
        with trace(
            "serve.single_flight", role="follower", group_size=group_size
        ):
            flight.event.wait()
        if flight.error is not None:
            raise flight.error

    def serve_group(
        self,
        model: Optional[_CompletionModelBase],
        requests: List,
        signature: Optional[Tuple] = None,
    ) -> List:
        """Answer one signature group against its (single-flight) join.

        Returns one entry per request, aligned: an :class:`Answer` or the
        exception that request failed with.  Counters and latency samples
        are recorded here, so every shell reports identically.

        The engine reference is snapshotted once on entry: a concurrent
        :meth:`hot_swap` never splits one group across two engines.
        """
        engine = self.engine
        # The group span (and the single-flight span under it) attaches to
        # the first traced requester — pool threads have no ambient context.
        group_ctx = next(
            (r.trace_ctx for r in requests
             if getattr(r, "trace_ctx", None) is not None),
            current_context(),
        )
        with activate(group_ctx):
            with trace("serve.group", group_size=len(requests)):
                if model is not None and signature is not None:
                    try:
                        self._ensure_join(signature, model, len(requests), engine)
                    except BaseException as exc:
                        self.count_failed(len(requests))
                        return [exc] * len(requests)
                results: List = []
                for request in requests:
                    try:
                        answer = self._answer_request(engine, model, request)
                    except BaseException as exc:
                        self.count_failed()
                        results.append(exc)
                    else:
                        now = self.clock()
                        with self._lock:
                            self._counters.completed += 1
                        self._latency_hist.observe(
                            (now - request.enqueued_at) * 1000.0
                        )
                        results.append(answer)
                return results

    def _answer_request(
        self, engine: ReStore, model: Optional[_CompletionModelBase], request
    ) -> Answer:
        """One request's engine call, under the request's own trace context."""
        ctx = getattr(request, "trace_ctx", None)
        with activate(ctx if ctx is not None else current_context()):
            if model is None:
                return engine.answer(
                    request.query, suspected_bias=request.suspected_bias
                )
            return engine.answer(request.query, model=model)

    def serve_batch(self, requests: List) -> List:
        """Group and answer one micro-batch; results align with ``requests``.

        The fully synchronous path (direct use, tests, simple shells);
        shells with their own worker pools fan the groups out themselves.
        """
        self.record_batch(len(requests))
        results: List = [None] * len(requests)
        position = {id(r): i for i, r in enumerate(requests)}
        groups, failures = self.group(requests)
        for request, exc in failures:
            results[position[id(request)]] = exc
        for signature, (model, members) in groups.items():
            for request, outcome in zip(
                members, self.serve_group(model, members, signature)
            ):
                results[position[id(request)]] = outcome
        return results

    def submit(
        self,
        query: QueryLike,
        suspected_bias: Optional[SuspectedBias] = None,
        wait: bool = True,
        tenant: str = "default",
    ) -> Answer:
        """Pure request-in/answer-out: admit, serve, account, return.

        With ``wait=False`` a full admission gate raises
        :class:`~repro.errors.ServiceOverloadedError` instead of blocking.
        """
        with trace("serve.submit", tenant=tenant):
            query = self.prepare(query)
            self.count_request()
            if not self.gate.try_acquire():
                if not wait:
                    self.count_rejected()
                    raise self.overloaded_error()
                self.gate.acquire()
            try:
                request = CoreRequest(
                    query=query,
                    enqueued_at=self.clock(),
                    suspected_bias=suspected_bias,
                    tenant=tenant,
                    trace_ctx=current_context(),
                )
                [result] = self.serve_batch([request])
            finally:
                self.gate.release()
            if isinstance(result, BaseException):
                raise result
            return result

    # ------------------------------------------------------------------
    # Hot swap (zero-downtime engine replacement)
    # ------------------------------------------------------------------
    def hot_swap(self, artifact_path) -> dict:
        """Replace the serving engine with one loaded from ``artifact_path``.

        The replacement is fully loaded and validated *before* anything is
        swapped, so a corrupt or incompatible artifact raises its taxonomy
        error (:class:`~repro.errors.ArtifactError` and friends) and the
        old engine keeps serving untouched.  The swap itself is one
        reference assignment: requests already routed against the old
        engine finish on it (its caches and models stay alive as long as
        any group holds them), while every request prepared after the swap
        sees the new engine.  Serialized under a lock so concurrent swaps
        cannot interleave.
        """
        from .artifacts import read_manifest

        with trace("serve.hot_swap") as span:
            new_engine = ReStore.load(artifact_path)
            manifest = read_manifest(artifact_path)
            with self._swap_lock:
                old_engine = self.engine
                self.engine = new_engine
                self._register_cache_collectors()
                with self._lock:
                    self._counters.swaps += 1
            span.set("scenario", manifest.get("scenario"))
            self._log.info(
                "core.swap",
                artifact=str(artifact_path),
                scenario=manifest.get("scenario"),
                previous=getattr(old_engine, "scenario_name", None),
            )
        return {
            "artifact_path": str(artifact_path),
            "database_digest": manifest.get("database_digest"),
            "scenario": manifest.get("scenario"),
            "num_models": sum(
                len(scores) for scores in new_engine._candidates.values()
            ),
            "previous_scenario": getattr(old_engine, "scenario_name", None),
            "lineage": manifest.get("lineage"),
        }

    # ------------------------------------------------------------------
    # Progressive flights (single-flight refinement streams)
    # ------------------------------------------------------------------
    def progressive_key(
        self,
        query: Query,
        budget: SamplingBudget,
        suspected_bias: Optional[SuspectedBias],
    ) -> Tuple:
        return (repr(query), repr(suspected_bias), budget)

    def open_progressive(self, key: Tuple) -> Tuple[ProgressiveFlight, bool]:
        """Join (or start) the flight for ``key``; returns (flight, created).

        When ``created`` is true the caller owns driving the flight —
        typically by running :meth:`drive_progressive` on a worker thread.
        """
        with self._flight_lock:
            flight = self._progressive_flights.get(key)
            created = flight is None
            if created:
                flight = ProgressiveFlight()
                self._progressive_flights[key] = flight
        with self._lock:
            self._counters.progressive_queries += 1
            if created:
                self._counters.progressive_flights += 1
            else:
                self._counters.progressive_coalesced += 1
        return flight, created

    def drive_progressive(
        self,
        key: Tuple,
        flight: ProgressiveFlight,
        query: Query,
        budget: SamplingBudget,
        suspected_bias: Optional[SuspectedBias],
    ) -> None:
        """Leader body: run the engine's refinement loop and publish.

        Deregisters the flight *before* finishing it, so a subscriber that
        arrives after the final refinement starts a fresh flight instead
        of replaying a dead one.
        """
        last: Optional[Refinement] = None
        error: Optional[BaseException] = None
        try:
            for refinement in self.engine.answer_progressive(
                query, budget=budget, suspected_bias=suspected_bias
            ):
                last = refinement
                with self._lock:
                    self._counters.refinements_emitted += 1
                flight.publish(refinement)
        except BaseException as exc:
            error = exc
        if last is not None:
            self._utilization_hist.observe(last.budget_utilization)
        with self._flight_lock:
            self._progressive_flights.pop(key, None)
        flight.finish(error)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self, queued: int = 0) -> ServiceStats:
        """Latency percentiles, batching/coalescing counters, cache and
        progressive-refinement metrics; ``queued`` is supplied by the
        shell that owns the front-end queue."""
        with self._lock:
            counters = _Counters(**vars(self._counters))
        sizes = self._batch_hist.values()
        flights = counters.progressive_flights
        progressive = {
            "queries": counters.progressive_queries,
            "flights": flights,
            "coalesced_queries": counters.progressive_coalesced,
            "refinements_emitted": counters.refinements_emitted,
            "mean_refinements_per_flight": (
                counters.refinements_emitted / flights if flights else 0.0
            ),
            "mean_budget_utilization": self._utilization_hist.mean(),
        }
        return ServiceStats(
            requests=counters.requests,
            completed=counters.completed,
            failed=counters.failed,
            rejected=counters.rejected,
            queued=queued,
            batches=counters.batches,
            mean_batch_size=float(np.mean(sizes)) if sizes else 0.0,
            max_batch_size=int(max(sizes)) if sizes else 0,
            joins_started=counters.joins_started,
            coalesced_requests=counters.coalesced_requests,
            p50_latency_ms=self._latency_hist.percentile(50),
            p95_latency_ms=self._latency_hist.percentile(95),
            cache=self.engine.cache_stats.as_dict(),
            progressive=progressive,
            partial_cache=self.engine.partial_cache_stats.as_dict(),
            swaps=counters.swaps,
        )
