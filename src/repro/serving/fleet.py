"""Multi-worker completion fleet: consistent-hash routing over workers.

:class:`FleetRouter` scales the serving tier the way the join executors
already scale — by process fan-out.  It spawns ``n_workers``
:class:`~repro.serving.ServiceWorker` processes from **one** versioned
artifact, connects to each over the length-prefixed wire protocol, and
routes every query by its **join signature** on a consistent-hash ring:

* *cold* completion work always lands on the *same* worker, so the
  core's single-flight coalescing keeps working **fleet-wide** — N
  identical concurrent queries still produce exactly one incompleteness
  join, on exactly one worker (the fleet benchmark proves it);
* once a signature is *warm* (answered at least once) affinity stops
  paying — the join replicates into each worker's cache at bounded cost
  — so warm completion traffic spreads by query identity and the whole
  fleet answers in parallel;
* complete-only queries (no incompleteness join, nothing to coalesce)
  always spread by query identity, keeping the ring balanced.

Overload policy: the router keeps at most ``max_pending`` requests
backlogged (queued + on the wire).  Beyond that it **sheds the oldest
queued** request — fresh interactive queries are worth more than stale
ones — failing it with :class:`~repro.errors.ServiceOverloadedError`.
Per-tenant quotas bound how much of the backlog one tenant may hold;
quota violations reject the *newcomer* instead of shedding others.

``stats()`` aggregates per-worker snapshots (p50/p95, joins, coalescing)
with the router's own end-to-end latency percentiles into one
:class:`FleetStats`; after :meth:`FleetRouter.close`, the workers' final
``bye`` snapshots remain available as :attr:`final_worker_stats`.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import multiprocessing
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.engine import Answer, ReStore
from ..core.selection import SuspectedBias
from ..errors import (
    ConfigurationError,
    ProtocolError,
    ServiceClosedError,
    ServiceOverloadedError,
    WorkerError,
)
from ..obs import current_context, get_logger, get_tracer, trace
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TraceContext
from ..query import Query, parse_query, validate_query_columns
from ..runtime.parallel import _default_start_method
from .core import QueryLike, ServiceConfig
from .protocol import (
    HEADER,
    decode_payload,
    encode_frame,
    frame_length,
    raise_wire_error,
)
from .worker import worker_main

__all__ = ["FleetRouter", "FleetConfig", "FleetStats", "ConsistentHashRing"]


@dataclass(frozen=True)
class FleetConfig:
    """Tuning knobs of one :class:`FleetRouter`."""

    n_workers: int = 2            #: worker processes spawned from the artifact
    max_pending: int = 1024       #: fleet-wide backlog bound (shed beyond it)
    dispatch_window: int = 32     #: per-worker requests on the wire at once
    tenant_quota: Optional[int] = None  #: per-tenant backlog bound (None = off)
    virtual_nodes: int = 64       #: ring vnodes per worker (routing smoothness)
    connect_timeout_s: float = 180.0    #: worker spawn/connect readiness deadline
    latency_window: int = 8192    #: router-side latency samples kept
    worker: ServiceConfig = field(default_factory=ServiceConfig)

    def __post_init__(self) -> None:
        for name in ("n_workers", "max_pending", "dispatch_window",
                     "virtual_nodes", "latency_window"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigurationError(
                    f"FleetConfig.{name} must be an integer, got {value!r}"
                )
            if value < 1:
                raise ConfigurationError(
                    f"FleetConfig.{name} must be >= 1, got {value}"
                )
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise ConfigurationError(
                f"FleetConfig.tenant_quota must be >= 1 or None, "
                f"got {self.tenant_quota}"
            )
        if not self.connect_timeout_s > 0:
            raise ConfigurationError(
                f"FleetConfig.connect_timeout_s must be > 0, "
                f"got {self.connect_timeout_s!r}"
            )
        if self.dispatch_window > self.worker.max_queue:
            raise ConfigurationError(
                f"FleetConfig.dispatch_window ({self.dispatch_window}) must "
                f"not exceed the worker's max_queue ({self.worker.max_queue}) "
                f"or workers would reject dispatched requests as overload"
            )


class ConsistentHashRing:
    """A classic consistent-hash ring with virtual nodes.

    Deterministic (sha1, no process salt), so every router instance maps
    the same key to the same worker; removing a node only remaps the keys
    that lived on it.
    """

    def __init__(self, nodes: Sequence[int], virtual_nodes: int = 64):
        if virtual_nodes < 1:
            raise ConfigurationError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}"
            )
        self.virtual_nodes = virtual_nodes
        self._hashes: List[int] = []
        self._owners: List[int] = []
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.sha1(value.encode("utf-8")).digest()[:8], "big"
        )

    def add(self, node: int) -> None:
        for vnode in range(self.virtual_nodes):
            point = self._hash(f"node:{node}:{vnode}")
            index = bisect.bisect(self._hashes, point)
            self._hashes.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: int) -> None:
        keep = [(h, o) for h, o in zip(self._hashes, self._owners) if o != node]
        self._hashes = [h for h, _ in keep]
        self._owners = [o for _, o in keep]

    def node_for(self, key: str) -> int:
        if not self._hashes:
            raise WorkerError("consistent-hash ring is empty (no workers)")
        point = self._hash(key)
        index = bisect.bisect(self._hashes, point) % len(self._hashes)
        return self._owners[index]


@dataclass
class FleetStats:
    """One aggregated snapshot: router counters + per-worker cores."""

    workers: int
    requests: int
    completed: int
    failed: int
    shed: int
    rejected: int
    queued: int
    inflight: int
    p50_latency_ms: float          #: router-observed, end to end
    p95_latency_ms: float
    joins_started: int             #: summed across workers
    coalesced_requests: int        #: summed across workers
    per_worker: List[dict]         #: each worker core's stats().as_dict()

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "rejected": self.rejected,
            "queued": self.queued,
            "inflight": self.inflight,
            "p50_latency_ms": self.p50_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "joins_started": self.joins_started,
            "coalesced_requests": self.coalesced_requests,
            "worker_p50_latency_ms": [
                w.get("p50_latency_ms", 0.0) for w in self.per_worker
            ],
            "worker_p95_latency_ms": [
                w.get("p95_latency_ms", 0.0) for w in self.per_worker
            ],
            "per_worker": [dict(w) for w in self.per_worker],
        }


@dataclass
class _Pending:
    """One routed request while it waits for its worker's answer."""

    request_id: int
    query: Query
    tenant: str
    future: "asyncio.Future"
    enqueued_at: float
    suspected_bias: Optional[SuspectedBias] = None
    signature: Optional[Tuple] = None  #: join signature, for warm-marking
    trace_ctx: Optional[TraceContext] = None  #: submitter's trace context


class _WorkerClient:
    """Router-side state for one worker process."""

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.reader: Optional["asyncio.StreamReader"] = None
        self.writer: Optional["asyncio.StreamWriter"] = None
        self.reader_task: Optional["asyncio.Task"] = None
        self.queue: deque = deque()          # routed, not yet on the wire
        self.inflight: Dict[int, _Pending] = {}
        self.stats_waiters: Dict[int, "asyncio.Future"] = {}
        self.swap_waiters: Dict[int, "asyncio.Future"] = {}
        self.bye_future: Optional["asyncio.Future"] = None
        self.final_stats: Optional[dict] = None
        self.alive = False

    def backlog(self) -> int:
        return len(self.queue) + len(self.inflight)


async def _read_frame(reader: "asyncio.StreamReader") -> Optional[dict]:
    try:
        header = await reader.readexactly(HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    length = frame_length(header)
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError) as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_payload(payload)


class _RouterCounters:
    __slots__ = ("requests", "completed", "failed", "shed", "rejected")

    def __init__(self) -> None:
        self.requests = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.rejected = 0


class FleetRouter:
    """Serve one artifact from N worker processes behind one ``submit``.

    Use as an async context manager::

        async with FleetRouter("artifacts/housing-h1",
                               FleetConfig(n_workers=4)) as fleet:
            answer = await fleet.submit("SELECT AVG(price) FROM apartment;")

    The router loads the artifact once itself — **routing metadata only**
    (schema annotation + §5 candidate rankings for join signatures); it
    never runs completion work.  Answers come back with worker-side
    provenance stripped (``answer.model`` / ``answer.completed`` are
    ``None``); results, completion flags and pushdown profiles survive
    the wire intact.
    """

    def __init__(
        self,
        artifact_path,
        config: Optional[FleetConfig] = None,
        config_overrides: Optional[dict] = None,
    ):
        self.artifact_path = Path(artifact_path)
        self.config = config or FleetConfig()
        self.config_overrides = config_overrides
        self._workers: List[_WorkerClient] = []
        self._ring: Optional[ConsistentHashRing] = None
        self._routing_engine: Optional[ReStore] = None
        self._warm_signatures: set = set()
        self._counters = _RouterCounters()
        # Router-side latency distribution on a per-instance registry — the
        # one percentile implementation every stats surface shares.
        self.metrics = MetricsRegistry()
        self._latency_hist = self.metrics.histogram(
            "fleet.latency_ms", self.config.latency_window
        )
        self._log = get_logger("serving.fleet")
        self._tenant_backlog: Dict[str, int] = {}
        self._next_id = 0
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "FleetRouter":
        if self._running:
            return self
        loop = asyncio.get_running_loop()
        ctx = multiprocessing.get_context(_default_start_method())
        spawned: List[Tuple[_WorkerClient, object]] = []
        config_kwargs = {
            name: getattr(self.config.worker, name)
            for name in ("max_queue", "max_batch", "batch_window_ms",
                         "n_workers", "latency_window")
        }
        for index in range(self.config.n_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            client = _WorkerClient(index)
            client.process = ctx.Process(
                target=worker_main,
                args=(str(self.artifact_path), child_conn,
                      config_kwargs, self.config_overrides),
                name=f"restore-fleet-{index}",
                daemon=True,
            )
            client.process.start()
            child_conn.close()
            self._log.info(
                "worker.spawn", worker=index, pid=client.process.pid,
                artifact=str(self.artifact_path),
            )
            spawned.append((client, parent_conn))
        try:
            # Workers load their engines concurrently; the router loads its
            # routing replica (selection metadata only) in the meantime.
            self._routing_engine = await loop.run_in_executor(
                None, ReStore.load, self.artifact_path
            )
            for client, parent_conn in spawned:
                await self._connect(client, parent_conn)
        except BaseException:
            await self._terminate_all(spawned)
            raise
        self._workers = [client for client, _ in spawned]
        self._ring = ConsistentHashRing(
            [client.index for client in self._workers],
            virtual_nodes=self.config.virtual_nodes,
        )
        self._running = True
        return self

    async def _connect(self, client: _WorkerClient, parent_conn) -> None:
        loop = asyncio.get_running_loop()
        try:
            status, detail = await asyncio.wait_for(
                loop.run_in_executor(None, parent_conn.recv),
                timeout=self.config.connect_timeout_s,
            )
        except asyncio.TimeoutError:
            raise WorkerError(
                f"worker {client.index} did not report readiness within "
                f"{self.config.connect_timeout_s}s"
            ) from None
        except EOFError:
            raise WorkerError(
                f"worker {client.index} died during startup "
                f"(exitcode {client.process.exitcode})"
            ) from None
        finally:
            parent_conn.close()
        if status != "ok":
            raise WorkerError(f"worker {client.index} failed to start: {detail}")
        family, address = detail
        if family == "unix":
            client.reader, client.writer = await asyncio.open_unix_connection(
                address
            )
        else:
            host, port = address
            client.reader, client.writer = await asyncio.open_connection(
                host, port
            )
        client.writer.write(encode_frame("hello"))
        await client.writer.drain()
        reply = await asyncio.wait_for(
            _read_frame(client.reader), timeout=self.config.connect_timeout_s
        )
        if reply is None or reply.get("kind") != "hello":
            raise ProtocolError(
                f"worker {client.index} handshake failed: {reply!r}"
            )
        client.alive = True
        client.bye_future = loop.create_future()
        client.reader_task = loop.create_task(self._reader(client))
        self._log.info(
            "worker.ready", worker=client.index,
            pid=client.process.pid if client.process else None,
        )

    async def _terminate_all(self, spawned) -> None:
        for client, _conn in spawned:
            if client.reader_task is not None:
                client.reader_task.cancel()
            if client.writer is not None:
                client.writer.close()
            if client.process is not None and client.process.is_alive():
                client.process.terminate()

    async def close(self) -> None:
        """Drain the backlog, stop every worker, collect final stats.

        Every request admitted before ``close`` is answered (zero dropped
        in-flight requests); workers receive a ``shutdown`` frame, drain
        their cores, and hand back their closing stats in ``bye``.
        """
        if not self._running:
            return
        self._running = False
        self._log.info(
            "fleet.drain",
            backlog=self._backlog(),
            workers=sum(1 for c in self._workers if c.alive),
        )
        outstanding = [
            pending.future
            for client in self._workers
            for pending in [*client.queue, *client.inflight.values()]
        ]
        if outstanding:
            await asyncio.gather(*outstanding, return_exceptions=True)
        for client in self._workers:
            if not client.alive:
                continue
            try:
                client.writer.write(encode_frame("shutdown"))
                await client.writer.drain()
                await asyncio.wait_for(
                    client.bye_future, timeout=self.config.connect_timeout_s
                )
            except (OSError, asyncio.TimeoutError, WorkerError):
                # A worker dying during drain fails its own bye; the other
                # workers still deserve a clean shutdown.
                pass
        for client in self._workers:
            if client.reader_task is not None:
                client.reader_task.cancel()
                try:
                    await client.reader_task
                except (asyncio.CancelledError, Exception):
                    pass
            if client.writer is not None:
                client.writer.close()
            if client.process is not None:
                await asyncio.get_running_loop().run_in_executor(
                    None, client.process.join, 10.0
                )
                if client.process.is_alive():
                    client.process.terminate()

    async def __aenter__(self) -> "FleetRouter":
        return await self.start()

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _routing_key(
        self, query: Query, suspected_bias: Optional[SuspectedBias]
    ) -> Tuple[Tuple, Optional[Tuple]]:
        """Routing key + join signature (None when no completion runs).

        *Cold* completion queries route by join signature: until the
        fleet has answered a signature once, every duplicate lands on the
        same worker and the core's single-flight makes the whole fleet
        compute exactly one join.  Once a signature is *warm* (some
        worker answered it), affinity stops paying — the join exists and
        any worker can replicate it from its own cache at bounded cost
        (at most one join per signature per worker, ever) — so warm
        traffic spreads by query identity to use every worker.
        Complete-only and suspected-bias queries run no shareable join
        and always spread.
        """
        engine = self._routing_engine
        incomplete = [
            t for t in query.tables
            if not engine.annotation.is_complete(t)
        ]
        if not incomplete:
            return ("__complete__", repr(query)), None
        if suspected_bias is not None:
            return ("__bias__", repr(query), repr(suspected_bias)), None
        target = engine._primary_target(incomplete)
        choice = engine.select_model(target, query=query)
        signature = engine.join_signature(choice.model)
        if signature in self._warm_signatures:
            return (signature, repr(query)), signature
        return signature, signature

    def _worker_for(self, key: Tuple) -> _WorkerClient:
        index = self._ring.node_for(repr(key))
        return self._workers[index]

    # ------------------------------------------------------------------
    # Admission: quotas and shedding (synchronous, transport-free)
    # ------------------------------------------------------------------
    def _backlog(self) -> int:
        return sum(client.backlog() for client in self._workers)

    def _finish(self, pending: _Pending) -> None:
        count = self._tenant_backlog.get(pending.tenant, 0) - 1
        if count > 0:
            self._tenant_backlog[pending.tenant] = count
        else:
            self._tenant_backlog.pop(pending.tenant, None)

    def _shed_oldest(self) -> bool:
        """Fail the oldest *queued* request fleet-wide; False if none queued."""
        oldest: Optional[Tuple[_WorkerClient, _Pending]] = None
        for client in self._workers:
            if client.queue:
                head = client.queue[0]
                if oldest is None or head.enqueued_at < oldest[1].enqueued_at:
                    oldest = (client, head)
        if oldest is None:
            return False
        client, pending = oldest
        client.queue.popleft()
        self._finish(pending)
        self._counters.shed += 1
        if not pending.future.done():
            pending.future.set_exception(ServiceOverloadedError(
                f"shed under overload: fleet backlog reached "
                f"{self.config.max_pending} and newer work arrived"
            ))
        return True

    def _admit(
        self,
        query: Query,
        suspected_bias: Optional[SuspectedBias],
        tenant: str,
        future: "asyncio.Future",
        enqueued_at: float,
    ) -> Tuple[_Pending, _WorkerClient]:
        """Quota check + overload shedding + enqueue on the routed worker."""
        self._counters.requests += 1
        quota = self.config.tenant_quota
        if quota is not None and self._tenant_backlog.get(tenant, 0) >= quota:
            self._counters.rejected += 1
            raise ServiceOverloadedError(
                f"tenant {tenant!r} already holds {quota} in-flight requests "
                f"(per-tenant quota)"
            )
        if self._backlog() >= self.config.max_pending:
            if not self._shed_oldest():
                # Everything is already on the wire: reject the newcomer.
                self._counters.rejected += 1
                raise ServiceOverloadedError(
                    f"fleet backlog is full ({self.config.max_pending} "
                    f"requests on the wire); retry later"
                )
        key, signature = self._routing_key(query, suspected_bias)
        client = self._worker_for(key)
        if not client.alive:
            raise WorkerError(f"worker {client.index} is down")
        self._next_id += 1
        pending = _Pending(
            request_id=self._next_id,
            query=query,
            tenant=tenant,
            future=future,
            enqueued_at=enqueued_at,
            suspected_bias=suspected_bias,
            signature=signature,
        )
        self._tenant_backlog[tenant] = self._tenant_backlog.get(tenant, 0) + 1
        client.queue.append(pending)
        return pending, client

    # ------------------------------------------------------------------
    # Front-end
    # ------------------------------------------------------------------
    async def submit(
        self,
        query: QueryLike,
        suspected_bias: Optional[SuspectedBias] = None,
        tenant: str = "default",
    ) -> Answer:
        """Submit one query to the fleet and await its answer.

        Raises the same taxonomy a local service would: validation errors
        name candidate columns, worker-side failures re-raise as their
        original class via the wire code, overload/quota raises
        :class:`~repro.errors.ServiceOverloadedError`.
        """
        if not self._running:
            raise ServiceClosedError("fleet is not running; use 'async with'")
        with trace("fleet.submit", tenant=tenant) as span:
            if isinstance(query, str):
                query = parse_query(query)
            validate_query_columns(self._routing_engine.db, query)
            loop = asyncio.get_running_loop()
            pending, client = self._admit(
                query, suspected_bias, tenant, loop.create_future(), loop.time()
            )
            # The wire carries the submit span's context, so the worker's
            # spans come back stitched under this trace (contextvars flow
            # through the await natively).
            pending.trace_ctx = current_context()
            span.set("worker", client.index)
            await self._pump(client)
            return await pending.future

    async def submit_many(self, queries: Sequence[QueryLike]) -> List[Answer]:
        return list(await asyncio.gather(*(self.submit(q) for q in queries)))

    async def _pump(self, client: _WorkerClient) -> None:
        """Move queued requests onto the wire, up to the dispatch window."""
        while (client.alive and client.queue
               and len(client.inflight) < self.config.dispatch_window):
            pending = client.queue.popleft()
            client.inflight[pending.request_id] = pending
            try:
                client.writer.write(encode_frame(
                    "query",
                    id=pending.request_id,
                    query=pending.query,
                    suspected_bias=pending.suspected_bias,
                    tenant=pending.tenant,
                    trace=(
                        pending.trace_ctx.as_wire()
                        if pending.trace_ctx is not None else None
                    ),
                ))
                await client.writer.drain()
            except (OSError, ConnectionError) as exc:
                self._fail_worker(client, WorkerError(
                    f"worker {client.index} connection lost: {exc}"
                ))
                return

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    async def _reader(self, client: _WorkerClient) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                frame = await _read_frame(client.reader)
            except ProtocolError as exc:
                self._fail_worker(client, WorkerError(
                    f"worker {client.index} protocol failure: {exc}"
                ))
                return
            if frame is None:
                self._fail_worker(client, WorkerError(
                    f"worker {client.index} disconnected "
                    f"(exitcode {client.process.exitcode if client.process else None})"
                ))
                return
            kind = frame.get("kind")
            if kind in ("answer", "error"):
                spans = frame.get("spans")
                if spans:
                    # Worker-side spans of this request's trace, shipped in
                    # the reply: adopt them so the router tracer holds the
                    # whole stitched tree.
                    get_tracer().ingest(spans)
                pending = client.inflight.pop(frame.get("id"), None)
                if pending is not None:
                    self._finish(pending)
                    if kind == "answer":
                        if pending.signature is not None:
                            self._warm_signatures.add(pending.signature)
                        self._counters.completed += 1
                        self._latency_hist.observe(
                            (loop.time() - pending.enqueued_at) * 1000.0
                        )
                        if not pending.future.done():
                            pending.future.set_result(frame["answer"])
                    else:
                        self._counters.failed += 1
                        if not pending.future.done():
                            try:
                                raise_wire_error(frame)
                            except Exception as exc:
                                pending.future.set_exception(exc)
                await self._pump(client)
            elif kind == "stats_reply":
                waiter = client.stats_waiters.pop(frame.get("id"), None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(frame.get("stats", {}))
            elif kind == "swap_reply":
                waiter = client.swap_waiters.pop(frame.get("id"), None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(frame)
            elif kind == "bye":
                client.final_stats = frame.get("stats")
                client.alive = False
                if client.bye_future is not None and not client.bye_future.done():
                    client.bye_future.set_result(client.final_stats)
                return

    def _fail_worker(self, client: _WorkerClient, error: WorkerError) -> None:
        """A worker went away: fail its backlog, take it off the ring."""
        client.alive = False
        self._log.warning(
            "worker.death", worker=client.index, error=str(error),
            stranded=len(client.queue) + len(client.inflight),
        )
        if self._ring is not None:
            self._ring.remove(client.index)
        stranded = [*client.queue, *client.inflight.values()]
        client.queue.clear()
        client.inflight.clear()
        for pending in stranded:
            self._finish(pending)
            self._counters.failed += 1
            if not pending.future.done():
                pending.future.set_exception(error)
        for waiter in client.stats_waiters.values():
            if not waiter.done():
                waiter.set_exception(error)
        client.stats_waiters.clear()
        for waiter in client.swap_waiters.values():
            if not waiter.done():
                waiter.set_exception(error)
        client.swap_waiters.clear()
        if client.bye_future is not None and not client.bye_future.done():
            client.bye_future.set_exception(error)
            # A dead worker's bye is never awaited (close() skips workers
            # that are not alive), so mark the exception retrieved to keep
            # loop teardown from warning about it.
            client.bye_future.exception()

    # ------------------------------------------------------------------
    # Zero-downtime rolling swap
    # ------------------------------------------------------------------
    async def rolling_swap(self, artifact_path) -> dict:
        """Upgrade the fleet to ``artifact_path``, one worker at a time.

        Each live worker receives a ``swap`` frame and loads the new
        artifact between micro-batches: its reader thread blocks while
        loading (new queries buffer on the socket, nothing is rejected)
        and groups already dispatched finish on the old engine — zero
        dropped in-flight requests, which the fault-injection tests
        assert.  The rest of the fleet keeps serving the old version
        until its own turn.

        A worker that dies mid-rollout is skipped (its stranded requests
        fail with the stable ``worker`` wire code, exactly as any other
        death) and the rollout continues on the survivors.  A worker that
        *rejects* the swap — corrupt or lineage-mismatched artifact —
        aborts the rollout by re-raising the taxonomy error; since
        workers validate before swapping, every worker (including the
        rejecting one) keeps serving the version it already has.

        After at least one successful swap the router reloads its own
        routing replica from the new artifact and forgets warm-signature
        affinity (the workers' join caches restarted cold).
        """
        if not self._running:
            raise ServiceClosedError("fleet is not running; use 'async with'")
        artifact_path = Path(artifact_path)
        loop = asyncio.get_running_loop()
        with trace("fleet.rolling_swap", artifact=str(artifact_path)) as span:
            swapped: List[int] = []
            skipped: List[int] = []
            info: Optional[dict] = None
            for client in list(self._workers):
                if not client.alive:
                    skipped.append(client.index)
                    continue
                self._next_id += 1
                request_id = self._next_id
                waiter = loop.create_future()
                client.swap_waiters[request_id] = waiter
                try:
                    client.writer.write(encode_frame(
                        "swap", id=request_id, path=str(artifact_path)
                    ))
                    await client.writer.drain()
                    frame = await asyncio.wait_for(
                        waiter, timeout=self.config.connect_timeout_s
                    )
                except (OSError, ConnectionError, asyncio.TimeoutError,
                        WorkerError):
                    # Worker died mid-swap: _fail_worker already stranded its
                    # backlog with WorkerError; finish the rollout on
                    # survivors.
                    client.swap_waiters.pop(request_id, None)
                    skipped.append(client.index)
                    continue
                if not frame.get("ok"):
                    raise_wire_error(frame)
                swapped.append(client.index)
                info = frame.get("info")
                self._log.info(
                    "worker.swap", worker=client.index,
                    artifact=str(artifact_path),
                )
            if swapped:
                self._routing_engine = await loop.run_in_executor(
                    None, ReStore.load, artifact_path
                )
                self._warm_signatures.clear()
                self.artifact_path = artifact_path
            span.set("swapped", len(swapped))
            span.set("skipped", len(skipped))
            return {
                "artifact_path": str(artifact_path),
                "swapped": swapped,
                "skipped": skipped,
                "workers": len(self._workers),
                "info": info,
            }

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def router_stats(self) -> dict:
        """Router-side counters only (no worker round-trip)."""
        return {
            "requests": self._counters.requests,
            "completed": self._counters.completed,
            "failed": self._counters.failed,
            "shed": self._counters.shed,
            "rejected": self._counters.rejected,
            "queued": sum(len(c.queue) for c in self._workers),
            "inflight": sum(len(c.inflight) for c in self._workers),
            "p50_latency_ms": self._latency_hist.percentile(50),
            "p95_latency_ms": self._latency_hist.percentile(95),
        }

    async def stats(self) -> FleetStats:
        """One aggregated snapshot: per-worker cores + router counters."""
        per_worker: List[dict] = []
        for client in self._workers:
            if not client.alive:
                per_worker.append(client.final_stats or {})
                continue
            self._next_id += 1
            request_id = self._next_id
            waiter = asyncio.get_running_loop().create_future()
            client.stats_waiters[request_id] = waiter
            try:
                client.writer.write(encode_frame("stats", id=request_id))
                await client.writer.drain()
                per_worker.append(await asyncio.wait_for(
                    waiter, timeout=self.config.connect_timeout_s
                ))
            except (OSError, asyncio.TimeoutError, WorkerError):
                client.stats_waiters.pop(request_id, None)
                per_worker.append(client.final_stats or {})
        return self._aggregate(per_worker)

    def _aggregate(self, per_worker: List[dict]) -> FleetStats:
        router = self.router_stats()
        return FleetStats(
            workers=len(self._workers),
            requests=router["requests"],
            completed=router["completed"],
            failed=router["failed"],
            shed=router["shed"],
            rejected=router["rejected"],
            queued=router["queued"],
            inflight=router["inflight"],
            p50_latency_ms=router["p50_latency_ms"],
            p95_latency_ms=router["p95_latency_ms"],
            joins_started=sum(
                int(w.get("joins_started", 0)) for w in per_worker
            ),
            coalesced_requests=sum(
                int(w.get("coalesced_requests", 0)) for w in per_worker
            ),
            per_worker=per_worker,
        )

    @property
    def final_worker_stats(self) -> List[Optional[dict]]:
        """Each worker's closing ``bye`` snapshot (populated by close())."""
        return [client.final_stats for client in self._workers]
