"""The process shell: one artifact, one :class:`ServingCore`, one socket.

A :class:`ServiceWorker` is what a fleet spawns per process: it loads a
versioned artifact (:mod:`repro.serving.artifacts`) into a fresh engine,
wraps it in the transport-agnostic core, and serves the length-prefixed
wire protocol (:mod:`repro.serving.protocol`) over a single router
connection.  All serving behaviour — micro-batching, join-signature
grouping, single-flight coalescing, admission, stats — is the core's;
this shell only moves frames:

* a **reader** (the calling thread) decodes frames: queries are admitted
  through the core's gate (overload ⇒ an ``error`` frame with the
  ``service_overloaded`` wire code) into a :class:`SyncMicroBatcher`;
  ``stats`` and ``shutdown`` are answered inline;
* a **collector** thread drains micro-batches, groups them by join
  signature and fans the groups out over a small thread pool;
* replies are written under a send lock, one ``answer``/``error`` frame
  per request id — the router correlates them, so responses may arrive
  in any order.

Shutdown is drain-clean: on a ``shutdown`` frame (or EOF) the worker
stops admitting, finishes every in-flight batch, answers everything it
accepted, then sends a final ``bye`` frame carrying its closing stats —
zero dropped in-flight requests, which the fleet tests assert.

:func:`worker_main` is the process entry point used by
:class:`~repro.serving.FleetRouter`; it binds a fresh socket (AF_UNIX
where available, loopback TCP otherwise), reports the address through a
``multiprocessing`` pipe, and serves until the router disconnects.
"""

from __future__ import annotations

import os
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..core.engine import ReStore
from ..core.selection import SuspectedBias
from ..errors import ServiceOverloadedError
from ..obs import enable_tracing, get_logger, get_tracer, tracing_enabled
from ..obs.trace import TraceContext
from ..query import Query
from ..version import repro_version
from .core import ServiceConfig, ServingCore, SyncMicroBatcher
from .protocol import (
    PROTOCOL_VERSION,
    error_fields,
    recv_frame,
    send_frame,
    strip_answer,
)

__all__ = ["ServiceWorker", "worker_main", "bind_worker_socket"]


@dataclass
class _WireRequest:
    """One admitted query frame (duck-typed for :meth:`ServingCore.group`)."""

    query: Query
    enqueued_at: float
    request_id: object
    suspected_bias: Optional[SuspectedBias] = None
    tenant: str = "default"
    trace_ctx: Optional[TraceContext] = None  #: router's trace context


class ServiceWorker:
    """Serve one fitted engine over the wire protocol (blocking shell)."""

    def __init__(self, engine: ReStore, config: Optional[ServiceConfig] = None):
        self.core = ServingCore(engine, config)
        self._log = get_logger("serving.worker")

    @classmethod
    def from_artifact(
        cls,
        artifact_path,
        config: Optional[ServiceConfig] = None,
        config_overrides: Optional[dict] = None,
    ) -> "ServiceWorker":
        engine = ReStore.load(Path(artifact_path), config_overrides=config_overrides)
        return cls(engine, config)

    # ------------------------------------------------------------------
    # One connection = one serving session
    # ------------------------------------------------------------------
    def serve_connection(self, conn: socket.socket) -> bool:
        """Serve frames until ``shutdown`` or EOF; returns True on ``bye``.

        Blocking; drives the reader loop on the calling thread and
        completes every admitted request before returning.
        """
        config = self.core.config
        send_lock = threading.Lock()
        batcher = SyncMicroBatcher(
            max_queue=config.max_queue,
            max_batch=config.max_batch,
            window_s=config.batch_window_s,
        )
        pool = ThreadPoolExecutor(
            max_workers=config.n_workers, thread_name_prefix="restore-worker"
        )
        group_futures: list = []
        futures_lock = threading.Lock()

        def reply(kind: str, **fields) -> None:
            with send_lock:
                try:
                    send_frame(conn, kind, **fields)
                except OSError:
                    pass  # router vanished; draining continues regardless

        def serve_and_reply(model, members, signature) -> None:
            results = self.core.serve_group(model, members, signature)
            for request, result in zip(members, results):
                spans = None
                if request.trace_ctx is not None and tracing_enabled():
                    # Drain this request's spans into the reply: the router
                    # ingests them, stitching one cross-process trace tree.
                    spans = get_tracer().take(request.trace_ctx.trace_id)
                if isinstance(result, BaseException):
                    reply("error", spans=spans,
                          **error_fields(request.request_id, result))
                else:
                    reply("answer", id=request.request_id,
                          answer=strip_answer(result), spans=spans)
                self.core.gate.release()

        def collect() -> None:
            while True:
                batch = batcher.next_batch()
                if batch is None:
                    return
                self.core.record_batch(len(batch))
                groups, failures = self.core.group(batch)
                for request, exc in failures:
                    reply("error", **error_fields(request.request_id, exc))
                    self.core.gate.release()
                for signature, (model, members) in groups.items():
                    future = pool.submit(
                        serve_and_reply, model, members, signature
                    )
                    with futures_lock:
                        group_futures.append(future)

        collector = threading.Thread(
            target=collect, name="restore-worker-collect", daemon=True
        )
        collector.start()
        saw_shutdown = False
        try:
            while True:
                frame = recv_frame(conn)
                if frame is None:
                    break
                kind = frame["kind"]
                if kind == "hello":
                    reply(
                        "hello",
                        protocol=PROTOCOL_VERSION,
                        repro=repro_version(),
                        pid=os.getpid(),
                    )
                elif kind == "query":
                    self._admit(frame, batcher, reply)
                elif kind == "stats":
                    reply(
                        "stats_reply",
                        id=frame.get("id"),
                        stats=self.core.stats(queued=batcher.qsize()).as_dict(),
                    )
                elif kind == "swap":
                    # Hot swap runs inline on the reader thread: no new
                    # queries are admitted while the replacement loads,
                    # but groups already dispatched keep draining on the
                    # pool against the engine they were routed to —
                    # nothing in flight is dropped.  A failed load leaves
                    # the old engine serving and reports the taxonomy
                    # code back to the router.
                    try:
                        info = self.core.hot_swap(frame["path"])
                    except BaseException as exc:
                        fields = error_fields(frame.get("id"), exc)
                        reply("swap_reply", ok=False, **fields)
                    else:
                        reply("swap_reply", ok=True, id=frame.get("id"),
                              info=info)
                elif kind == "shutdown":
                    saw_shutdown = True
                    break
                # unknown kinds are ignored: a newer router may probe
        finally:
            self._log.info(
                "worker.drain", pid=os.getpid(), queued=batcher.qsize(),
                shutdown=saw_shutdown,
            )
            batcher.stop()
            collector.join()
            with futures_lock:
                pending = list(group_futures)
            for future in pending:
                future.result()
            pool.shutdown(wait=True)
            if saw_shutdown:
                reply(
                    "bye",
                    stats=self.core.stats(queued=0).as_dict(),
                )
        return saw_shutdown

    def _admit(self, frame: dict, batcher: SyncMicroBatcher, reply) -> None:
        """Validate + admit one query frame (reader thread, must stay cheap)."""
        request_id = frame.get("id")
        try:
            query = self.core.prepare(frame["query"])
        except BaseException as exc:
            reply("error", **error_fields(request_id, exc))
            return
        self.core.count_request()
        if not self.core.gate.try_acquire():
            self.core.count_rejected()
            reply("error", **error_fields(
                request_id,
                ServiceOverloadedError(
                    f"worker admission full "
                    f"({self.core.config.max_queue} in service)"
                ),
            ))
            return
        trace_ctx = TraceContext.from_wire(frame.get("trace"))
        if trace_ctx is not None and trace_ctx.sampled and not tracing_enabled():
            # The router is tracing; turn on collection lazily so this
            # request's worker-side spans exist to ship back.  Requests
            # without a trace field never pay for this.
            enable_tracing()
        request = _WireRequest(
            query=query,
            enqueued_at=self.core.clock(),
            request_id=request_id,
            suspected_bias=frame.get("suspected_bias"),
            tenant=frame.get("tenant", "default"),
            trace_ctx=trace_ctx,
        )
        # The gate bounds in-service requests at max_queue, so the batcher
        # queue (same capacity) can never be full here.
        batcher.put(request, wait=True)


# ----------------------------------------------------------------------
# Process entry point
# ----------------------------------------------------------------------

def bind_worker_socket() -> socket.socket:
    """A fresh listening socket: abstract-free AF_UNIX, else loopback TCP."""
    if hasattr(socket, "AF_UNIX"):
        import tempfile

        path = os.path.join(
            tempfile.mkdtemp(prefix="restore-wk-"), "worker.sock"
        )
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
    else:  # pragma: no cover - exercised only on platforms without AF_UNIX
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    return listener


def listener_address(listener: socket.socket):
    """The connectable (family, address) pair for :func:`bind_worker_socket`."""
    if listener.family == getattr(socket, "AF_UNIX", object()):
        return ("unix", listener.getsockname())
    host, port = listener.getsockname()[:2]
    return ("tcp", (host, port))


def worker_main(
    artifact_path: str,
    ready_conn,
    config_kwargs: Optional[dict] = None,
    config_overrides: Optional[dict] = None,
) -> None:
    """Fleet worker process body: load, bind, report, serve, exit.

    ``ready_conn`` is the child end of a ``multiprocessing.Pipe``; the
    worker sends ``("ok", (family, address))`` once it is accepting (or
    ``("error", repr)`` if startup failed, so the router can report the
    real cause instead of a connect timeout).
    """
    log = get_logger("serving.worker")
    log.info("worker.spawn", pid=os.getpid(), artifact=str(artifact_path))
    listener = None
    try:
        config = ServiceConfig(**(config_kwargs or {}))
        worker = ServiceWorker.from_artifact(
            artifact_path, config=config, config_overrides=config_overrides
        )
        listener = bind_worker_socket()
        ready_conn.send(("ok", listener_address(listener)))
    except BaseException as exc:
        log.error("worker.death", pid=os.getpid(),
                  error=f"{type(exc).__name__}: {exc}")
        try:
            ready_conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            ready_conn.close()
        if listener is not None:
            listener.close()
        return
    ready_conn.close()
    log.info("worker.ready", pid=os.getpid())
    try:
        conn, _peer = listener.accept()
        try:
            worker.serve_connection(conn)
        finally:
            conn.close()
    finally:
        log.info("worker.death", pid=os.getpid(), clean=True)
        listener.close()
        if listener.family == getattr(socket, "AF_UNIX", object()):
            try:
                os.unlink(listener.getsockname())
            except OSError:
                pass
