"""Length-prefixed, versioned wire protocol between router and workers.

Frame layout, lowest layer first::

    +----------------+---------------------------------------------+
    | 4 bytes  !I    | payload length N (bounded by MAX_FRAME_BYTES)|
    +----------------+---------------------------------------------+
    | N bytes        | pickled payload dict                        |
    +----------------+---------------------------------------------+

Every payload carries ``{"v": PROTOCOL_VERSION, "kind": <str>, ...}``;
a version mismatch or malformed frame raises
:class:`~repro.errors.ProtocolError` instead of guessing.  Message kinds:

=============  =======================================================
``hello``      handshake: protocol + repro versions, worker pid
``query``      one request: ``id``, a :class:`~repro.query.Query` AST,
               optional suspected bias, ``tenant``; an optional ``trace``
               dict (:meth:`repro.obs.TraceContext.as_wire`) propagates
               the router's trace context into the worker
``answer``     success: ``id`` + the :class:`~repro.core.Answer`
               (heavy provenance — model, completed join — stripped);
               an optional ``spans`` list carries the worker-side spans
               of the request's trace back for router-side stitching
``error``      failure: ``id`` + a stable wire ``code``
               (:func:`repro.errors.wire_code`), message, error type;
               optional ``spans`` as on ``answer``
``stats``      request a :meth:`ServingCore.stats` snapshot (``id``)
``stats_reply``  the snapshot as a plain dict (``id``)
``swap``       hot-swap the worker's engine: ``id`` + artifact ``path``
``swap_reply``  swap outcome: ``id``, ``ok``; on success the core's swap
               info dict, on failure a stable wire ``code`` + message
``shutdown``   drain in-flight work, then reply ``bye`` and exit
``bye``        final frame: the worker's closing stats snapshot
=============  =======================================================

Trust model: payloads are **pickle** over a private socket between
processes of one fleet, exactly as trusted as the artifact files the
workers load — never expose a worker socket to an untrusted peer.

Helpers come in sans-io (:func:`encode_frame` / :func:`decode_payload`)
and blocking-socket (:func:`send_frame` / :func:`recv_frame`) flavours;
asyncio callers pair ``encode_frame`` with ``reader.readexactly``.
"""

from __future__ import annotations

import dataclasses
import pickle
import socket
import struct
from typing import Optional

from ..errors import ProtocolError, error_for_code, wire_code

PROTOCOL_VERSION = 1

#: Hard bound on a single frame; a corrupted length prefix fails loudly
#: instead of attempting a multi-gigabyte read.
MAX_FRAME_BYTES = 1 << 30

HEADER = struct.Struct("!I")


def encode_frame(kind: str, **fields) -> bytes:
    """One wire frame: header + versioned, pickled payload."""
    payload = {"v": PROTOCOL_VERSION, "kind": kind}
    payload.update(fields)
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES"
        )
    return HEADER.pack(len(data)) + data


def decode_payload(data: bytes) -> dict:
    """Payload bytes → message dict, checking shape and version."""
    try:
        payload = pickle.loads(data)
    except Exception as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ProtocolError(f"malformed frame payload: {payload!r}")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    return payload


def frame_length(header: bytes) -> int:
    """Validated payload length from a 4-byte header."""
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES}); corrupted stream?"
        )
    return length


# ----------------------------------------------------------------------
# Blocking-socket helpers (the worker side)
# ----------------------------------------------------------------------

def send_frame(sock: socket.socket, kind: str, **fields) -> None:
    sock.sendall(encode_frame(kind, **fields))


def _recv_exactly(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly n bytes; None on clean EOF at a frame boundary."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """One message dict, or ``None`` on clean EOF between frames."""
    header = _recv_exactly(sock, HEADER.size)
    if header is None:
        return None
    payload = _recv_exactly(sock, frame_length(header))
    if payload is None:
        raise ProtocolError("connection closed between header and payload")
    return decode_payload(payload)


# ----------------------------------------------------------------------
# Error and answer mapping
# ----------------------------------------------------------------------

def error_fields(request_id, exc: BaseException) -> dict:
    """The wire representation of a failure: stable code + context."""
    return {
        "id": request_id,
        "code": wire_code(exc),
        "message": str(exc) or type(exc).__name__,
        "error_type": type(exc).__name__,
    }


def raise_wire_error(frame: dict) -> None:
    """Re-raise an ``error`` frame as its taxonomy class."""
    message = frame.get("message", "remote error")
    error_type = frame.get("error_type")
    if error_type and error_type not in message:
        message = f"[worker {error_type}] {message}"
    raise error_for_code(frame.get("code", "internal"), message)


def strip_answer(answer):
    """Shed worker-side provenance (model, completed join) before the wire.

    The query result, completion flags and pushdown profile cross the
    boundary; megabyte-scale join materializations and model objects stay
    in the worker, mirroring what a remote client can meaningfully use.
    """
    return dataclasses.replace(answer, model=None, completed=None)


__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_payload",
    "frame_length",
    "send_frame",
    "recv_frame",
    "error_fields",
    "raise_wire_error",
    "strip_answer",
]
