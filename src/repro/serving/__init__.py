"""Serving layer: artifacts, the transport-agnostic core, and its shells.

ReStore's train-once / query-many story in four layers:

* **artifacts** (:mod:`~repro.serving.artifacts`) — versioned save/load
  of a fitted engine (``save_artifact`` / ``load_artifact`` /
  ``ReStore.load``), with manifest hashes and clear schema/version errors;
* **core** (:mod:`~repro.serving.core`) — :class:`ServingCore`, the
  synchronous, asyncio-free brain owning micro-batching, join-signature
  grouping, single-flight coalescing, admission/backpressure and stats;
* **shells** — :class:`CompletionService`, the asyncio front-end over the
  core, and :class:`ServiceWorker`, a process shell serving a loaded
  artifact over the length-prefixed wire protocol
  (:mod:`~repro.serving.protocol`);
* **fleet** (:mod:`~repro.serving.fleet`) — :class:`FleetRouter`, which
  spawns N workers from one artifact, consistent-hash routes by join
  signature (single-flight keeps working fleet-wide), sheds oldest under
  overload with per-tenant quotas, and aggregates worker stats.

The error taxonomy lives in :mod:`repro.errors`; the names below re-export
it for convenience.  ``repro.serving.batching`` / ``repro.serving.artifacts``
as *old homes* of the error classes still resolve via deprecation shims.
"""

from ..errors import (
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactLineageError,
    ArtifactSchemaError,
    ArtifactVersionError,
    ConfigurationError,
    ProtocolError,
    ReStoreError,
    ServiceClosedError,
    ServiceOverloadedError,
    WorkerError,
)
from .artifacts import (
    FORMAT_VERSION,
    artifact_lineage,
    database_digest,
    load_artifact,
    read_manifest,
    save_artifact,
    verify_artifact,
    verify_lineage,
)
from .batching import MicroBatcher, ServiceRequest
from .core import (
    AdmissionGate,
    CoreRequest,
    ProgressiveFlight,
    ServiceConfig,
    ServiceStats,
    ServingCore,
    SyncMicroBatcher,
)
from .fleet import ConsistentHashRing, FleetConfig, FleetRouter, FleetStats
from .protocol import PROTOCOL_VERSION
from .service import CompletionService
from .worker import ServiceWorker, worker_main

#: The public serving API, grouped by layer.
__all__ = [
    # artifacts
    "FORMAT_VERSION",
    "save_artifact",
    "load_artifact",
    "read_manifest",
    "verify_artifact",
    "database_digest",
    "artifact_lineage",
    "verify_lineage",
    # transport-agnostic core
    "ServingCore",
    "ServiceConfig",
    "ServiceStats",
    "CoreRequest",
    "AdmissionGate",
    "SyncMicroBatcher",
    "ProgressiveFlight",
    # shells
    "CompletionService",
    "ServiceWorker",
    "worker_main",
    "MicroBatcher",
    "ServiceRequest",
    "PROTOCOL_VERSION",
    # fleet
    "FleetRouter",
    "FleetConfig",
    "FleetStats",
    "ConsistentHashRing",
    # error taxonomy (canonical home: repro.errors)
    "ReStoreError",
    "ConfigurationError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "ProtocolError",
    "WorkerError",
    "ArtifactError",
    "ArtifactVersionError",
    "ArtifactIntegrityError",
    "ArtifactSchemaError",
    "ArtifactLineageError",
]
