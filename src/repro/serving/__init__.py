"""Serving layer: durable model artifacts + an async completion service.

Two halves of ReStore's train-once / query-many story:

* :mod:`~repro.serving.artifacts` — versioned save/load of a fitted
  engine (``save_artifact`` / ``load_artifact`` / ``ReStore.load``), with
  manifest hashes and clear schema/version errors;
* :mod:`~repro.serving.service` — :class:`CompletionService`, a
  long-lived asyncio front-end that micro-batches concurrent queries,
  coalesces identical completion work into single-flight incompleteness
  joins, applies admission backpressure and reports latency percentiles.
"""

from .artifacts import (
    FORMAT_VERSION,
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactSchemaError,
    ArtifactVersionError,
    database_digest,
    load_artifact,
    read_manifest,
    save_artifact,
    verify_artifact,
)
from .batching import (
    MicroBatcher,
    ServiceClosedError,
    ServiceOverloadedError,
    ServiceRequest,
)
from .service import CompletionService, ServiceConfig, ServiceStats

__all__ = [
    "FORMAT_VERSION",
    "ArtifactError",
    "ArtifactVersionError",
    "ArtifactIntegrityError",
    "ArtifactSchemaError",
    "save_artifact",
    "load_artifact",
    "read_manifest",
    "verify_artifact",
    "database_digest",
    "MicroBatcher",
    "ServiceRequest",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "CompletionService",
    "ServiceConfig",
    "ServiceStats",
]
