"""A long-lived, micro-batching completion service over one fitted engine.

ReStore answers many OLAP/AQP queries from models trained once (paper
§4–§6); :class:`CompletionService` is the serving layer that premise asks
for.  It accepts SQL strings or :class:`~repro.query.Query` ASTs on an
asyncio front-end and drives them through the engine with three
throughput levers:

* **micro-batching** — concurrent requests are collected into small
  batches (:mod:`repro.serving.batching`) and grouped by their *join
  signature* (the engine's completed-join cache key), so one
  incompleteness join serves the whole group;
* **single-flight joins** — at most one incompleteness join per signature
  is ever in flight: groups from later batches await the same future, and
  completed joins are reused through the engine's
  :class:`~repro.runtime.JoinCache`.  N identical concurrent queries
  trigger exactly one join;
* **bounded admission** — a full queue makes ``submit`` wait
  (backpressure) or fail fast with
  :class:`~repro.serving.batching.ServiceOverloadedError`.

Completion work runs on a small thread pool, so the event loop stays
responsive while numpy crunches; joins for *different* signatures run
concurrently (the join cache is thread-safe).  :meth:`stats` reports
p50/p95 latency, batch-size and coalescing counters, and the cache hit
rate.

Queries are validated on submission: a column that does not exist in the
queried tables raises ``ValueError`` listing the candidate columns —
never a raw ``KeyError`` from deep inside the executor.
"""

from __future__ import annotations

import asyncio
import contextlib
from concurrent.futures import ThreadPoolExecutor
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.engine import Answer, ReStore
from ..core.models import _CompletionModelBase
from ..core.progressive import Refinement, SamplingBudget
from ..core.selection import SuspectedBias
from ..query import Query, parse_query, validate_query_columns
from .batching import (
    MicroBatcher,
    ServiceClosedError,
    ServiceOverloadedError,
    ServiceRequest,
)

QueryLike = Union[str, Query]


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`CompletionService` instance."""

    max_queue: int = 64          #: in-service request bound (backpressure beyond it)
    max_batch: int = 16          #: requests per micro-batch, at most
    batch_window_ms: float = 2.0  #: how long a batch stays open to fill up
    n_workers: int = 2           #: completion worker threads
    latency_window: int = 2048   #: latency samples kept for the percentiles

    def __post_init__(self) -> None:
        if self.max_queue < 1 or self.max_batch < 1 or self.n_workers < 1:
            raise ValueError("max_queue, max_batch and n_workers must be >= 1")
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")


@dataclass
class ServiceStats:
    """A point-in-time snapshot of service behaviour."""

    requests: int
    completed: int
    failed: int
    rejected: int
    queued: int
    batches: int
    mean_batch_size: float
    max_batch_size: int
    joins_started: int
    coalesced_requests: int
    p50_latency_ms: float
    p95_latency_ms: float
    cache: dict
    progressive: dict
    partial_cache: dict

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "queued": self.queued,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "joins_started": self.joins_started,
            "coalesced_requests": self.coalesced_requests,
            "p50_latency_ms": self.p50_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "cache": dict(self.cache),
            "progressive": dict(self.progressive),
            "partial_cache": dict(self.partial_cache),
        }


@dataclass
class _Counters:
    requests: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    batches: int = 0
    joins_started: int = 0
    coalesced_requests: int = 0
    progressive_queries: int = 0
    progressive_flights: int = 0
    progressive_coalesced: int = 0
    refinements_emitted: int = 0


_FLIGHT_DONE = object()


class _ProgressiveFlight:
    """One in-flight progressive run shared by coalesced subscribers.

    All bookkeeping runs on the event-loop thread: the worker thread that
    drives :meth:`ReStore.answer_progressive` hands refinements over via
    ``loop.call_soon_threadsafe``, so subscription (with history replay for
    late joiners), publication, and completion never race.
    """

    def __init__(self) -> None:
        self.history: List[Refinement] = []
        self.subscribers: List["asyncio.Queue"] = []
        self.done = False
        self.error: Optional[BaseException] = None

    def subscribe(self) -> "asyncio.Queue":
        queue: "asyncio.Queue" = asyncio.Queue()
        for refinement in self.history:
            queue.put_nowait(refinement)
        if self.done:
            queue.put_nowait(self.error if self.error is not None else _FLIGHT_DONE)
        else:
            self.subscribers.append(queue)
        return queue

    def publish(self, refinement: Refinement) -> None:
        self.history.append(refinement)
        for queue in self.subscribers:
            queue.put_nowait(refinement)

    def finish(self, error: Optional[BaseException]) -> None:
        self.done = True
        self.error = error
        sentinel = error if error is not None else _FLIGHT_DONE
        for queue in self.subscribers:
            queue.put_nowait(sentinel)
        self.subscribers.clear()


class CompletionService:
    """Serve SPJA queries over one fitted :class:`~repro.core.ReStore`.

    Use as an async context manager (or call :meth:`start` / :meth:`close`
    explicitly)::

        async with CompletionService(engine) as service:
            answer = await service.submit(
                "SELECT AVG(price) FROM apartment;"
            )

    All submissions must come from the event loop the service was started
    on.  The engine is shared, not copied: answers are exactly what
    ``engine.answer`` would return, including completed-join provenance.
    """

    def __init__(self, engine: ReStore, config: Optional[ServiceConfig] = None):
        self.engine = engine
        self.config = config or ServiceConfig()
        self._batcher = MicroBatcher(
            max_queue=self.config.max_queue,
            max_batch=self.config.max_batch,
            window_s=self.config.batch_window_ms / 1000.0,
        )
        self._counters = _Counters()
        self._latencies_ms: deque = deque(maxlen=self.config.latency_window)
        self._batch_sizes: deque = deque(maxlen=self.config.latency_window)
        self._inflight_joins: Dict[Tuple, "asyncio.Future"] = {}
        self._progressive_flights: Dict[Tuple, _ProgressiveFlight] = {}
        self._progressive_drivers: set = set()
        self._utilizations: deque = deque(maxlen=self.config.latency_window)
        self._group_tasks: set = set()
        self._collector: Optional["asyncio.Task"] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._slots: Optional["asyncio.Semaphore"] = None
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "CompletionService":
        if self._running:
            return self
        self._batcher.start()
        # Admission bound over *in-service* requests (queued, being batched
        # or answering): a bounded queue alone would not apply backpressure,
        # because the collector drains it into group tasks immediately.
        self._slots = asyncio.Semaphore(self.config.max_queue)
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.n_workers,
            thread_name_prefix="restore-serve",
        )
        self._collector = asyncio.get_running_loop().create_task(
            self._collect_forever()
        )
        self._running = True
        return self

    async def close(self) -> None:
        """Stop admissions, finish in-flight groups, fail queued requests."""
        if not self._running:
            return
        self._running = False
        assert self._collector is not None and self._pool is not None
        self._collector.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._collector
        for request in self._batcher.drain():
            self._counters.failed += 1
            request.fail(ServiceClosedError("service closed before dispatch"))
        if self._group_tasks:
            await asyncio.gather(*list(self._group_tasks), return_exceptions=True)
        if self._progressive_drivers:
            await asyncio.gather(*list(self._progressive_drivers),
                                 return_exceptions=True)
        self._pool.shutdown(wait=True)

    async def __aenter__(self) -> "CompletionService":
        return await self.start()

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Front-end
    # ------------------------------------------------------------------
    async def submit(
        self,
        query: QueryLike,
        suspected_bias: Optional[SuspectedBias] = None,
        wait: bool = True,
    ) -> Answer:
        """Submit one query and await its answer.

        ``query`` is an SQL string (parsed with the package grammar) or a
        :class:`~repro.query.Query`.  Validation happens up front: unknown
        tables or columns raise ``ValueError`` naming the candidates.
        With ``wait=False`` a full admission queue raises
        :class:`ServiceOverloadedError` instead of applying backpressure.
        """
        if not self._running:
            raise ServiceClosedError("service is not running; use 'async with'")
        if isinstance(query, str):
            query = parse_query(query)
        validate_query_columns(self.engine.db, query)
        loop = asyncio.get_running_loop()
        assert self._slots is not None
        self._counters.requests += 1
        if not wait and self._slots.locked():
            self._counters.rejected += 1
            raise ServiceOverloadedError(
                f"{self.config.max_queue} requests already in service; "
                f"retry later or submit with wait=True"
            )
        await self._slots.acquire()
        if not self._running:  # closed while waiting for admission
            self._slots.release()
            raise ServiceClosedError("service closed while awaiting admission")
        request = ServiceRequest(
            query=query,
            future=loop.create_future(),
            enqueued_at=loop.time(),
            suspected_bias=suspected_bias,
        )
        request.future.add_done_callback(lambda _f: self._slots.release())
        await self._batcher.put(request, wait=True)
        return await request.future

    async def submit_many(self, queries: Sequence[QueryLike]) -> List[Answer]:
        """Submit queries concurrently (one micro-batch candidate) and await all."""
        return list(await asyncio.gather(*(self.submit(q) for q in queries)))

    async def submit_progressive(
        self,
        query: QueryLike,
        budget: Optional[SamplingBudget] = None,
        suspected_bias: Optional[SuspectedBias] = None,
    ):
        """Submit one query for budgeted answering; iterate the refinements.

        An async iterator over :class:`~repro.core.Refinement`: the first
        element arrives after the budget's initial chunks complete, later
        ones as the estimate tightens, the last with ``final=True`` (exact,
        unless the budget truncates the run)::

            async for refinement in service.submit_progressive(sql):
                show(refinement.result, refinement.band)

        Identical in-flight queries are coalesced into **one** refinement
        sequence: subscribers that join mid-run first replay the
        refinements already emitted, then stream live — every subscriber
        sees the same sequence, and the engine runs it once.
        """
        if not self._running:
            raise ServiceClosedError("service is not running; use 'async with'")
        if isinstance(query, str):
            query = parse_query(query)
        validate_query_columns(self.engine.db, query)
        budget = budget if budget is not None else SamplingBudget()
        loop = asyncio.get_running_loop()
        self._counters.progressive_queries += 1
        key = (repr(query), repr(suspected_bias), budget)
        flight = self._progressive_flights.get(key)
        if flight is None:
            flight = _ProgressiveFlight()
            self._progressive_flights[key] = flight
            self._counters.progressive_flights += 1
            driver = loop.run_in_executor(
                self._pool, self._drive_progressive,
                loop, flight, key, query, budget, suspected_bias,
            )
            self._progressive_drivers.add(driver)
            driver.add_done_callback(self._progressive_drivers.discard)
        else:
            self._counters.progressive_coalesced += 1
        queue = flight.subscribe()
        while True:
            item = await queue.get()
            if item is _FLIGHT_DONE:
                return
            if isinstance(item, BaseException):
                raise item
            yield item

    def _drive_progressive(
        self,
        loop: "asyncio.AbstractEventLoop",
        flight: _ProgressiveFlight,
        key: Tuple,
        query: Query,
        budget: SamplingBudget,
        suspected_bias: Optional[SuspectedBias],
    ) -> None:
        """Worker-thread body: run the engine's refinement loop, publish."""
        last: Optional[Refinement] = None
        try:
            for refinement in self.engine.answer_progressive(
                query, budget=budget, suspected_bias=suspected_bias
            ):
                last = refinement
                self._counters.refinements_emitted += 1
                loop.call_soon_threadsafe(flight.publish, refinement)
            error: Optional[BaseException] = None
        except BaseException as exc:
            error = exc
        if last is not None:
            self._utilizations.append(last.budget_utilization)
        def _finish() -> None:
            self._progressive_flights.pop(key, None)
            flight.finish(error)
        loop.call_soon_threadsafe(_finish)

    # ------------------------------------------------------------------
    # Batch collection and dispatch
    # ------------------------------------------------------------------
    async def _collect_forever(self) -> None:
        while True:
            batch = await self._batcher.next_batch()
            self._counters.batches += 1
            self._batch_sizes.append(len(batch))
            for signature, (model, requests) in self._group(batch).items():
                task = asyncio.get_running_loop().create_task(
                    self._serve_group(signature, model, requests)
                )
                self._group_tasks.add(task)
                task.add_done_callback(self._group_tasks.discard)

    def _group(self, batch: List[ServiceRequest]):
        """Partition a batch by join signature (selection runs here)."""
        groups: Dict[Tuple, Tuple[Optional[_CompletionModelBase], List[ServiceRequest]]] = {}
        for request in batch:
            try:
                model, signature = self._route(request)
            except BaseException as exc:  # selection errors belong to the caller
                self._counters.failed += 1
                request.fail(exc)
                continue
            groups.setdefault(signature, (model, []))[1].append(request)
        return groups

    def _route(self, request: ServiceRequest):
        """Model selection → (model, join signature) for one request.

        Runs on the event loop, so it must stay cheap: plain selection is
        a ranked-list lookup, but *suspected-bias* selection evaluates
        candidate aggregates on completed joins — real completion work.
        Those requests are deferred to the worker thread instead (a
        private group; ``engine.answer`` performs the biased selection
        there), keeping the loop responsive for everyone else.
        """
        engine = self.engine
        incomplete = [
            t for t in request.query.tables
            if not engine.annotation.is_complete(t)
        ]
        if not incomplete:
            # Complete-only queries share a per-table-set signature so they
            # batch together, but they never run an incompleteness join.
            return None, ("__complete__", tuple(sorted(request.query.tables)))
        if request.suspected_bias is not None:
            return None, ("__bias__", id(request))
        target = engine._primary_target(incomplete)
        choice = engine.select_model(target, query=request.query)
        return choice.model, engine.join_signature(choice.model)

    async def _serve_group(
        self,
        signature: Tuple,
        model: Optional[_CompletionModelBase],
        requests: List[ServiceRequest],
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            if model is not None:
                await self._ensure_join(signature, model, len(requests))
        except BaseException as exc:
            for request in requests:
                self._counters.failed += 1
                request.fail(exc)
            return
        results = await loop.run_in_executor(
            self._pool, self._answer_group, model, requests
        )
        now = loop.time()
        for request, result in zip(requests, results):
            if isinstance(result, BaseException):
                self._counters.failed += 1
                request.fail(result)
            else:
                self._counters.completed += 1
                self._latencies_ms.append((now - request.enqueued_at) * 1000.0)
                request.succeed(result)

    async def _ensure_join(
        self, signature: Tuple, model: _CompletionModelBase, group_size: int
    ) -> None:
        """Single-flight: one incompleteness join per signature, ever.

        All inflight bookkeeping happens on the event-loop thread, so two
        groups can never both start a join for the same signature; later
        groups (and later batches) await the first join's future, and once
        it lands in the engine's join cache nobody computes it again.
        """
        loop = asyncio.get_running_loop()
        inflight = self._inflight_joins.get(signature)
        if inflight is None and not self.engine.join_cache.contains(signature):
            self._counters.joins_started += 1
            self._counters.coalesced_requests += group_size - 1
            inflight = asyncio.ensure_future(
                loop.run_in_executor(self._pool, self.engine.completed_join, model)
            )
            self._inflight_joins[signature] = inflight
            inflight.add_done_callback(
                lambda _f, s=signature: self._inflight_joins.pop(s, None)
            )
        elif inflight is not None:
            # Riding an in-flight join from an earlier batch is coalescing;
            # finding the join already cached is an ordinary cache hit and
            # is counted by the cache statistics, not here.
            self._counters.coalesced_requests += group_size
        if inflight is not None:
            await asyncio.shield(inflight)

    def _answer_group(
        self, model: Optional[_CompletionModelBase], requests: List[ServiceRequest]
    ) -> List:
        """Worker-thread body: answer every request against the shared join."""
        results: List = []
        for request in requests:
            try:
                if model is None:
                    answer = self.engine.answer(
                        request.query, suspected_bias=request.suspected_bias
                    )
                else:
                    answer = self.engine.answer(request.query, model=model)
                results.append(answer)
            except BaseException as exc:
                results.append(exc)
        return results

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Latency percentiles, batching/coalescing counters, cache and
        progressive-refinement metrics (refinements per query, budget
        utilization, partial-cache hit rate)."""
        latencies = np.asarray(self._latencies_ms, dtype=float)
        sizes = list(self._batch_sizes)
        utilizations = list(self._utilizations)
        flights = self._counters.progressive_flights
        progressive = {
            "queries": self._counters.progressive_queries,
            "flights": flights,
            "coalesced_queries": self._counters.progressive_coalesced,
            "refinements_emitted": self._counters.refinements_emitted,
            "mean_refinements_per_flight": (
                self._counters.refinements_emitted / flights if flights else 0.0
            ),
            "mean_budget_utilization": (
                float(np.mean(utilizations)) if utilizations else 0.0
            ),
        }
        return ServiceStats(
            requests=self._counters.requests,
            completed=self._counters.completed,
            failed=self._counters.failed,
            rejected=self._counters.rejected,
            queued=self._batcher.qsize(),
            batches=self._counters.batches,
            mean_batch_size=float(np.mean(sizes)) if sizes else 0.0,
            max_batch_size=max(sizes) if sizes else 0,
            joins_started=self._counters.joins_started,
            coalesced_requests=self._counters.coalesced_requests,
            p50_latency_ms=(
                float(np.percentile(latencies, 50)) if len(latencies) else 0.0
            ),
            p95_latency_ms=(
                float(np.percentile(latencies, 95)) if len(latencies) else 0.0
            ),
            cache=self.engine.cache_stats.as_dict(),
            progressive=progressive,
            partial_cache=self.engine.partial_cache_stats.as_dict(),
        )
