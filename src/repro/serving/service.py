"""The asyncio shell over the transport-agnostic serving core.

:class:`CompletionService` is a thin event-loop adapter around
:class:`~repro.serving.core.ServingCore`: the core owns micro-batching
policy, join-signature grouping, single-flight coalescing, admission and
every statistic; this shell contributes only what an event loop must —
awaitable admission, an asyncio batch collector, futures for callers, and
a thread pool so numpy crunches off the loop.  Joins for *different*
signatures run concurrently (the join cache is thread-safe), and the
observable behaviour — answers, errors, counters, backpressure — is
exactly the core's, which is also what the process workers of a
:class:`~repro.serving.FleetRouter` expose over the wire.

Queries are validated on submission: a column that does not exist in the
queried tables raises a ``ValueError`` listing the candidate columns —
never a raw ``KeyError`` from deep inside the executor.
"""

from __future__ import annotations

import asyncio
import contextlib
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

from ..core.engine import Answer, ReStore
from ..core.models import _CompletionModelBase
from ..core.progressive import SamplingBudget
from ..core.selection import SuspectedBias
from ..errors import ServiceClosedError
from .batching import MicroBatcher, ServiceRequest
from .core import (
    FLIGHT_DONE,
    QueryLike,
    ServiceConfig,
    ServiceStats,
    ServingCore,
)

__all__ = ["CompletionService", "ServiceConfig", "ServiceStats"]


class CompletionService:
    """Serve SPJA queries over one fitted :class:`~repro.core.ReStore`.

    Use as an async context manager (or call :meth:`start` / :meth:`close`
    explicitly)::

        async with CompletionService(engine) as service:
            answer = await service.submit(
                "SELECT AVG(price) FROM apartment;"
            )

    All submissions must come from the event loop the service was started
    on.  The engine is shared, not copied: answers are exactly what
    ``engine.answer`` would return, including completed-join provenance.

    A pre-built :class:`~repro.serving.ServingCore` may be passed instead
    of (engine, config) — e.g. to share one core between shells in tests.
    """

    def __init__(
        self,
        engine: ReStore,
        config: Optional[ServiceConfig] = None,
        core: Optional[ServingCore] = None,
    ):
        self.core = core if core is not None else ServingCore(engine, config)
        self.engine = self.core.engine
        self.config = self.core.config
        self._batcher = MicroBatcher(
            max_queue=self.config.max_queue,
            max_batch=self.config.max_batch,
            window_s=self.config.batch_window_s,
        )
        self._progressive_drivers: set = set()
        self._group_tasks: set = set()
        self._collector: Optional["asyncio.Task"] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "CompletionService":
        if self._running:
            return self
        self._batcher.start()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.n_workers,
            thread_name_prefix="restore-serve",
        )
        self._collector = asyncio.get_running_loop().create_task(
            self._collect_forever()
        )
        self._running = True
        return self

    async def close(self) -> None:
        """Stop admissions, finish in-flight groups, fail queued requests."""
        if not self._running:
            return
        self._running = False
        assert self._collector is not None and self._pool is not None
        self._collector.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._collector
        for request in self._batcher.drain():
            self.core.count_failed()
            request.fail(ServiceClosedError("service closed before dispatch"))
        if self._group_tasks:
            await asyncio.gather(*list(self._group_tasks), return_exceptions=True)
        if self._progressive_drivers:
            await asyncio.gather(*list(self._progressive_drivers),
                                 return_exceptions=True)
        self._pool.shutdown(wait=True)

    async def __aenter__(self) -> "CompletionService":
        return await self.start()

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Admission (awaitable adapter over the core's gate)
    # ------------------------------------------------------------------
    async def _acquire_slot(self, wait: bool) -> None:
        core = self.core
        if core.gate.try_acquire():
            return
        if not wait:
            core.count_rejected()
            raise core.overloaded_error()
        loop = asyncio.get_running_loop()
        granted: "asyncio.Future" = loop.create_future()

        def _grant_on_loop() -> None:
            if granted.cancelled():
                core.gate.release()  # slot arrived after the caller left
            else:
                granted.set_result(None)

        core.gate.acquire(
            lambda: loop.call_soon_threadsafe(_grant_on_loop)
        )
        await granted

    # ------------------------------------------------------------------
    # Front-end
    # ------------------------------------------------------------------
    async def submit(
        self,
        query: QueryLike,
        suspected_bias: Optional[SuspectedBias] = None,
        wait: bool = True,
    ) -> Answer:
        """Submit one query and await its answer.

        ``query`` is an SQL string (parsed with the package grammar) or a
        :class:`~repro.query.Query`.  Validation happens up front: unknown
        tables or columns raise ``ValueError`` naming the candidates.
        With ``wait=False`` a full admission gate raises
        :class:`~repro.errors.ServiceOverloadedError` instead of applying
        backpressure.
        """
        if not self._running:
            raise ServiceClosedError("service is not running; use 'async with'")
        query = self.core.prepare(query)
        loop = asyncio.get_running_loop()
        self.core.count_request()
        await self._acquire_slot(wait)
        if not self._running:  # closed while waiting for admission
            self.core.gate.release()
            raise ServiceClosedError("service closed while awaiting admission")
        request = ServiceRequest(
            query=query,
            future=loop.create_future(),
            enqueued_at=self.core.clock(),
            suspected_bias=suspected_bias,
        )
        request.future.add_done_callback(lambda _f: self.core.gate.release())
        await self._batcher.put(request, wait=True)
        return await request.future

    async def submit_many(self, queries: Sequence[QueryLike]) -> List[Answer]:
        """Submit queries concurrently (one micro-batch candidate) and await all."""
        return list(await asyncio.gather(*(self.submit(q) for q in queries)))

    async def submit_progressive(
        self,
        query: QueryLike,
        budget: Optional[SamplingBudget] = None,
        suspected_bias: Optional[SuspectedBias] = None,
    ):
        """Submit one query for budgeted answering; iterate the refinements.

        An async iterator over :class:`~repro.core.Refinement`: the first
        element arrives after the budget's initial chunks complete, later
        ones as the estimate tightens, the last with ``final=True`` (exact,
        unless the budget truncates the run)::

            async for refinement in service.submit_progressive(sql):
                show(refinement.result, refinement.band)

        Identical in-flight queries are coalesced into **one** refinement
        sequence (the core's progressive flights): subscribers that join
        mid-run first replay the refinements already emitted, then stream
        live — every subscriber sees the same sequence, and the engine
        runs it once.
        """
        if not self._running:
            raise ServiceClosedError("service is not running; use 'async with'")
        query = self.core.prepare(query)
        budget = budget if budget is not None else SamplingBudget()
        loop = asyncio.get_running_loop()
        key = self.core.progressive_key(query, budget, suspected_bias)
        flight, created = self.core.open_progressive(key)
        if created:
            driver = loop.run_in_executor(
                self._pool, self.core.drive_progressive,
                key, flight, query, budget, suspected_bias,
            )
            self._progressive_drivers.add(driver)
            driver.add_done_callback(self._progressive_drivers.discard)
        queue: "asyncio.Queue" = asyncio.Queue()
        flight.subscribe(
            lambda item: loop.call_soon_threadsafe(queue.put_nowait, item)
        )
        while True:
            item = await queue.get()
            if item is FLIGHT_DONE:
                return
            if isinstance(item, BaseException):
                raise item
            yield item

    # ------------------------------------------------------------------
    # Batch collection and dispatch
    # ------------------------------------------------------------------
    async def _collect_forever(self) -> None:
        while True:
            batch = await self._batcher.next_batch()
            self.core.record_batch(len(batch))
            groups, failures = self.core.group(batch)
            for request, exc in failures:
                request.fail(exc)
            for signature, (model, requests) in groups.items():
                task = asyncio.get_running_loop().create_task(
                    self._serve_group(signature, model, requests)
                )
                self._group_tasks.add(task)
                task.add_done_callback(self._group_tasks.discard)

    async def _serve_group(
        self,
        signature: Tuple,
        model: Optional[_CompletionModelBase],
        requests: List[ServiceRequest],
    ) -> None:
        """One signature group: single-flight join + answers, off the loop.

        The whole of :meth:`ServingCore.serve_group` runs on a pool
        thread; the single-flight *leader* computes the join in that same
        thread, so followers waiting on it can never starve the pool.
        """
        loop = asyncio.get_running_loop()
        results = await loop.run_in_executor(
            self._pool, self.core.serve_group, model, requests, signature
        )
        for request, result in zip(requests, results):
            if isinstance(result, BaseException):
                request.fail(result)
            else:
                request.succeed(result)

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    async def hot_swap(self, artifact_path) -> dict:
        """Swap to the engine stored at ``artifact_path`` without downtime.

        Loading and validation run on the worker pool (no event-loop
        stall); the core performs the swap only after the replacement
        loaded cleanly, so a corrupt artifact raises here and the old
        engine keeps serving.  Groups already dispatched finish on the
        engine they were routed against; later batches use the new one.
        """
        if self._running and self._pool is not None:
            loop = asyncio.get_running_loop()
            info = await loop.run_in_executor(
                self._pool, self.core.hot_swap, artifact_path
            )
        else:
            info = self.core.hot_swap(artifact_path)
        self.engine = self.core.engine
        return info

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Latency percentiles, batching/coalescing counters, cache and
        progressive-refinement metrics (refinements per query, budget
        utilization, partial-cache hit rate) — the core's one truthful
        snapshot."""
        return self.core.stats(queued=self._batcher.qsize())
