"""Versioned model artifacts: persist a fitted engine, reload it anywhere.

ReStore's premise is train-once / query-many (paper §4–§6), so a fitted
engine is a durable asset: per-path model weights, the shared column
codecs, the incomplete database they were fitted on, the candidate
rankings of §5 and the engine configuration.  This module serializes all
of it to a directory:

.. code-block:: text

    artifact/
      manifest.json    format version, repro version, seed, scenario,
                       per-file sha256 hashes, database content digest
      config.json      ReStoreConfig (model + training hyper-parameters)
      schema.json      tables, column kinds, foreign keys, annotation
      database.npz     every column of the incomplete database (+ TF masks)
      encoders.json/.npz   fitted codec state per table.column
      models.json/.npz     named parameter arrays + per-model metadata

``load_artifact`` reconstructs a ready-to-answer engine that is
*bitwise-equivalent* to the saved one: identical completed joins (up to
row order) at the same seed, for any ``chunk_size`` / worker count.  The
guarantees rest on three design choices:

* model parameters are stored under **stable names**
  (:meth:`repro.nn.Module.named_parameters`) as exact float64 arrays,
* codec state is serialized explicitly (no refitting on load), and the
  reconstructed path layouts are *verified* against the stored variable
  layout — a drifted schema fails loudly instead of sampling garbage,
* the database digest in the manifest ties the artifact to its data, so
  loading into a live engine with different data is a clear error.

Failure taxonomy (canonical home :mod:`repro.errors`):
:class:`~repro.errors.ArtifactVersionError` (format mismatch),
:class:`~repro.errors.ArtifactIntegrityError` (corrupted/tampered files),
:class:`~repro.errors.ArtifactSchemaError` (artifact does not fit the
target schema), all subclasses of :class:`~repro.errors.ArtifactError`
(a ``ValueError``).

.. warning::
   Artifacts are **trusted inputs**, like pickle/``torch.load`` files:
   object-dtype database columns deserialize through numpy's pickle
   path, and the manifest hashes detect *corruption*, not tampering
   (they live in the artifact itself).  Only load artifacts you or your
   pipeline produced.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from .._compat import deprecated_attrs
from ..core.engine import ReStore, ReStoreConfig
from ..errors import (
    ArtifactError as _ArtifactError,
    ArtifactIntegrityError as _ArtifactIntegrityError,
    ArtifactLineageError as _ArtifactLineageError,
    ArtifactSchemaError as _ArtifactSchemaError,
    ArtifactVersionError as _ArtifactVersionError,
)
from ..core.forest import EvidenceForest
from ..core.models import (
    ARCompletionModel,
    ModelConfig,
    SSARCompletionModel,
    _CompletionModelBase,
)
from ..core.path_data import PathLayout
from ..core.selection import CandidateScore
from ..encoding import TableEncoder
from ..nn import TrainConfig
from ..nn.train import TrainResult
from ..relational import (
    ColumnKind,
    CompletionPath,
    Database,
    ForeignKey,
    SchemaAnnotation,
    Table,
    fan_out_relations,
)
from ..version import repro_version

FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_CONFIG = "config.json"
_SCHEMA = "schema.json"
_DATABASE = "database.npz"
_DATABASE_STORE = "database_store"
_ENCODERS_JSON = "encoders.json"
_ENCODERS_NPZ = "encoders.npz"
_MODELS_JSON = "models.json"
_MODELS_NPZ = "models.npz"

_HASHED_FILES = (
    _CONFIG, _SCHEMA, _DATABASE,
    _ENCODERS_JSON, _ENCODERS_NPZ, _MODELS_JSON, _MODELS_NPZ,
)

#: The only config fields a load may override: they change how completion
#: *executes* (chunking, pooling, cache sizing), never which rows it
#: produces — the runtime's determinism contract.  Everything else (seed,
#: binning, model architecture) is part of the trained state.
EXECUTION_CONFIG_FIELDS = frozenset(
    {"chunk_size", "n_workers", "parallel_backend", "join_cache_size"}
)


# ======================================================================
# Generic array/JSON splitting
# ======================================================================

def _extract_arrays(obj, prefix: str, arrays: Dict[str, np.ndarray]):
    """Replace numpy leaves with references, collecting them for one npz."""
    if isinstance(obj, np.ndarray):
        arrays[prefix] = obj
        return {"__array__": prefix}
    if isinstance(obj, dict):
        return {
            str(k): _extract_arrays(v, f"{prefix}/{k}", arrays)
            for k, v in obj.items()
        }
    if isinstance(obj, (list, tuple)):
        return [
            _extract_arrays(v, f"{prefix}/{i}", arrays)
            for i, v in enumerate(obj)
        ]
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    return obj


def _restore_arrays(obj, arrays: Dict[str, np.ndarray]):
    """Inverse of :func:`_extract_arrays` (tuples come back as lists)."""
    if isinstance(obj, dict):
        if set(obj) == {"__array__"}:
            return arrays[obj["__array__"]]
        return {k: _restore_arrays(v, arrays) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_restore_arrays(v, arrays) for v in obj]
    return obj


def _write_json(path: Path, obj) -> None:
    path.write_text(json.dumps(obj, indent=2, sort_keys=True), encoding="utf-8")


def _read_json(path: Path, what: str):
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError as exc:
        raise _ArtifactIntegrityError(f"artifact is missing {what} ({path.name})") from exc
    except json.JSONDecodeError as exc:
        raise _ArtifactIntegrityError(f"{what} ({path.name}) is not valid JSON: {exc}") from exc


def _write_npz(path: Path, arrays: Dict[str, np.ndarray]) -> None:
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)


def _read_npz(path: Path, what: str) -> Dict[str, np.ndarray]:
    try:
        with np.load(path, allow_pickle=True) as npz:
            return {key: npz[key] for key in npz.files}
    except FileNotFoundError as exc:
        raise _ArtifactIntegrityError(f"artifact is missing {what} ({path.name})") from exc
    except (OSError, ValueError) as exc:
        raise _ArtifactIntegrityError(f"{what} ({path.name}) is unreadable: {exc}") from exc


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


# ======================================================================
# Database state
# ======================================================================

def _stable_bytes(arr: np.ndarray) -> bytes:
    """Content bytes independent of object identity (for digests)."""
    arr = np.asarray(arr)
    if arr.dtype == object:
        return b"\x1f".join(repr(v).encode() for v in arr.tolist())
    return np.ascontiguousarray(arr).tobytes()


def database_digest(db: Database, annotation: SchemaAnnotation) -> str:
    """A stable content hash of an (incomplete) database + annotation."""
    digest = hashlib.sha256()
    for name in db.table_names():
        table = db.table(name)
        digest.update(f"{name}:{table.primary_key}".encode())
        for column in table.column_names:
            arr = table[column]
            digest.update(
                f"{column}:{table.meta(column).kind.value}:{arr.dtype}".encode()
            )
            digest.update(_stable_bytes(arr))
    for fk in db.foreign_keys:
        digest.update(str(fk).encode())
    digest.update(repr(sorted(annotation.complete_tables)).encode())
    digest.update(repr(sorted(annotation.incomplete_tables)).encode())
    for key in sorted(annotation.known_tuple_factors):
        digest.update(key.encode())
        digest.update(_stable_bytes(annotation.known_tuple_factors[key]))
    return digest.hexdigest()


def _database_state(
    db: Database, annotation: SchemaAnnotation, include_tables: bool = True
):
    arrays: Dict[str, np.ndarray] = {}
    tables = []
    for name in db.table_names():
        table = db.table(name)
        columns = []
        for column in table.column_names:
            if include_tables:
                arrays[f"table/{name}/{column}"] = table[column]
            columns.append({"name": column, "kind": table.meta(column).kind.value})
        tables.append({
            "name": name,
            "primary_key": table.primary_key,
            "columns": columns,
        })
    tf_entries = []
    for i, (fk_str, values) in enumerate(sorted(annotation.known_tuple_factors.items())):
        key = f"annotation/tf/{i}"
        arrays[key] = np.asarray(values, dtype=np.int64)
        tf_entries.append({"fk": fk_str, "array": key})
    schema = {
        "tables": tables,
        "foreign_keys": [asdict(fk) for fk in db.foreign_keys],
        "annotation": {
            "complete": sorted(annotation.complete_tables),
            "incomplete": sorted(annotation.incomplete_tables),
            "tuple_factors": tf_entries,
        },
    }
    return schema, arrays


def _annotation_from_state(schema, arrays) -> SchemaAnnotation:
    ann = schema["annotation"]
    return SchemaAnnotation(
        complete_tables=set(ann["complete"]),
        incomplete_tables=set(ann["incomplete"]),
        known_tuple_factors={
            entry["fk"]: np.asarray(arrays[entry["array"]], dtype=np.int64)
            for entry in ann["tuple_factors"]
        },
    )


def _database_from_state(schema, arrays) -> Tuple[Database, SchemaAnnotation]:
    try:
        tables = []
        for entry in schema["tables"]:
            data = {
                col["name"]: arrays[f"table/{entry['name']}/{col['name']}"]
                for col in entry["columns"]
            }
            kinds = {
                col["name"]: ColumnKind(col["kind"]) for col in entry["columns"]
            }
            tables.append(
                Table(entry["name"], data, kinds, primary_key=entry["primary_key"])
            )
        db = Database(tables, [ForeignKey(**fk) for fk in schema["foreign_keys"]])
        annotation = _annotation_from_state(schema, arrays)
    except (KeyError, TypeError, ValueError) as exc:
        raise _ArtifactIntegrityError(f"database state is inconsistent: {exc}") from exc
    return db, annotation


def _database_from_store(path: Path, schema, arrays) -> Tuple[Database, SchemaAnnotation]:
    """Reopen a columnar artifact's database (lazy, memory-mapped tables)."""
    store_dir = path / _DATABASE_STORE
    if not store_dir.is_dir():
        raise _ArtifactIntegrityError(
            f"columnar artifact is missing its {_DATABASE_STORE}/ directory"
        )
    try:
        db = Database.from_store(str(store_dir))
        annotation = _annotation_from_state(schema, arrays)
    except (KeyError, TypeError, ValueError) as exc:
        raise _ArtifactIntegrityError(f"database store is inconsistent: {exc}") from exc
    return db, annotation


def _store_file_hashes(store_dir: Path) -> Dict[str, str]:
    """Relative path -> sha256 for every file under the database store."""
    return {
        str(file.relative_to(store_dir)): _sha256_file(file)
        for file in sorted(store_dir.rglob("*"))
        if file.is_file()
    }


# ======================================================================
# Config state
# ======================================================================

def _config_to_dict(config: ReStoreConfig) -> dict:
    return _extract_arrays(asdict(config), "config", {})


def _config_from_dict(data: dict) -> ReStoreConfig:
    try:
        data = dict(data)
        model = dict(data.pop("model"))
        train = dict(model.pop("train"))
        model["hidden"] = tuple(model["hidden"])
        model_config = ModelConfig(train=TrainConfig(**train), **model)
        data["chunk_size"] = (
            None if data.get("chunk_size") is None else int(data["chunk_size"])
        )
        return ReStoreConfig(model=model_config, **data)
    except (KeyError, TypeError) as exc:
        raise _ArtifactIntegrityError(f"stored config is inconsistent: {exc}") from exc


# ======================================================================
# Model state
# ======================================================================

def _train_summary(result: Optional[TrainResult]) -> Optional[dict]:
    if result is None:
        return None
    return {
        "train_losses": [float(x) for x in result.train_losses],
        "val_losses": [float(x) for x in result.val_losses],
        "best_val_loss": float(result.best_val_loss),
        "epochs_run": int(result.epochs_run),
        "wall_time_s": float(result.wall_time_s),
        "backend": result.backend,
        "epoch_wall_times_s": [float(x) for x in result.epoch_wall_times_s],
        "warm_start": bool(result.warm_start),
    }


def _train_result_from(summary: Optional[dict]) -> Optional[TrainResult]:
    if summary is None:
        return None
    return TrainResult(
        train_losses=list(summary["train_losses"]),
        val_losses=list(summary["val_losses"]),
        best_val_loss=float(summary["best_val_loss"]),
        epochs_run=int(summary["epochs_run"]),
        wall_time_s=float(summary["wall_time_s"]),
        val_indices=None,
        # Artifacts written before the fused runtime carry neither field;
        # every model back then was trained on the autograd engine.
        backend=summary.get("backend", "autograd"),
        epoch_wall_times_s=[
            float(x) for x in summary.get("epoch_wall_times_s", [])
        ],
        # Pre-incremental artifacts never warm-started.
        warm_start=bool(summary.get("warm_start", False)),
    )


def _models_state(engine: ReStore):
    arrays: Dict[str, np.ndarray] = {}
    entries = []
    for i, ((kind, tables), model) in enumerate(engine.fitted_models().items()):
        state = model.state_dict()
        for name, value in state.items():
            arrays[f"model/{i}/{name}"] = value
        entries.append({
            "index": i,
            "kind": kind,
            "path": list(tables),
            "config": _extract_arrays(asdict(model.config), f"modelcfg/{i}", {}),
            "param_names": list(state),
            "num_variables": model.layout.num_variables,
            "vocab_sizes": [int(v) for v in model.layout.vocab_sizes()],
            "tf_caps": {
                str(slot): codec.cap
                for slot, codec in model.layout.tf_codecs.items()
            },
            "inference_backend": model.inference_backend,
            "train_summary": _train_summary(model.train_result),
        })
    candidates = {
        target: [
            {
                "kind": score.model.kind,
                "path": list(score.path.tables),
                "target_loss": float(score.target_loss),
                "marginal_loss": float(score.marginal_loss),
                "derived_score": (
                    None if score.derived_score is None
                    else float(score.derived_score)
                ),
            }
            for score in scores
        ]
        for target, scores in engine.candidate_scores().items()
    }
    return {"models": entries, "candidates": candidates}, arrays


def _model_config_from_dict(data: dict) -> ModelConfig:
    data = dict(data)
    train = dict(data.pop("train"))
    data["hidden"] = tuple(data["hidden"])
    return ModelConfig(train=TrainConfig(**train), **data)


def _verify_layout(layout: PathLayout, entry: dict) -> None:
    """The reconstructed layout must match the one the weights were fit on."""
    stored_caps = {int(slot): int(cap) for slot, cap in entry["tf_caps"].items()}
    actual_caps = {slot: codec.cap for slot, codec in layout.tf_codecs.items()}
    problems = []
    if layout.num_variables != entry["num_variables"]:
        problems.append(
            f"{layout.num_variables} variables vs stored {entry['num_variables']}"
        )
    if [int(v) for v in layout.vocab_sizes()] != list(entry["vocab_sizes"]):
        problems.append("vocabulary sizes differ")
    if actual_caps != stored_caps:
        problems.append(
            f"tuple-factor caps {actual_caps} vs stored {stored_caps}"
        )
    if problems:
        raise _ArtifactSchemaError(
            f"layout mismatch for {entry['kind']} model on path "
            f"{tuple(entry['path'])}: {'; '.join(problems)}"
        )


def _models_from_state(
    meta: dict,
    arrays: Dict[str, np.ndarray],
    db: Database,
    annotation: SchemaAnnotation,
    encoders: Dict[str, TableEncoder],
):
    models: Dict[Tuple[str, Tuple[str, ...]], _CompletionModelBase] = {}
    for entry in meta["models"]:
        path = CompletionPath(tuple(entry["path"]))
        layout = PathLayout(db, annotation, path, encoders)
        _verify_layout(layout, entry)
        config = _model_config_from_dict(entry["config"])
        if entry["kind"] == "ar":
            model: _CompletionModelBase = ARCompletionModel(layout, config)
        elif entry["kind"] == "ssar":
            walks = fan_out_relations(db, annotation, path)
            if not walks:
                raise _ArtifactSchemaError(
                    f"stored SSAR model on {path} has no fan-out walks "
                    f"in the loaded schema"
                )
            forest = EvidenceForest(
                db, path.tables[0], walks, encoders,
                self_evidence_table=path.target,
            )
            model = SSARCompletionModel(layout, forest, config)
        else:
            raise _ArtifactSchemaError(f"unknown model kind {entry['kind']!r}")
        prefix = f"model/{entry['index']}/"
        try:
            state = {name: arrays[prefix + name] for name in entry["param_names"]}
        except KeyError as exc:
            raise _ArtifactIntegrityError(
                f"model parameter array missing from {_MODELS_NPZ}: {exc}"
            ) from exc
        try:
            model.load_state_dict(state)
        except ValueError as exc:
            raise _ArtifactSchemaError(
                f"stored weights do not fit the reconstructed "
                f"{entry['kind']} model on {path}: {exc}"
            ) from exc
        model.inference_backend = entry["inference_backend"]
        model.mark_fitted_from_artifact(_train_result_from(entry["train_summary"]))
        models[(entry["kind"], path.tables)] = model

    candidates: Dict[str, List[CandidateScore]] = {}
    for target, scores in meta["candidates"].items():
        rebuilt = []
        for score in scores:
            key = (score["kind"], tuple(score["path"]))
            if key not in models:
                raise _ArtifactIntegrityError(
                    f"candidate list references unknown model {key}"
                )
            rebuilt.append(CandidateScore(
                model=models[key],
                target_loss=float(score["target_loss"]),
                marginal_loss=float(score["marginal_loss"]),
                derived_score=(
                    None if score["derived_score"] is None
                    else float(score["derived_score"])
                ),
            ))
        candidates[target] = rebuilt
    return models, candidates


# ======================================================================
# Public API
# ======================================================================

def save_artifact(
    engine: ReStore,
    path,
    scenario: Optional[str] = None,
    overwrite: bool = False,
    parent=None,
    delta=None,
    columnar: bool = False,
) -> Path:
    """Serialize a fitted engine to ``path`` (a directory) and return it.

    ``scenario`` optionally records the registry scenario name the
    engine's dataset came from (provenance only; defaults to the engine's
    ``scenario_name``).  Refuses to clobber an existing non-empty
    directory unless ``overwrite`` is set.

    ``columnar`` stores the database as a memory-mapped column store
    (``database_store/``, one spill directory per table) instead of
    packing every column into ``database.npz``: loading such an artifact
    reopens the tables lazily, so a scale-tier engine serves without ever
    materializing its database in RAM.  The store's files are hashed into
    the manifest under ``store_files`` (``database.npz`` still carries
    the tuple-factor annotation arrays), and the database content digest
    is identical for both layouts — the two formats are interchangeable
    provenance-wise.

    ``parent`` (a path to the artifact this one was derived from — e.g.
    by :meth:`~repro.core.ReStore.fine_tune` after mutations) records
    lineage in the manifest: the parent's database digest and, when
    ``delta`` (a :class:`~repro.incremental.MutationDelta`) is given, the
    per-table mutation counts separating the two.  Lineage of a chain of
    incremental refreshes is then verifiable offline with
    :func:`verify_lineage`.
    """
    if not engine.fitted_models():
        raise ValueError("engine has no fitted models; call fit() before saving")
    if scenario is None:
        scenario = engine.scenario_name
    lineage = None
    if parent is not None:
        parent = Path(parent)
        try:
            parent_manifest = read_manifest(parent)
        except _ArtifactError as exc:
            raise _ArtifactLineageError(
                f"parent artifact at {parent} is unreadable: {exc}"
            ) from exc
        lineage = {
            "parent_path": str(parent),
            "parent_digest": parent_manifest.get("database_digest"),
            "parent_created_unix": parent_manifest.get("created_unix"),
            "delta": None if delta is None else delta.counts(),
        }
    elif delta is not None:
        raise _ArtifactLineageError(
            "delta metadata requires a parent artifact to anchor lineage"
        )
    path = Path(path)
    if path.exists() and any(path.iterdir()) and not overwrite:
        raise FileExistsError(
            f"{path} exists and is not empty (pass overwrite=True to replace)"
        )
    path.mkdir(parents=True, exist_ok=True)

    schema, db_arrays = _database_state(
        engine.db, engine.annotation, include_tables=not columnar
    )
    store_hashes: Optional[Dict[str, str]] = None
    if columnar:
        # Tables go to a per-table mapped store (streamed in blocks);
        # database.npz keeps only the small tuple-factor arrays.
        store_dir = path / _DATABASE_STORE
        engine.db.spill_to(str(store_dir))
        store_hashes = _store_file_hashes(store_dir)
    encoder_arrays: Dict[str, np.ndarray] = {}
    encoders_meta = {
        name: _extract_arrays(
            encoder.get_state(), f"encoder/{name}", encoder_arrays
        )
        for name, encoder in engine.encoders.items()
    }
    models_meta, model_arrays = _models_state(engine)

    _write_json(path / _CONFIG, _config_to_dict(engine.config))
    _write_json(path / _SCHEMA, schema)
    _write_npz(path / _DATABASE, db_arrays)
    _write_json(path / _ENCODERS_JSON, encoders_meta)
    _write_npz(path / _ENCODERS_NPZ, encoder_arrays)
    _write_json(path / _MODELS_JSON, models_meta)
    _write_npz(path / _MODELS_NPZ, model_arrays)

    train_backends = sorted({
        entry["train_summary"]["backend"]
        for entry in models_meta["models"]
        if entry["train_summary"] is not None
    })
    manifest = {
        "format_version": FORMAT_VERSION,
        "repro_version": repro_version(),
        "seed": engine.config.seed,
        "scenario": scenario,
        "created_unix": time.time(),
        "database_digest": database_digest(engine.db, engine.annotation),
        "num_models": len(models_meta["models"]),
        "targets": sorted(models_meta["candidates"]),
        "train_backends": train_backends,
        "files": {name: _sha256_file(path / name) for name in _HASHED_FILES},
    }
    if columnar:
        manifest["database_format"] = "columnar"
        manifest["store_files"] = store_hashes
    if lineage is not None:
        manifest["lineage"] = lineage
    _write_json(path / _MANIFEST, manifest)
    return path


def artifact_lineage(path) -> Optional[dict]:
    """The lineage block of an artifact's manifest (``None`` for roots)."""
    return read_manifest(Path(path)).get("lineage")


def verify_lineage(path, parent_path=None) -> dict:
    """Check an artifact's recorded lineage against its actual parent.

    Reads the child's lineage block and the parent's manifest and
    verifies the recorded parent digest matches the parent's actual
    database digest.  ``parent_path`` defaults to the recorded one.
    Returns the lineage block on success.

    Raises
    ------
    ArtifactLineageError
        When the child records no lineage, the parent is unreadable, or
        the digests disagree (the recorded parent is not this parent).
    """
    path = Path(path)
    lineage = artifact_lineage(path)
    if lineage is None:
        raise _ArtifactLineageError(f"artifact at {path} records no lineage")
    parent = Path(parent_path) if parent_path is not None else Path(
        lineage.get("parent_path", "")
    )
    try:
        parent_manifest = read_manifest(parent)
    except _ArtifactError as exc:
        raise _ArtifactLineageError(
            f"parent artifact at {parent} is unreadable: {exc}"
        ) from exc
    actual = parent_manifest.get("database_digest")
    recorded = lineage.get("parent_digest")
    if actual != recorded:
        raise _ArtifactLineageError(
            f"lineage mismatch: artifact records parent digest "
            f"{str(recorded)[:12]}… but {parent} has {str(actual)[:12]}…"
        )
    return lineage


def read_manifest(path) -> dict:
    """The artifact's manifest, after a format-version check."""
    manifest = _read_json(Path(path) / _MANIFEST, "manifest")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise _ArtifactVersionError(
            f"artifact format version {version!r} is not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    return manifest


def verify_artifact(path) -> dict:
    """Check every file against the manifest hashes; return the manifest."""
    path = Path(path)
    manifest = read_manifest(path)
    files = manifest.get("files")
    if not isinstance(files, dict) or set(files) != set(_HASHED_FILES):
        raise _ArtifactIntegrityError(
            "manifest does not list the expected artifact files"
        )
    for name, expected in files.items():
        target = path / name
        if not target.exists():
            raise _ArtifactIntegrityError(f"artifact file {name} is missing")
        actual = _sha256_file(target)
        if actual != expected:
            raise _ArtifactIntegrityError(
                f"artifact file {name} is corrupted "
                f"(sha256 {actual[:12]}… != recorded {expected[:12]}…)"
            )
    if manifest.get("database_format") == "columnar":
        store_files = manifest.get("store_files")
        if not isinstance(store_files, dict) or not store_files:
            raise _ArtifactIntegrityError(
                "columnar artifact manifest lists no store files"
            )
        store_dir = path / _DATABASE_STORE
        for rel, expected in store_files.items():
            target = store_dir / rel
            if not target.exists():
                raise _ArtifactIntegrityError(
                    f"database store file {rel} is missing"
                )
            actual = _sha256_file(target)
            if actual != expected:
                raise _ArtifactIntegrityError(
                    f"database store file {rel} is corrupted "
                    f"(sha256 {actual[:12]}… != recorded {expected[:12]}…)"
                )
    return manifest


def load_artifact(
    path,
    config_overrides: Optional[Dict] = None,
    engine: Optional[ReStore] = None,
) -> ReStore:
    """Reconstruct a ready-to-answer engine from a saved artifact.

    With ``engine`` given, the fitted state is loaded *into* that live
    engine instead (its database must match the artifact's digest —
    anything else is an :class:`_ArtifactSchemaError`); its join cache is
    invalidated and its cache statistics reset, so ``cache_stats`` stays
    truthful.  ``config_overrides`` (fresh engines only) replaces
    execution settings such as ``chunk_size`` / ``n_workers`` /
    ``parallel_backend`` — the completed joins are identical for all of
    them, per the runtime's chunking contract.
    """
    path = Path(path)
    manifest = verify_artifact(path)

    schema = _read_json(path / _SCHEMA, "schema")
    db_arrays = _read_npz(path / _DATABASE, "database")
    if manifest.get("database_format") == "columnar":
        db, annotation = _database_from_store(path, schema, db_arrays)
    else:
        db, annotation = _database_from_state(schema, db_arrays)
    digest = database_digest(db, annotation)
    if digest != manifest.get("database_digest"):
        raise _ArtifactIntegrityError(
            "reconstructed database does not match the manifest digest"
        )

    encoder_arrays = _read_npz(path / _ENCODERS_NPZ, "encoder arrays")
    encoders_meta = _restore_arrays(
        _read_json(path / _ENCODERS_JSON, "encoder state"), encoder_arrays
    )
    try:
        encoders = {
            name: TableEncoder.from_state(state)
            for name, state in encoders_meta.items()
        }
    except (KeyError, ValueError) as exc:
        raise _ArtifactIntegrityError(f"encoder state is inconsistent: {exc}") from exc

    if engine is None:
        config = _config_from_dict(_read_json(path / _CONFIG, "config"))
        if config_overrides:
            forbidden = set(config_overrides) - EXECUTION_CONFIG_FIELDS
            if forbidden:
                raise _ArtifactError(
                    f"config_overrides may only change execution settings "
                    f"{sorted(EXECUTION_CONFIG_FIELDS)}; {sorted(forbidden)} "
                    f"belong to the trained state (re-fit instead)"
                )
            try:
                config = replace(config, **config_overrides)
            except TypeError as exc:
                raise _ArtifactError(f"invalid config override: {exc}") from exc
        engine = ReStore(db, annotation, config)
    else:
        if config_overrides:
            raise _ArtifactError(
                "config_overrides only applies when loading a fresh engine"
            )
        if database_digest(engine.db, engine.annotation) != digest:
            raise _ArtifactSchemaError(
                "live engine's database does not match the artifact "
                "(digest mismatch); load into a fresh engine instead"
            )
        # Build the restored state on the live engine's own objects.
        db, annotation = engine.db, engine.annotation

    model_arrays = _read_npz(path / _MODELS_NPZ, "model arrays")
    models_meta = _read_json(path / _MODELS_JSON, "model state")
    models_meta = {
        "models": [
            {**entry, "config": _restore_arrays(entry["config"], model_arrays)}
            for entry in models_meta["models"]
        ],
        "candidates": models_meta["candidates"],
    }
    models, candidates = _models_from_state(
        models_meta, model_arrays, db, annotation, encoders
    )
    engine.adopt_fitted_state(models, candidates, encoders=encoders)
    engine.scenario_name = manifest.get("scenario")
    return engine


#: The error classes moved to :mod:`repro.errors` (one taxonomy, stable
#: wire codes); the old ``repro.serving.artifacts`` paths keep resolving
#: with a one-time DeprecationWarning.
__getattr__ = deprecated_attrs(__name__, {
    "ArtifactError": "repro.errors",
    "ArtifactVersionError": "repro.errors",
    "ArtifactIntegrityError": "repro.errors",
    "ArtifactSchemaError": "repro.errors",
})
