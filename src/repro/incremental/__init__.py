"""Incremental completion: live mutations, delta invalidation, drift.

The fit-once/complete-once engine becomes a *live* one in three layers:

* **mutations** (:mod:`~repro.incremental.mutations`) — a tuple-granular
  mutation API over the base database.  :func:`apply_mutations` applies
  inserts/updates/deletes (cascade-aware) and returns the mutated
  database plus a :class:`MutationDelta` naming every changed row.
* **invalidation** (:mod:`~repro.incremental.invalidation`) — maps a
  delta through a model's table closure onto the canonical chunk grid,
  deciding per join signature whether nothing, a subset of root chunks,
  or everything must be re-walked (:func:`plan_invalidation`).
* **drift** (:mod:`~repro.incremental.drift`) — per-table encoded
  distribution summaries and a total-variation drift report that
  recommends ``skip`` / ``fine_tune`` / ``refit``.

The engine-facing entry points are :meth:`repro.ReStore.apply_mutations`,
:meth:`~repro.ReStore.recomplete`, :meth:`~repro.ReStore.check_drift` and
:meth:`~repro.ReStore.fine_tune`.
"""

from .drift import (
    DriftReport,
    DriftThresholds,
    detect_drift,
    distribution_summary,
    total_variation,
)
from .invalidation import Invalidation, affected_tasks, plan_invalidation
from .mutations import MutationDelta, TableDelta, apply_mutations

__all__ = [
    "MutationDelta",
    "TableDelta",
    "apply_mutations",
    "Invalidation",
    "plan_invalidation",
    "affected_tasks",
    "DriftReport",
    "DriftThresholds",
    "detect_drift",
    "distribution_summary",
    "total_variation",
]
