"""Distribution drift over the encoded code space of each table.

A drift summary is cheap and model-free: for every table, encode the
current rows with the engine's *fit-time* encoders and histogram each
encoded column over its fixed vocabulary.  Comparing summaries with
total-variation distance then answers "how far has the data moved in
the space the models were trained on" — exactly the quantity that
decides whether cached models are still usable.

:func:`detect_drift` maps the worst per-column distance onto a
recommendation: ``skip`` (below the fine-tune threshold), ``fine_tune``
(warm-start a few epochs from the fitted parameters), or ``refit``
(the code-space distribution moved too far for a warm start).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

import numpy as np

from ..encoding import TableEncoder
from ..relational import Database

__all__ = [
    "DriftThresholds",
    "DriftReport",
    "distribution_summary",
    "total_variation",
    "detect_drift",
]

#: One drift summary: ``{table: {column: normalized histogram}}``.
Summary = Mapping[str, Mapping[str, np.ndarray]]


@dataclass(frozen=True)
class DriftThresholds:
    """TV-distance cut points mapping drift to an action."""

    fine_tune: float = 0.02
    refit: float = 0.25

    def __post_init__(self) -> None:
        if not (0.0 <= self.fine_tune <= self.refit <= 1.0):
            raise ValueError(
                "thresholds must satisfy 0 <= fine_tune <= refit <= 1"
            )

    def recommend(self, drift: float) -> str:
        if drift < self.fine_tune:
            return "skip"
        if drift < self.refit:
            return "fine_tune"
        return "refit"


@dataclass(frozen=True)
class DriftReport:
    """Per-table drift distances and the resulting recommendation."""

    per_table: Mapping[str, float] = field(default_factory=dict)
    max_drift: float = 0.0
    recommendation: str = "skip"
    thresholds: DriftThresholds = DriftThresholds()

    def drifted_tables(self) -> Dict[str, float]:
        """Tables at or above the fine-tune threshold, worst first."""
        return dict(
            sorted(
                ((t, d) for t, d in self.per_table.items()
                 if d >= self.thresholds.fine_tune),
                key=lambda item: -item[1],
            )
        )


def distribution_summary(
    db: Database, encoders: Mapping[str, TableEncoder]
) -> Dict[str, Dict[str, np.ndarray]]:
    """Per-table, per-column normalized histograms of encoded codes.

    Histograms span each codec's full vocabulary, so summaries built
    with the same encoders are always comparable bin-for-bin.  Tables
    without modelable columns (or absent from the encoder map) summarize
    to an empty dict; empty tables yield all-zero histograms.
    """
    summaries: Dict[str, Dict[str, np.ndarray]] = {}
    for name in db.table_names():
        encoder = encoders.get(name)
        if encoder is None or not encoder.columns:
            summaries[name] = {}
            continue
        codes = encoder.encode_table(db.table(name))
        rows = codes.shape[0]
        hists: Dict[str, np.ndarray] = {}
        for i, (column, vocab) in enumerate(
            zip(encoder.columns, encoder.vocab_sizes())
        ):
            counts = np.bincount(codes[:, i], minlength=vocab).astype(np.float64)
            hists[column] = counts / rows if rows else counts
        summaries[name] = hists
    return summaries


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """TV distance between two histograms over the same vocabulary."""
    if p.shape != q.shape:
        raise ValueError(
            f"histogram shapes differ ({p.shape} vs {q.shape}); "
            "summaries must be built with the same encoders"
        )
    return float(0.5 * np.abs(p - q).sum())


def detect_drift(
    baseline: Summary,
    current: Summary,
    thresholds: DriftThresholds = DriftThresholds(),
) -> DriftReport:
    """Compare two summaries table-by-table and recommend an action.

    A table's distance is the worst TV distance over its columns; the
    report's ``max_drift`` is the worst table.  Tables or columns
    present in only one summary (or with mismatched vocabularies) count
    as fully drifted (1.0) — a schema change is always a refit.
    """
    per_table: Dict[str, float] = {}
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline or name not in current:
            per_table[name] = 1.0
            continue
        p_cols, q_cols = baseline[name], current[name]
        if set(p_cols) != set(q_cols):
            per_table[name] = 1.0
            continue
        worst = 0.0
        for column, p in p_cols.items():
            q = q_cols[column]
            if p.shape != q.shape:
                worst = 1.0
                break
            worst = max(worst, total_variation(p, q))
        per_table[name] = worst
    max_drift = max(per_table.values(), default=0.0)
    return DriftReport(
        per_table=per_table,
        max_drift=max_drift,
        recommendation=thresholds.recommend(max_drift),
        thresholds=thresholds,
    )
