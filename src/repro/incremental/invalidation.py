"""Map a :class:`~repro.incremental.mutations.MutationDelta` onto caches.

Soundness argument (why chunk-granular invalidation is safe at all):
chunk walks in :class:`~repro.core.IncompletenessJoin` slice root-table
state strictly per row (codes, raw columns and RNG streams are functions
of the root row index), while every whole-table structure a walk consults
— child indexes, key orders, nearest-neighbour replacers, orphan weights
— derives from *non-root* path tables only, and dangling-FK resolution
happens at assembly time over all parked states.  Hence:

* root-table **updates** invalidate exactly the chunks whose ``[start,
  stop)`` covers an updated row position;
* root-table **inserts/deletes** change the canonical chunk grid itself
  (and shift row→stream assignments), so every entry under the signature
  is stale;
* a mutation to any **non-root table inside the model's closure** (path
  tables plus SSAR evidence walks) changes whole-table state every chunk
  consults, so every entry under the signature is stale;
* tables **outside the closure** require no eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple

from ..runtime.rng import chunk_slices
from .mutations import MutationDelta

__all__ = ["Invalidation", "affected_tasks", "plan_invalidation"]


@dataclass(frozen=True)
class Invalidation:
    """What one delta means for one join signature's cached state.

    ``kind`` is ``"none"`` (no eviction), ``"chunks"`` (evict only
    ``tasks`` from the partial cache, plus any full join built from
    them), or ``"all"`` (every entry under the signature is stale).
    """

    kind: str
    tasks: FrozenSet[Tuple[int, int]] = frozenset()

    @property
    def touches_cache(self) -> bool:
        return self.kind != "none"


def affected_tasks(
    positions: Iterable[int], num_roots: int, chunk_size: int
) -> FrozenSet[Tuple[int, int]]:
    """Chunk-grid tasks whose row range covers any of ``positions``."""
    slices = [(s.start, s.stop) for s in chunk_slices(num_roots, chunk_size)]
    hit = set()
    for pos in positions:
        for start, stop in slices:
            if start <= pos < stop:
                hit.add((start, stop))
                break
    return frozenset(hit)


def plan_invalidation(
    delta: MutationDelta,
    *,
    root_table: str,
    closure_tables: Iterable[str],
    num_roots: int,
    chunk_size: int,
) -> Invalidation:
    """Decide the minimal sound eviction for one model's cached joins.

    ``num_roots``/``chunk_size`` describe the canonical grid of the
    *mutated* database (for update-only deltas it equals the old grid,
    which is the only case where chunk granularity applies).
    """
    closure = set(closure_tables) | {root_table}
    touched = [t for t in delta.affected_tables() if t in closure]
    if not touched:
        return Invalidation("none")
    non_root = [t for t in touched if t != root_table]
    if non_root:
        return Invalidation("all")
    root_delta = delta.for_table(root_table)
    if not root_delta.grid_stable:
        return Invalidation("all")
    tasks = affected_tasks(root_delta.updated_positions, num_roots, chunk_size)
    if not tasks:
        return Invalidation("none")
    return Invalidation("chunks", tasks)
