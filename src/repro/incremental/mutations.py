"""Tuple-granular mutations over a relational database.

:func:`apply_mutations` is the single write path for live databases: it
takes row-level inserts, updates and deletes, validates them against the
schema (every violation raises :class:`~repro.errors.MutationError`, never
a raw ``KeyError``), applies them copy-on-write, and returns the mutated
database together with a :class:`MutationDelta` that names every changed
row per table.  The delta is what the cache-invalidation layer
(:mod:`repro.incremental.invalidation`) consumes.

Ordering semantics within one batch: updates first (row positions stay
stable), then inserts (appended in input order), then deletes (cascading
to child rows when ``cascade=True``).  ``known_tuple_factors`` annotation
arrays — which align with parent-table rows — are realigned on parent
inserts (new rows get ``TF_UNKNOWN``) and deletes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import MutationError
from ..relational import Database, SchemaAnnotation, Table
from ..relational.column import coerce_values
from ..relational.tuple_factors import TF_UNKNOWN

__all__ = ["TableDelta", "MutationDelta", "apply_mutations"]


@dataclass(frozen=True)
class TableDelta:
    """Changed rows of one table, identified by primary-key value.

    ``updated_positions`` are the row positions (in the mutated table) of
    the updated rows; they are only meaningful for chunk-granular
    invalidation when the same table saw no inserts or deletes in the
    batch (otherwise positions shift and the grid changes anyway).
    """

    inserted: Tuple[int, ...] = ()
    updated: Tuple[int, ...] = ()
    deleted: Tuple[int, ...] = ()
    updated_positions: Tuple[int, ...] = ()

    @property
    def grid_stable(self) -> bool:
        """True when the table's row count and positions are unchanged."""
        return not self.inserted and not self.deleted

    @property
    def num_changes(self) -> int:
        return len(self.inserted) + len(self.updated) + len(self.deleted)


@dataclass(frozen=True)
class MutationDelta:
    """Per-table change sets produced by one :func:`apply_mutations` call."""

    tables: Mapping[str, TableDelta] = field(default_factory=dict)

    def affected_tables(self) -> Tuple[str, ...]:
        return tuple(sorted(t for t, d in self.tables.items() if d.num_changes))

    def for_table(self, table: str) -> TableDelta:
        return self.tables.get(table, TableDelta())

    @property
    def num_changes(self) -> int:
        return sum(d.num_changes for d in self.tables.values())

    def counts(self) -> Dict[str, Dict[str, int]]:
        """``{table: {inserted/updated/deleted: n}}`` — manifest-friendly."""
        return {
            table: {
                "inserted": len(d.inserted),
                "updated": len(d.updated),
                "deleted": len(d.deleted),
            }
            for table, d in sorted(self.tables.items())
            if d.num_changes
        }


def _require_table(db: Database, name: object) -> Table:
    if not isinstance(name, str) or name not in db.tables:
        raise MutationError(
            f"mutation names unknown table {name!r}; have {sorted(db.tables)}"
        )
    return db.tables[name]


def _require_pk(table: Table, operation: str) -> str:
    if table.primary_key is None:
        raise MutationError(
            f"{operation} on {table.name!r} requires a primary key"
        )
    return table.primary_key


def _apply_updates(
    db: Database,
    updates: Mapping[str, Sequence[Mapping[str, object]]],
    delta: Dict[str, Dict[str, list]],
) -> Database:
    for name, rows in updates.items():
        table = _require_table(db, name)
        pk_col = _require_pk(table, "update")
        index = table.key_index()
        new_columns = {c: table.column(c) for c in table.column_names}
        touched: Dict[str, np.ndarray] = {}
        for row in rows:
            if pk_col not in row:
                raise MutationError(
                    f"update on {name!r} must carry the primary key {pk_col!r}"
                )
            key = int(row[pk_col])
            if key not in index:
                raise MutationError(f"update on {name!r}: no row with {pk_col}={key}")
            pos = index[key]
            payload = {c: v for c, v in row.items() if c != pk_col}
            if not payload:
                raise MutationError(
                    f"update on {name!r} row {key} changes no columns"
                )
            for column, value in payload.items():
                if column not in table:
                    raise MutationError(
                        f"update on {name!r} names unknown column {column!r}"
                    )
                if column not in touched:
                    touched[column] = new_columns[column].copy()
                    new_columns[column] = touched[column]
                kind = table.meta(column).kind
                touched[column][pos] = coerce_values(kind, [value])[0]
            delta[name]["updated"].append(key)
            delta[name]["updated_positions"].append(pos)
        db = db.replace_table(table._with_columns(new_columns))
    return db


def _apply_inserts(
    db: Database,
    inserts: Mapping[str, Sequence[Mapping[str, object]]],
    delta: Dict[str, Dict[str, list]],
) -> Database:
    for name, rows in inserts.items():
        table = _require_table(db, name)
        if not rows:
            continue
        expected = set(table.column_names)
        for row in rows:
            got = set(row)
            if got != expected:
                missing = sorted(expected - got)
                extra = sorted(got - expected)
                raise MutationError(
                    f"insert into {name!r} must provide exactly the table's "
                    f"columns; missing {missing}, unexpected {extra}"
                )
        pk_col = table.primary_key
        if pk_col is not None:
            existing = set(table.column(pk_col).tolist())
            for row in rows:
                key = int(row[pk_col])
                if key in existing:
                    raise MutationError(
                        f"insert into {name!r}: duplicate {pk_col}={key}"
                    )
                existing.add(key)
                delta[name]["inserted"].append(key)
        else:
            start = table.num_rows
            delta[name]["inserted"].extend(range(start, start + len(rows)))
        block = Table(
            name,
            {c: [row[c] for row in rows] for c in table.column_names},
            table.kinds(),
            primary_key=pk_col,
        )
        db = db.replace_table(table.concat_rows(block))
    return db


def _cascade_closure(
    db: Database, deletes: Mapping[str, set]
) -> Dict[str, set]:
    """Expand pk-delete sets through n:1 references until a fixpoint."""
    doomed: Dict[str, set] = {t: set(keys) for t, keys in deletes.items()}
    changed = True
    while changed:
        changed = False
        for fk in db.foreign_keys:
            parent_doomed = doomed.get(fk.parent_table)
            if not parent_doomed:
                continue
            child = db.tables[fk.child_table]
            pk_col = child.primary_key
            if pk_col is None:
                continue  # no row identity to cascade by; dangling refs
                # are tolerated by the join's dangling-FK resolution
            refs = child.column(fk.child_column)
            mask = np.isin(refs, np.fromiter(parent_doomed, dtype=np.int64))
            victims = set(child.column(pk_col)[mask].tolist())
            before = len(doomed.get(fk.child_table, set()))
            doomed.setdefault(fk.child_table, set()).update(victims)
            if len(doomed[fk.child_table]) != before:
                changed = True
    return doomed


def _apply_deletes(
    db: Database,
    deletes: Mapping[str, Iterable[int]],
    cascade: bool,
    delta: Dict[str, Dict[str, list]],
) -> Tuple[Database, Dict[str, np.ndarray]]:
    requested: Dict[str, set] = {}
    for name, keys in deletes.items():
        table = _require_table(db, name)
        pk_col = _require_pk(table, "delete")
        index = table.key_index()
        keyset = set()
        for key in keys:
            key = int(key)
            if key not in index:
                raise MutationError(f"delete on {name!r}: no row with {pk_col}={key}")
            keyset.add(key)
        requested[name] = keyset
    doomed = _cascade_closure(db, requested) if cascade else {
        t: set(k) for t, k in requested.items()
    }
    keep_masks: Dict[str, np.ndarray] = {}
    for name, keys in doomed.items():
        if not keys:
            continue
        table = db.tables[name]
        pk_col = table.primary_key
        mask = ~np.isin(table.column(pk_col), np.fromiter(keys, dtype=np.int64))
        keep_masks[name] = mask
        delta[name]["deleted"].extend(sorted(int(k) for k in keys))
        db = db.replace_table(table.select(mask))
    return db, keep_masks


def _realign_annotation(
    old_db: Database,
    annotation: SchemaAnnotation,
    delta: Dict[str, Dict[str, list]],
    keep_masks: Dict[str, np.ndarray],
) -> SchemaAnnotation:
    """Realign parent-aligned tuple-factor arrays with mutated row sets."""
    if not annotation.known_tuple_factors:
        return annotation
    factors: Dict[str, np.ndarray] = {}
    by_str = {str(fk): fk for fk in old_db.foreign_keys}
    for key, values in annotation.known_tuple_factors.items():
        values = np.asarray(values, dtype=np.int64)
        fk = by_str.get(key)
        if fk is not None:
            parent = fk.parent_table
            # Inserts happen before deletes, so grow the array first (new
            # parent rows get TF_UNKNOWN) and only then apply the keep
            # mask, which was computed against the post-insert table.
            inserted = len(delta[parent]["inserted"]) if parent in delta else 0
            if inserted:
                values = np.concatenate(
                    [values, np.full(inserted, TF_UNKNOWN, dtype=np.int64)]
                )
            mask = keep_masks.get(parent)
            if mask is not None:
                values = values[mask]
        factors[key] = values
    return SchemaAnnotation(
        complete_tables=set(annotation.complete_tables),
        incomplete_tables=set(annotation.incomplete_tables),
        known_tuple_factors=factors,
    )


def apply_mutations(
    db: Database,
    annotation: Optional[SchemaAnnotation] = None,
    *,
    inserts: Optional[Mapping[str, Sequence[Mapping[str, object]]]] = None,
    updates: Optional[Mapping[str, Sequence[Mapping[str, object]]]] = None,
    deletes: Optional[Mapping[str, Iterable[int]]] = None,
    cascade: bool = True,
):
    """Apply a mutation batch and describe it tuple-granularly.

    Parameters
    ----------
    db / annotation:
        The base database and (optionally) its completeness annotation.
    inserts:
        ``{table: [row_dict, ...]}`` — each row dict must provide exactly
        the table's columns; primary keys must be fresh.
    updates:
        ``{table: [row_dict, ...]}`` — each row dict carries the primary
        key plus the columns to overwrite.  Row positions stay stable.
    deletes:
        ``{table: [pk, ...]}``.  With ``cascade=True`` (default) child
        rows referencing a deleted parent are deleted transitively.

    Returns
    -------
    ``(mutated_db, mutated_annotation, delta)`` where ``delta`` is a
    :class:`MutationDelta`; ``mutated_annotation`` is ``None`` when no
    annotation was passed.

    Raises
    ------
    MutationError
        For unknown tables/rows/columns, duplicate primary keys, updates
        without a primary key, or malformed insert rows.
    """
    from collections import defaultdict

    if not any((inserts, updates, deletes)):
        raise MutationError("mutation batch is empty: nothing to apply")
    raw: Dict[str, Dict[str, list]] = defaultdict(
        lambda: {"inserted": [], "updated": [], "deleted": [], "updated_positions": []}
    )
    new_db = db.copy()
    if updates:
        new_db = _apply_updates(new_db, updates, raw)
    if inserts:
        new_db = _apply_inserts(new_db, inserts, raw)
    keep_masks: Dict[str, np.ndarray] = {}
    if deletes:
        new_db, keep_masks = _apply_deletes(new_db, deletes, cascade, raw)
    new_annotation = None
    if annotation is not None:
        new_annotation = _realign_annotation(db, annotation, raw, keep_masks)
    delta = MutationDelta(
        tables={
            name: TableDelta(
                inserted=tuple(d["inserted"]),
                updated=tuple(d["updated"]),
                deleted=tuple(d["deleted"]),
                updated_positions=tuple(d["updated_positions"]),
            )
            for name, d in raw.items()
        }
    )
    return new_db, new_annotation, delta
