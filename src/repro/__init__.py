"""ReStore: neural data completion for relational databases (SIGMOD 2021).

Reproduction of Hilprecht & Binnig, "ReStore - Neural Data Completion for
Relational Databases".  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-vs-measured record.

Quickstart::

    from repro import ReStore, parse_query
    from repro.datasets import generate_housing
    from repro.incomplete import RemovalSpec, make_incomplete

    db = generate_housing()
    dataset = make_incomplete(db, [RemovalSpec("apartment", "price", 0.5, 0.5)])
    engine = ReStore.from_dataset(dataset).fit()
    answer = engine.answer(parse_query(
        "SELECT AVG(price) FROM neighborhood NATURAL JOIN apartment GROUP BY state;"
    ))
"""

from .core import (
    Answer,
    BiasDirection,
    ConfidenceBand,
    ConfidenceEstimator,
    ReStore,
    ReStoreConfig,
    SuspectedBias,
)
from .errors import ReStoreError
from .incremental import (
    DriftReport,
    DriftThresholds,
    MutationDelta,
    TableDelta,
    apply_mutations,
    detect_drift,
)
from .query import Query, QueryResult, parse_query
from .relational import ColumnKind, Database, ForeignKey, SchemaAnnotation, Table
from .serving import (
    CompletionService,
    FleetConfig,
    FleetRouter,
    ServiceConfig,
    ServiceWorker,
    ServingCore,
    load_artifact,
    save_artifact,
)
from .version import repro_version

#: Single source of truth is pyproject.toml / the installed distribution
#: metadata — see :mod:`repro.version`.  Artifact manifests stamp the same
#: value.
__version__ = repro_version()

#: The public facade, grouped by concern.  Serving internals (protocol,
#: batchers, admission gate) stay importable from :mod:`repro.serving`;
#: the error taxonomy's canonical home is :mod:`repro.errors`.
__all__ = [
    # engine
    "ReStore",
    "ReStoreConfig",
    "Answer",
    "SuspectedBias",
    "BiasDirection",
    "ConfidenceBand",
    "ConfidenceEstimator",
    # queries
    "Query",
    "QueryResult",
    "parse_query",
    # relational model
    "Database",
    "Table",
    "ForeignKey",
    "SchemaAnnotation",
    "ColumnKind",
    # serving: core, shells, fleet, artifacts
    "ServingCore",
    "ServiceConfig",
    "CompletionService",
    "ServiceWorker",
    "FleetRouter",
    "FleetConfig",
    "save_artifact",
    "load_artifact",
    # incremental completion (live databases)
    "MutationDelta",
    "TableDelta",
    "apply_mutations",
    "DriftReport",
    "DriftThresholds",
    "detect_drift",
    # errors
    "ReStoreError",
    # meta
    "repro_version",
]
